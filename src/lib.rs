//! # RUSH — robust completion-time-aware cluster scheduling
//!
//! A full reproduction of *RUSH: A RobUst ScHeduler to Manage Uncertain
//! Completion-Times in Shared Clouds* (Huang et al., ICDCS 2016) as a Rust
//! workspace. This facade crate re-exports every sub-crate:
//!
//! * [`prob`] — quantized PMFs, KL divergence, distributions, statistics.
//! * [`sim`] — a discrete-time YARN-like cluster simulator with a pluggable
//!   scheduler SPI.
//! * [`utility`] — completion-time utility functions with inverses.
//! * [`estimator`] — online job-demand distribution estimators.
//! * [`core`] — the RUSH algorithms (REM closed form, WCDE bisection, onion
//!   peeling, continuous time-slot mapping) and the CA feedback pipeline.
//! * [`planner`] — the shared event-driven planner kernel
//!   ([`planner::PlannerCore`]) and the [`planner::RushScheduler`] simulator
//!   adapter built on it.
//! * [`sched`] — baseline schedulers (FIFO, EDF, RRH, Fair).
//! * [`workload`] — PUMA-like job templates and the experiment driver.
//! * [`metrics`] — boxplots, ECDFs and table rendering for the harness.
//! * [`reactor`] — nonblocking event-loop primitives (epoll poller,
//!   eventfd waker, timer wheel, backpressure-aware buffers) behind the
//!   daemon's `--frontend reactor` mode.
//! * [`serve`] — the `rushd` scheduling daemon: versioned JSON and
//!   length-prefixed binary wire protocols, epoch batching, admission
//!   control, snapshots and a load generator.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: generate a workload,
//! schedule it with RUSH and a baseline, and compare utility distributions.

pub use rush_core as core;
pub use rush_estimator as estimator;
pub use rush_lp as lp;
pub use rush_metrics as metrics;
pub use rush_planner as planner;
pub use rush_prob as prob;
pub use rush_reactor as reactor;
pub use rush_sched as sched;
pub use rush_serve as serve;
pub use rush_sim as sim;
pub use rush_utility as utility;
pub use rush_workload as workload;

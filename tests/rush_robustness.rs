//! End-to-end robustness properties of the RUSH scheduler itself: on
//! arbitrary randomized workloads (mixed sensitivities, failures,
//! interference, tight or absurd budgets) RUSH must never stall, never
//! mis-assign, and always complete every job.

use proptest::prelude::*;
use rush::core::wcde::worst_case_quantile;
use rush::core::RushConfig;
use rush::planner::RushScheduler;
use rush::estimator::{DistributionEstimator, GaussianEstimator};
use rush::sim::engine::{SimConfig, Simulation};
use rush::sim::job::{JobSpec, Phase, TaskSpec};
use rush::sim::perturb::{FailureModel, Interference};
use rush::utility::Sensitivity;

/// Random job spec: arrival, maps, reduces, runtime scale, sensitivity id,
/// budget scale.
type JobParams = (u64, usize, usize, f64, u8, f64);

fn job_from(params: &JobParams, i: usize) -> JobSpec {
    let &(arrival, maps, reduces, runtime, sens, budget_scale) = params;
    let sensitivity = match sens % 3 {
        0 => Sensitivity::Critical,
        1 => Sensitivity::Sensitive,
        _ => Sensitivity::Insensitive,
    };
    // Budgets from absurdly tight (0.2x of serial work) to generous.
    let serial = runtime * (maps + reduces) as f64;
    let budget = (serial * budget_scale).max(1.0);
    JobSpec::builder(format!("p{i}"))
        .arrival(arrival)
        .tasks((0..maps).map(|_| TaskSpec::new(runtime, Phase::Map)))
        .tasks((0..reduces).map(|_| TaskSpec::new(runtime * 0.7, Phase::Reduce)))
        .utility(sensitivity.utility_for(budget, 1.0 + f64::from(sens % 5)).unwrap())
        .sensitivity(sensitivity)
        .budget(budget as u64)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// RUSH completes every job under arbitrary conditions.
    #[test]
    fn rush_always_completes(
        specs in prop::collection::vec(
            (0u64..300, 1usize..10, 0usize..3, 2.0f64..40.0, 0u8..6, 0.2f64..3.0),
            1..8,
        ),
        containers in 1u32..10,
        cv in 0.0f64..0.6,
        fail_p in 0.0f64..0.25,
        seed in 0u64..500,
    ) {
        let jobs: Vec<JobSpec> =
            specs.iter().enumerate().map(|(i, p)| job_from(p, i)).collect();
        let n = jobs.len();
        let cfg = SimConfig::homogeneous(1, containers)
            .with_interference(Interference::LogNormal { cv: cv.max(0.01) })
            .with_failures(FailureModel::Bernoulli { p: fail_p })
            .with_seed(seed)
            .with_max_slots(50_000_000);
        let mut rush = RushScheduler::new(RushConfig::default());
        let r = Simulation::new(cfg, jobs).unwrap().run(&mut rush).unwrap();
        prop_assert_eq!(r.outcomes.len(), n, "RUSH lost jobs");
        prop_assert_eq!(r.misassignments, 0, "RUSH named an invalid job");
        for o in &r.outcomes {
            prop_assert!(o.utility >= 0.0);
            prop_assert!(o.finish >= o.arrival);
        }
    }

    /// The full estimate→WCDE pipeline respects demand units when the
    /// quantization uses wide bins (large totals): η is always expressed in
    /// container·slots, never bin indices.
    #[test]
    fn wide_demand_pipeline_units(
        mean_rt in 200.0f64..2000.0,
        n_tasks in 50usize..400,
        theta in 0.5f64..0.95,
        delta in 0.0f64..1.0,
    ) {
        // Totals up to 800k container·slots force bin widths >> 1.
        let samples: Vec<u64> = (0..40)
            .map(|i| (mean_rt + (i as f64 - 20.0) * mean_rt * 0.01) as u64)
            .collect();
        let est = GaussianEstimator::new(512).estimate(&samples, n_tasks).unwrap();
        prop_assert!(est.pmf.bin_width() > 1, "expected wide bins");
        let eta = worst_case_quantile(&est.pmf, theta, delta).unwrap().eta;
        let expected = mean_rt * n_tasks as f64;
        prop_assert!(
            (eta as f64) >= expected * 0.9,
            "eta {eta} far below expected total {expected}"
        );
        prop_assert!(
            (eta as f64) <= expected * 2.5,
            "eta {eta} absurdly above expected total {expected}"
        );
    }

    /// Determinism end-to-end: identical seeds give identical runs even
    /// with failures and speculation-capable machinery in the loop.
    #[test]
    fn rush_runs_are_reproducible(
        specs in prop::collection::vec(
            (0u64..100, 1usize..6, 0usize..2, 2.0f64..20.0, 0u8..6, 0.5f64..2.0),
            1..5,
        ),
        seed in 0u64..200,
    ) {
        let jobs: Vec<JobSpec> =
            specs.iter().enumerate().map(|(i, p)| job_from(p, i)).collect();
        let run = || {
            let cfg = SimConfig::homogeneous(1, 4)
                .with_interference(Interference::LogNormal { cv: 0.3 })
                .with_failures(FailureModel::Bernoulli { p: 0.1 })
                .with_seed(seed)
                .with_max_slots(50_000_000);
            let mut rush = RushScheduler::new(RushConfig::default());
            Simulation::new(cfg, jobs.clone()).unwrap().run(&mut rush).unwrap()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.outcomes, b.outcomes);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.assignments, b.assignments);
        prop_assert_eq!(a.failed_attempts, b.failed_attempts);
    }
}

//! Integration tests of the estimate → WCDE → peel → map pipeline across
//! crate boundaries, including the Fig. 3 coverage property at small scale.

use rush::core::plan::{compute_plan, compute_plan_with, PlanInput};
use rush::core::wcde::worst_case_quantile;
use rush::core::{CoreError, RushConfig};
use rush::estimator::{DistributionEstimator, GaussianEstimator, MeanEstimator};
use rush::prob::dist::{Continuous, Gaussian};
use rush::prob::rng::{derive_seed, seeded_rng};
use rush::utility::TimeUtility;

/// Coverage of the robust provision against the true demand distribution,
/// mirroring the paper's Fig. 3 at reduced repetition count.
fn coverage(n_samples: usize, total: usize, delta: f64, reps: usize) -> f64 {
    let theta = 0.9;
    let truth = Gaussian::new(60.0, 20.0).unwrap();
    let remaining = total - n_samples;
    let rem_dist =
        Gaussian::new(remaining as f64 * 60.0, (remaining as f64).sqrt() * 20.0).unwrap();
    let de = GaussianEstimator::new(1024);
    let mut covered = 0.0;
    for rep in 0..reps {
        let mut rng = seeded_rng(derive_seed(777, rep as u64));
        let samples: Vec<u64> =
            (0..n_samples).map(|_| truth.sample(&mut rng).round().max(1.0) as u64).collect();
        let est = de.estimate(&samples, remaining).unwrap();
        let eta = worst_case_quantile(&est.pmf, theta, delta).unwrap().eta;
        covered += rem_dist.cdf(eta as f64);
    }
    covered / reps as f64
}

#[test]
fn fig3_shape_few_samples_need_large_delta() {
    // With only 15 samples, delta = 0 misses the theta target...
    let weak = coverage(15, 101, 0.0, 30);
    assert!(weak < 0.9, "no-margin coverage {weak} should miss theta");
    // ...while delta = 0.7 clears it.
    let strong = coverage(15, 101, 0.7, 30);
    assert!(strong > 0.9, "robust coverage {strong} should clear theta");
}

#[test]
fn fig3_shape_more_samples_help() {
    let few = coverage(10, 101, 0.35, 30);
    let many = coverage(55, 101, 0.35, 30);
    assert!(many >= few, "coverage should improve with samples: {few} -> {many}");
    assert!(many > 0.9);
}

#[test]
fn plan_pipeline_runs_with_custom_estimator() {
    /// An estimator that always doubles the mean-based demand (very
    /// conservative user-supplied DE class).
    #[derive(Debug)]
    struct Doubler;
    impl DistributionEstimator for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn estimate(
            &self,
            samples: &[u64],
            remaining_tasks: usize,
        ) -> Result<rush::estimator::Estimate, rush::estimator::EstimatorError> {
            let base = MeanEstimator::new(512).estimate(samples, remaining_tasks * 2)?;
            Ok(base)
        }
    }
    let cfg = RushConfig::default();
    let jobs = vec![PlanInput {
        samples: vec![30; 10].into(),
        remaining_tasks: 10,
        running: 0,
        failed_attempts: 0,
        age: 0.0,
        utility: TimeUtility::sigmoid(500.0, 5.0, 0.02).unwrap(),
    }];
    let normal = compute_plan(&cfg, 8, &jobs).unwrap();
    let doubled = compute_plan_with(&cfg, 8, &jobs, &Doubler).unwrap();
    assert!(
        doubled.entries[0].eta > normal.entries[0].eta,
        "conservative estimator must provision more: {} vs {}",
        doubled.entries[0].eta,
        normal.entries[0].eta
    );
}

#[test]
fn plan_errors_propagate() {
    let cfg = RushConfig::default().with_theta(7.0);
    let jobs = vec![PlanInput {
        samples: vec![30].into(),
        remaining_tasks: 1,
        running: 0,
        failed_attempts: 0,
        age: 0.0,
        utility: TimeUtility::constant(1.0).unwrap(),
    }];
    assert!(matches!(compute_plan(&cfg, 8, &jobs), Err(CoreError::InvalidTheta(_))));
}

#[test]
fn more_uncertainty_more_provision() {
    // Same mean, different spread: the robust demand must grow with the
    // observed variance.
    let tight: Vec<u64> = vec![60; 30];
    let wide: Vec<u64> = (0..30).map(|i| if i % 2 == 0 { 30 } else { 90 }).collect();
    let de = GaussianEstimator::new(1024);
    let (theta, delta) = (0.9, 0.7);
    let eta_tight =
        worst_case_quantile(&de.estimate(&tight, 20).unwrap().pmf, theta, delta).unwrap().eta;
    let eta_wide =
        worst_case_quantile(&de.estimate(&wide, 20).unwrap().pmf, theta, delta).unwrap().eta;
    assert!(
        eta_wide > eta_tight,
        "wide-spread samples must provision more: {eta_wide} vs {eta_tight}"
    );
}

#[test]
fn plan_is_deterministic() {
    let cfg = RushConfig::default();
    let jobs: Vec<PlanInput> = (0..6)
        .map(|i| PlanInput {
            samples: vec![40 + i as u64; 8].into(),
            remaining_tasks: 12,
            running: 1,
            failed_attempts: 0,
            age: 10.0 * i as f64,
            utility: TimeUtility::sigmoid(300.0 + 40.0 * i as f64, 4.0, 0.03).unwrap(),
        })
        .collect();
    let a = compute_plan(&cfg, 16, &jobs).unwrap();
    let b = compute_plan(&cfg, 16, &jobs).unwrap();
    assert_eq!(a, b);
}

//! End-to-end integration tests spanning every crate: workload generation,
//! simulation under all five schedulers, determinism, and cross-scheduler
//! invariants.

use rush::core::RushConfig;
use rush::planner::RushScheduler;
use rush::sched::{Edf, Fair, Fifo, Rrh};
use rush::sim::cluster::ClusterSpec;
use rush::sim::outcome::SimResult;
use rush::sim::perturb::Interference;
use rush::sim::Scheduler;
use rush::workload::{generate, Experiment, WorkloadConfig};

fn experiment(seed: u64) -> Experiment {
    // The calibrated environment of the benchmark harness: the paper's
    // 48-container testbed under mild shared-cloud interference.
    Experiment::new(ClusterSpec::paper_testbed(8).unwrap())
        .with_interference(Interference::LogNormal { cv: 0.25 })
        .with_sim_seed(seed)
}

fn workload(jobs: usize, ratio: f64, seed: u64) -> (Experiment, Vec<rush::sim::job::JobSpec>) {
    let exp = experiment(seed);
    let cfg = WorkloadConfig {
        jobs,
        budget_ratio: ratio,
        mean_interarrival: 45.0,
        seed,
        ..Default::default()
    };
    let w = generate(&cfg, &exp).unwrap();
    (exp, w)
}

fn run_all(jobs: usize, ratio: f64, seed: u64) -> Vec<(String, SimResult)> {
    let (exp, w) = workload(jobs, ratio, seed);
    let mut rush_s = RushScheduler::new(RushConfig::default());
    let mut fifo = Fifo::new();
    let mut edf = Edf::new();
    let mut rrh = Rrh::new();
    let mut fair = Fair::new();
    let mut set: [(&str, &mut dyn Scheduler); 5] = [
        ("RUSH", &mut rush_s),
        ("FIFO", &mut fifo),
        ("EDF", &mut edf),
        ("RRH", &mut rrh),
        ("Fair", &mut fair),
    ];
    exp.compare(&w, &mut set).unwrap()
}

#[test]
fn every_scheduler_completes_every_job() {
    for (name, result) in run_all(16, 1.5, 11) {
        assert_eq!(result.outcomes.len(), 16, "{name} lost jobs");
        assert!(result.makespan > 0, "{name} empty makespan");
        for o in &result.outcomes {
            assert!(o.finish >= o.arrival, "{name}: finish before arrival");
            assert!(o.utility >= 0.0, "{name}: negative utility");
            assert!(o.tasks > 0);
        }
    }
}

#[test]
fn simulation_is_deterministic_per_seed() {
    let a = run_all(12, 1.5, 3);
    let b = run_all(12, 1.5, 3);
    for ((na, ra), (nb, rb)) in a.iter().zip(b.iter()) {
        assert_eq!(na, nb);
        assert_eq!(ra.outcomes, rb.outcomes, "{na} nondeterministic");
        assert_eq!(ra.makespan, rb.makespan);
        assert_eq!(ra.assignments, rb.assignments);
    }
}

#[test]
fn different_seeds_produce_different_workloads() {
    let a = run_all(12, 1.5, 3);
    let b = run_all(12, 1.5, 4);
    assert_ne!(
        a[0].1.utility_vector(),
        b[0].1.utility_vector(),
        "seed must change the workload"
    );
}

#[test]
fn total_assignments_equal_total_tasks() {
    let (exp, w) = workload(10, 2.0, 5);
    let total_tasks: u64 = w.iter().map(|j| j.tasks().len() as u64).sum();
    let mut fifo = Fifo::new();
    let r = exp.run(w, &mut fifo).unwrap();
    assert_eq!(r.assignments, total_tasks);
}

#[test]
fn rush_beats_arrival_order_schedulers_under_contention() {
    // The paper's headline (Figs. 4 and 6): under budget pressure, RUSH
    // meets more time-aware budgets than the arrival-order baselines and
    // leaves no more jobs at zero utility. The workload and interference
    // are fully seeded, so this comparison is deterministic.
    let results = run_all(40, 1.5, 1);
    let get = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
            .unwrap()
    };
    let met = |r: &SimResult| r.time_aware_outcomes().filter(|o| o.met_budget()).count();
    let mean = |r: &SimResult| {
        let v = r.utility_vector();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let rush_r = get("RUSH");
    let fifo_r = get("FIFO");
    assert!(
        met(rush_r) > met(fifo_r),
        "RUSH met {} vs FIFO {}",
        met(rush_r),
        met(fifo_r)
    );
    assert!(
        mean(rush_r) > mean(fifo_r),
        "RUSH mean {} vs FIFO {}",
        mean(rush_r),
        mean(fifo_r)
    );
    assert!(
        rush_r.zero_utility_fraction(1e-3) <= fifo_r.zero_utility_fraction(1e-3) + 1e-9,
        "RUSH must not leave more jobs at zero utility than FIFO"
    );
}

#[test]
fn rush_meets_more_time_aware_budgets_than_fifo() {
    let results = run_all(40, 1.5, 2);
    let met = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r.time_aware_outcomes().filter(|o| o.met_budget()).count())
            .unwrap()
    };
    assert!(
        met("RUSH") >= met("FIFO"),
        "RUSH {} vs FIFO {}",
        met("RUSH"),
        met("FIFO")
    );
}

#[test]
fn generous_budgets_are_met_by_everyone() {
    // At 3x budgets on a lightly loaded cluster, every scheduler should
    // finish the bulk of time-aware jobs in time.
    let (exp, w) = {
        let exp = experiment(9);
        let cfg = WorkloadConfig {
            jobs: 10,
            budget_ratio: 3.0,
            mean_interarrival: 400.0,
            max_map_tasks: 24,
            seed: 9,
            ..Default::default()
        };
        let w = generate(&cfg, &exp).unwrap();
        (exp, w)
    };
    let mut rush_s = RushScheduler::new(RushConfig::default());
    let mut fifo = Fifo::new();
    let mut set: [(&str, &mut dyn Scheduler); 2] =
        [("RUSH", &mut rush_s), ("FIFO", &mut fifo)];
    for (name, r) in exp.compare(&w, &mut set).unwrap() {
        let aware: Vec<_> = r.time_aware_outcomes().collect();
        let met = aware.iter().filter(|o| o.met_budget()).count();
        assert!(
            met * 10 >= aware.len() * 8,
            "{name}: only {met}/{} met generous budgets",
            aware.len()
        );
    }
}

#[test]
fn scheduler_time_is_accounted() {
    let (exp, w) = workload(10, 2.0, 6);
    let mut rush_s = RushScheduler::new(RushConfig::default());
    let r = exp.run(w, &mut rush_s).unwrap();
    assert!(r.scheduler_invocations > 0);
    assert!(r.scheduler_time.as_nanos() > 0, "RUSH work must be timed");
}

#[test]
fn rush_reports_projected_plan() {
    let (exp, w) = workload(6, 2.0, 8);
    let mut rush_s = RushScheduler::new(RushConfig::default());
    exp.run(w, &mut rush_s).unwrap();
    // After the run the last plan reflects the final replanning pass.
    let plan = rush_s.last_plan();
    assert!(!plan.entries.is_empty(), "the CA unit must retain its last plan");
}

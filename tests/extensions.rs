//! Integration tests of the extension features: task failures end-to-end
//! with RUSH, workload persistence round-trips through the experiment
//! driver, bursty arrivals, the CoRA comparison mode, and the LP reference
//! against a real workload's plan.

use rush::core::RushConfig;
use rush::planner::RushScheduler;
use rush::sched::Fifo;
use rush::sim::cluster::ClusterSpec;
use rush::sim::engine::{SimConfig, Simulation};
use rush::sim::perturb::{FailureModel, Interference};
use rush::workload::persist::{from_text, to_text};
use rush::workload::{generate, ArrivalProcess, Experiment, WorkloadConfig};

fn cluster() -> ClusterSpec {
    ClusterSpec::paper_testbed(4).unwrap()
}

#[test]
fn rush_completes_workload_under_failures() {
    let exp = Experiment::new(cluster()).with_sim_seed(3);
    let cfg = WorkloadConfig {
        jobs: 10,
        budget_ratio: 2.0,
        mean_interarrival: 80.0,
        max_map_tasks: 16,
        seed: 3,
        ..Default::default()
    };
    let workload = generate(&cfg, &exp).unwrap();
    let sim_cfg = SimConfig::new(cluster())
        .with_interference(Interference::LogNormal { cv: 0.25 })
        .with_failures(FailureModel::Bernoulli { p: 0.15 })
        .with_seed(3)
        .with_max_slots(10_000_000);
    let mut rush = RushScheduler::new(RushConfig::default());
    let r = Simulation::new(sim_cfg, workload).unwrap().run(&mut rush).unwrap();
    assert_eq!(r.outcomes.len(), 10);
    assert!(r.failed_attempts > 0, "p=0.15 over hundreds of tasks must fail sometimes");
}

#[test]
fn persisted_workload_reproduces_the_same_simulation() {
    let exp = Experiment::new(cluster()).with_sim_seed(7);
    let cfg = WorkloadConfig {
        jobs: 8,
        budget_ratio: 1.5,
        mean_interarrival: 60.0,
        max_map_tasks: 12,
        seed: 7,
        ..Default::default()
    };
    let original = generate(&cfg, &exp).unwrap();
    let text = to_text(&original);
    let restored = from_text(&text).unwrap();

    let mut f1 = Fifo::new();
    let mut f2 = Fifo::new();
    let r1 = exp.run(original, &mut f1).unwrap();
    let r2 = exp.run(restored, &mut f2).unwrap();
    assert_eq!(r1.outcomes, r2.outcomes, "persisted workload must replay identically");
    assert_eq!(r1.makespan, r2.makespan);
}

#[test]
fn bursty_arrivals_flow_through_the_driver() {
    let exp = Experiment::new(cluster()).with_sim_seed(4);
    let cfg = WorkloadConfig {
        jobs: 12,
        budget_ratio: 2.0,
        mean_interarrival: 50.0,
        arrivals: ArrivalProcess::Bursty { burst: 4 },
        max_map_tasks: 12,
        seed: 4,
        ..Default::default()
    };
    let workload = generate(&cfg, &exp).unwrap();
    // Bursts of 4 share arrival slots 1 apart.
    assert!(workload[1].arrival() - workload[0].arrival() <= 1);
    let mut rush = RushScheduler::new(RushConfig::default());
    let r = exp.run(workload, &mut rush).unwrap();
    assert_eq!(r.outcomes.len(), 12);
}

#[test]
fn cora_mode_runs_and_is_less_conservative() {
    // CoRA (δ=0, mean estimator) and RUSH both complete the workload;
    // their plans differ because RUSH provisions the robust quantile.
    let exp = Experiment::new(cluster()).with_sim_seed(5);
    let cfg = WorkloadConfig {
        jobs: 8,
        budget_ratio: 1.5,
        mean_interarrival: 60.0,
        max_map_tasks: 12,
        seed: 5,
        ..Default::default()
    };
    let workload = generate(&cfg, &exp).unwrap();
    let mut cora = RushScheduler::cora();
    let mut rush = RushScheduler::new(RushConfig::default());
    let rc = exp.run(workload.clone(), &mut cora).unwrap();
    let rr = exp.run(workload, &mut rush).unwrap();
    assert_eq!(rc.outcomes.len(), 8);
    assert_eq!(rr.outcomes.len(), 8);
}

#[test]
fn lp_reference_validates_a_real_plan_level() {
    use rush::core::onion::{peel, OnionJob, Shifted};
    use rush::core::reference::max_min_level_lp;
    use rush::utility::TimeUtility;
    // A realistic mid-run state: three jobs with different slack.
    let utils = [
        TimeUtility::sigmoid(120.0, 5.0, 0.1).unwrap(),
        TimeUtility::sigmoid(400.0, 3.0, 0.02).unwrap(),
        TimeUtility::sigmoid(250.0, 4.0, 0.05).unwrap(),
    ];
    let shifted: Vec<Shifted<'_>> =
        utils.iter().map(|u| Shifted::new(u, 20.0)).collect();
    let jobs: Vec<OnionJob<'_>> = shifted
        .iter()
        .zip([600u64, 900, 700])
        .map(|(u, demand)| OnionJob { demand, utility: u })
        .collect();
    let lp = max_min_level_lp(&jobs, 12, 1e-3, 1e6).unwrap();
    let targets = peel(&jobs, 12, 1e-3, 1e6).unwrap();
    let onion_min = targets.iter().map(|t| t.level).fold(f64::INFINITY, f64::min);
    assert!(
        (lp - onion_min).abs() < 0.05,
        "LP {lp} vs onion {onion_min} on a shifted mid-run instance"
    );
}

//! Watch RUSH's feedback cycle converge: the projected completion times
//! and robust demands of the CA plan, recomputed as runtime samples
//! accumulate — the data the paper's enhanced HTTP interface (Fig. 2)
//! displays, including the "impossible job" red-row flag.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example feedback_cycle
//! ```

use rush::core::plan::{compute_plan, PlanInput};
use rush::core::RushConfig;
use rush::metrics::table::{fmt_f64, Table};
use rush::prob::dist::{Continuous, Gaussian};
use rush::prob::rng::seeded_rng;
use rush::utility::TimeUtility;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = RushConfig::default();
    let capacity = 16u32;
    let truth = Gaussian::new(30.0, 12.0)?; // true task runtime, hidden
    let mut rng = seeded_rng(11);

    // One job: 60 tasks, sigmoid budget 300 slots. We replay the DE/CA
    // cycle at increasing progress points.
    let total_tasks = 60usize;
    let utility = TimeUtility::sigmoid(300.0, 5.0, 0.05)?;
    let all_runtimes: Vec<u64> =
        (0..total_tasks).map(|_| truth.sample(&mut rng).round().max(1.0) as u64).collect();

    println!("one job: {total_tasks} tasks ~ N(30, 12) (hidden), budget 300, capacity {capacity}\n");
    let mut t = Table::new(["done", "eta", "R", "target", "level", "desired_now", "impossible"]);
    for done in [0usize, 2, 5, 10, 20, 40, 55] {
        let samples: Vec<u64> = all_runtimes[..done].to_vec();
        let age: f64 = samples.iter().sum::<u64>() as f64 / capacity as f64; // rough elapsed
        let inputs = vec![PlanInput {
            samples: samples.into(),
            remaining_tasks: total_tasks - done,
            running: 0,
            failed_attempts: 0,
            age,
            utility,
        }];
        let plan = compute_plan(&cfg, capacity, &inputs)?;
        let e = &plan.entries[0];
        t.row([
            done.to_string(),
            e.eta.to_string(),
            e.task_len.to_string(),
            fmt_f64(e.target, 1),
            fmt_f64(e.level, 3),
            e.desired_now.to_string(),
            e.impossible.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("With no samples the cold prior (60±20) over-estimates demand; as");
    println!("samples arrive, η converges to ~30·remaining and the plan relaxes.");
    Ok(())
}

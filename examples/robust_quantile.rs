//! The robust demand pipeline in isolation: estimate a job's remaining
//! demand from runtime samples, then ask WCDE for the worst-case quantile
//! at different ambiguity radii — including with a custom, user-supplied
//! distribution estimator (the extension point the paper's DE framework
//! advertises).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example robust_quantile
//! ```

use rush::core::wcde::worst_case_quantile;
use rush::estimator::{
    DistributionEstimator, Estimate, EstimatorError, GaussianEstimator, MeanEstimator,
};
use rush::prob::Pmf;

/// A custom DE class: a triangular kernel around the sample mean whose
/// width is three sample standard deviations — deliberately heavier-tailed
/// than the Gaussian near its center.
#[derive(Debug)]
struct TriangularEstimator {
    bins: usize,
}

impl DistributionEstimator for TriangularEstimator {
    fn name(&self) -> &str {
        "triangular"
    }

    fn estimate(
        &self,
        samples: &[u64],
        remaining_tasks: usize,
    ) -> Result<Estimate, EstimatorError> {
        if samples.is_empty() {
            return Err(EstimatorError::NoSamples);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<u64>() as f64 / n;
        let var = samples.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / n.max(2.0);
        let total_mean = mean * remaining_tasks as f64;
        let half_width = 3.0 * (var * remaining_tasks as f64).sqrt().max(1.0);
        let hi = total_mean + half_width;
        let bin_width = ((hi / self.bins as f64).ceil() as u64).max(1);
        let bins = (hi / bin_width as f64).ceil() as usize + 1;
        let weights: Vec<f64> = (0..bins)
            .map(|l| {
                let x = (l as u64 * bin_width) as f64;
                (1.0 - (x - total_mean).abs() / half_width).max(0.0)
            })
            .collect();
        let pmf = Pmf::from_weights(weights, bin_width)?.with_support_floor(1e-12)?;
        Ok(Estimate { pmf, mean_task_runtime: mean.max(1.0) })
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 40 observed task runtimes around 60 slots with spread.
    let samples: Vec<u64> = (0..40).map(|i| 45 + (i * 7) % 31).collect();
    let remaining = 61usize;
    let theta = 0.9;

    println!("samples: n={} mean≈{:.1}", samples.len(), {
        samples.iter().sum::<u64>() as f64 / samples.len() as f64
    });
    println!("remaining tasks: {remaining}; completion-probability target θ = {theta}\n");

    let estimators: Vec<Box<dyn DistributionEstimator>> = vec![
        Box::new(MeanEstimator::new(1024)),
        Box::new(GaussianEstimator::new(1024)),
        Box::new(TriangularEstimator { bins: 1024 }),
    ];

    println!("{:<12} {:>10} {:>10} {:>10} {:>10}", "estimator", "mean", "δ=0", "δ=0.7", "δ=1.4");
    for de in &estimators {
        let est = de.estimate(&samples, remaining)?;
        let mut row = format!("{:<12} {:>10.0}", de.name(), est.pmf.mean());
        for delta in [0.0, 0.7, 1.4] {
            let eta = worst_case_quantile(&est.pmf, theta, delta)?.eta;
            row.push_str(&format!(" {eta:>10}"));
        }
        println!("{row}");
    }
    println!("\nη grows with δ: the scheduler provisions more container-slots as it");
    println!("trusts the estimate less. The mean estimator's impulse cannot spread");
    println!("within the KL ball, so its η barely moves — the paper's reason to");
    println!("prefer the Gaussian estimator.");
    Ok(())
}

//! Visualize a scheduler's container usage as an ASCII Gantt chart, built
//! from the simulator's execution trace.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example gantt_view
//! ```

use rush::core::RushConfig;
use rush::planner::RushScheduler;
use rush::metrics::gantt::{utilization, Gantt, GanttSpan};
use rush::sched::Fifo;
use rush::sim::engine::{SimConfig, Simulation};
use rush::sim::job::{JobSpec, Phase, TaskSpec};
use rush::sim::trace::TraceEvent;
use rush::sim::Scheduler;
use rush::utility::Sensitivity;

fn build_jobs() -> Result<Vec<JobSpec>, Box<dyn std::error::Error>> {
    let mk = |label: &str, arrival, maps, runtime: f64, s: Sensitivity, budget: u64| {
        JobSpec::builder(label)
            .arrival(arrival)
            .tasks((0..maps).map(|_| TaskSpec::new(runtime, Phase::Map)))
            .utility(s.utility_for(budget as f64, 4.0).unwrap())
            .sensitivity(s)
            .budget(budget)
            .build()
            .unwrap()
    };
    Ok(vec![
        mk("a-critical", 0, 10, 20.0, Sensitivity::Critical, 80),
        mk("b-batch", 0, 14, 25.0, Sensitivity::Insensitive, 100_000),
        mk("c-sensitive", 30, 8, 15.0, Sensitivity::Sensitive, 120),
    ])
}

fn chart(name: &str, sched: &mut dyn Scheduler) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::homogeneous(1, 6).with_trace(true).with_seed(3);
    let result = Simulation::new(cfg, build_jobs()?)?.run(sched)?;
    let trace = result.trace.expect("tracing on");
    let mut g = Gantt::new();
    let mut spans = Vec::new();
    for e in trace.events() {
        if let TraceEvent::TaskStarted { job, container, at, duration, .. }
        | TraceEvent::TaskSpeculated { job, container, at, duration, .. } = *e
        {
            let span = GanttSpan {
                container,
                start: at,
                duration,
                label: (b'a' + (job.0 % 26) as u8) as char,
            };
            g.span(span);
            spans.push(span);
        }
    }
    println!("== {name} ==  (a=critical, b=insensitive batch, c=sensitive)");
    print!("{}", g.render(72));
    println!("utilization: {:.0}%\n", utilization(&spans, 6) * 100.0);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    chart("RUSH", &mut RushScheduler::new(RushConfig::default()))?;
    chart("FIFO", &mut Fifo::new())?;
    println!("RUSH holds the batch job (b) back behind the deadline jobs; FIFO");
    println!("interleaves by arrival order and lets b block c.");
    Ok(())
}

//! End-to-end scheduler shoot-out on a generated PUMA-style workload —
//! a miniature of the paper's Sec. V-B evaluation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scheduler_comparison -- [jobs] [budget_ratio]
//! ```

use rush::core::RushConfig;
use rush::planner::RushScheduler;
use rush::metrics::table::{fmt_f64, Table};
use rush::metrics::FiveNumber;
use rush::sched::{Edf, Fair, Fifo, Rrh};
use rush::sim::cluster::ClusterSpec;
use rush::sim::perturb::Interference;
use rush::sim::Scheduler;
use rush::workload::{generate, Experiment, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let ratio: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1.5);

    let cluster = ClusterSpec::paper_testbed(8)?;
    let exp = Experiment::new(cluster)
        .with_interference(Interference::LogNormal { cv: 0.25 })
        .with_sim_seed(7);
    let cfg = WorkloadConfig {
        jobs,
        budget_ratio: ratio,
        mean_interarrival: 45.0,
        seed: 7,
        ..Default::default()
    };
    let workload = generate(&cfg, &exp)?;
    println!(
        "{} jobs, budget = {ratio}x benchmarked runtime, 48 containers\n",
        workload.len()
    );

    let mut rush = RushScheduler::new(RushConfig::default());
    let mut fifo = Fifo::new();
    let mut edf = Edf::new();
    let mut rrh = Rrh::new();
    let mut fair = Fair::new();
    let mut set: [(&str, &mut dyn Scheduler); 5] = [
        ("RUSH", &mut rush),
        ("FIFO", &mut fifo),
        ("EDF", &mut edf),
        ("RRH", &mut rrh),
        ("Fair", &mut fair),
    ];
    let results = exp.compare(&workload, &mut set)?;

    let mut t =
        Table::new(["scheduler", "mean_util", "zero_util", "median_lat", "q3_lat", "met", "makespan"]);
    for (name, r) in &results {
        let utils = r.utility_vector();
        let lat: Vec<f64> = r.time_aware_outcomes().filter_map(|o| o.latency()).collect();
        let s = FiveNumber::from_samples(&lat);
        let met = lat.iter().filter(|&&l| l <= 0.0).count();
        t.row([
            name.clone(),
            fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
            fmt_f64(r.zero_utility_fraction(1e-3), 3),
            fmt_f64(s.median, 1),
            fmt_f64(s.q3, 1),
            format!("{}/{}", met, lat.len()),
            r.makespan.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("latency = runtime − budget over time-aware (critical+sensitive) jobs;");
    println!("met = jobs finishing within budget.");
    Ok(())
}

//! Task-failure injection and recovery, with an execution trace — the
//! uncertainty source the paper defers to future work, implemented here.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use rush::core::RushConfig;
use rush::planner::RushScheduler;
use rush::sim::engine::{SimConfig, Simulation};
use rush::sim::job::{JobSpec, Phase, TaskSpec};
use rush::sim::perturb::{FailureModel, Interference};
use rush::sim::trace::TraceEvent;
use rush::utility::TimeUtility;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let job = JobSpec::builder("flaky-etl")
        .tasks((0..12).map(|_| TaskSpec::new(15.0, Phase::Map)))
        .task(TaskSpec::new(10.0, Phase::Reduce))
        .utility(TimeUtility::sigmoid(200.0, 5.0, 0.05)?)
        .budget(200)
        .build()?;

    let cfg = SimConfig::homogeneous(1, 4)
        .with_interference(Interference::LogNormal { cv: 0.2 })
        .with_failures(FailureModel::Bernoulli { p: 0.25 })
        .with_trace(true)
        .with_seed(7);

    let mut rush = RushScheduler::new(RushConfig::default());
    let result = Simulation::new(cfg, vec![job])?.run(&mut rush)?;
    let outcome = &result.outcomes[0];
    println!(
        "job finished at {} (budget 200, utility {:.2}); {} failed attempts\n",
        outcome.runtime, outcome.utility, result.failed_attempts
    );

    let trace = result.trace.expect("tracing enabled");
    println!("trace ({} events):", trace.len());
    for e in trace.events() {
        match *e {
            TraceEvent::TaskStarted { task, container, at, duration, .. } => {
                println!("  t={at:>4}  start   {task} on container {container} ({duration} slots)");
            }
            TraceEvent::TaskFailed { task, at, runtime, .. } => {
                println!("  t={at:>4}  FAIL    {task} after {runtime} slots (re-queued)");
            }
            TraceEvent::TaskFinished { task, at, runtime, .. } => {
                println!("  t={at:>4}  finish  {task} ({runtime} slots)");
            }
            TraceEvent::JobArrived { at, .. } => println!("  t={at:>4}  job arrives"),
            TraceEvent::JobCompleted { at, .. } => println!("  t={at:>4}  job complete"),
            TraceEvent::TaskSpeculated { task, container, at, .. } => {
                println!("  t={at:>4}  spec    {task} duplicated on container {container}");
            }
            TraceEvent::TaskKilled { task, at, .. } => {
                println!("  t={at:>4}  kill    {task} duplicate cancelled");
            }
        }
    }
    println!("\nRUSH observes the failures and inflates the job's robust demand by");
    println!("the expected rework factor, keeping the plan honest.");
    Ok(())
}

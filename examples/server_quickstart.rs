//! Server quickstart: spin up an in-process `rushd`, submit jobs over the
//! wire protocol, watch the plan evolve as task samples arrive, and shut
//! the daemon down with a snapshot.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example server_quickstart
//! ```
//!
//! The same conversation works against a standalone daemon started with
//! `cargo run --release --bin rushd` (or `rush-cli serve`); swap the
//! ephemeral address for `127.0.0.1:4117`.

use rush::serve::protocol::JobSubmission;
use rush::serve::{serve, Client, ServeConfig};
use rush::utility::TimeUtility;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Start a daemon on an ephemeral loopback port. One logical slot
    //    per 50 ms of wall clock; epochs close after 8 submissions or
    //    10 ms, whichever comes first.
    let snapshot = std::env::temp_dir().join("rushd_quickstart_snapshot.json");
    std::fs::remove_file(&snapshot).ok();
    let handle = serve(ServeConfig {
        addr: "127.0.0.1:0".into(),
        capacity: 16,
        epoch_max_batch: 8,
        epoch_ms: 10,
        ms_per_slot: 50,
        snapshot_path: Some(snapshot.clone()),
        shards: 1,
        // Frontend, reactor count and backpressure knobs keep their
        // defaults (thread-per-connection; see DESIGN.md §15 for the
        // reactor alternative).
        ..ServeConfig::default()
    })?;
    println!("daemon on {}", handle.local_addr());

    // 2. Submit three jobs with different completion-time sensitivities.
    let mut client = Client::connect(handle.local_addr())?;
    let jobs = [
        ("grep", 12, 40.0, TimeUtility::sigmoid(3000.0, 5.0, 0.005)?, Some(3000)),
        ("terasort", 30, 55.0, TimeUtility::linear(6000.0, 3.0, 0.01)?, Some(6000)),
        ("backfill", 10, 45.0, TimeUtility::constant(1.0)?, None),
    ];
    let mut ids = Vec::new();
    for (label, tasks, hint, utility, budget) in jobs {
        let (decision, id, epoch, waited_us) = client.submit(JobSubmission {
            label: label.into(),
            tasks,
            runtime_hint: Some(hint),
            utility,
            budget,
            priority: 1,
        })?;
        println!("{label:9} -> {decision:?} (id {id:?}, epoch {epoch}, waited {waited_us} us)");
        ids.push(id);
    }

    // 3. The plan: robust demand η per job, its onion-peeling target slot
    //    and the Theorem-3 completion bound.
    for row in client.query_plan(None)? {
        println!(
            "  {:9} eta {:6}  target {:8.1}  bound {:8.1}{}",
            row.label,
            row.eta,
            row.target,
            row.target + row.task_len as f64,
            if row.impossible { "  (deadline impossible)" } else { "" },
        );
    }

    // 4. Report a few finished map tasks for the first job; the next
    //    query pays one incremental replan and the bound tightens.
    let grep = ids[0].expect("admitted");
    for runtime in [38, 44, 41] {
        client.report_sample(grep, runtime)?;
    }
    println!("after 3 samples, grep bound: {:.1}", client.predict(grep)?);

    // 5. Graceful shutdown with a snapshot. Restarting with the same
    //    snapshot path reproduces the plan bit-for-bit (see the
    //    `snapshot_restore` integration test for the proof).
    let stats = client.stats()?;
    println!(
        "epochs {} admitted {} deferred {} rejected {}",
        stats.epochs, stats.admitted, stats.deferred, stats.rejected
    );
    client.shutdown(true)?;
    handle.join()?;
    println!("snapshot written to {}", snapshot.display());
    std::fs::remove_file(&snapshot).ok();
    Ok(())
}

//! Quickstart: schedule a small MapReduce-like workload with RUSH and
//! compare it against FIFO.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rush::core::RushConfig;
use rush::planner::RushScheduler;
use rush::sched::Fifo;
use rush::sim::cluster::ClusterSpec;
use rush::sim::engine::{SimConfig, Simulation};
use rush::sim::job::{JobSpec, Phase, TaskSpec};
use rush::sim::perturb::Interference;
use rush::utility::Sensitivity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small heterogeneous cluster: 2 nodes x 4 containers.
    let cluster = ClusterSpec::new(vec![(0.9, 4), (1.1, 4)])?;

    // Three jobs with different completion-time sensitivities. Task base
    // runtimes are what the workload generator would draw from a template;
    // the scheduler never sees them.
    let mk_job = |label: &str,
                  arrival: u64,
                  maps: usize,
                  runtime: f64,
                  sensitivity: Sensitivity,
                  budget: u64|
     -> Result<JobSpec, Box<dyn std::error::Error>> {
        Ok(JobSpec::builder(label)
            .arrival(arrival)
            .tasks((0..maps).map(|_| TaskSpec::new(runtime, Phase::Map)))
            .task(TaskSpec::new(runtime / 2.0, Phase::Reduce))
            .utility(sensitivity.utility_for(budget as f64, 5.0)?)
            .sensitivity(sensitivity)
            .budget(budget)
            .build()?)
    };
    let jobs = vec![
        mk_job("analytics-critical", 0, 12, 20.0, Sensitivity::Critical, 90)?,
        mk_job("report-sensitive", 5, 12, 20.0, Sensitivity::Sensitive, 150)?,
        mk_job("backfill-batch", 10, 16, 25.0, Sensitivity::Insensitive, 10_000)?,
    ];

    // Shared-cloud uncertainty: log-normal interference on task runtimes.
    let config = SimConfig::new(cluster)
        .with_interference(Interference::LogNormal { cv: 0.3 })
        .with_seed(42);

    for (name, run) in [
        ("RUSH", {
            let mut s = RushScheduler::new(RushConfig::default());
            Simulation::new(config.clone(), jobs.clone())?.run(&mut s)?
        }),
        ("FIFO", {
            let mut s = Fifo::new();
            Simulation::new(config.clone(), jobs.clone())?.run(&mut s)?
        }),
    ] {
        println!("== {name} ==");
        for o in &run.outcomes {
            println!(
                "  {:<20} runtime {:>5}  budget {:>6}  latency {:>7.1}  utility {:.2}",
                o.label,
                o.runtime,
                o.budget.unwrap_or(0),
                o.latency().unwrap_or(0.0),
                o.utility
            );
        }
        println!("  makespan {}  assignments {}\n", run.makespan, run.assignments);
    }
    println!("RUSH defers the insensitive backfill job so the critical and");
    println!("sensitive jobs meet their budgets; FIFO serves arrival order.");
    Ok(())
}

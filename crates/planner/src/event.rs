//! Typed events driving the planner kernel, and their outcomes.
//!
//! Every adapter mutation is one of these events; [`PlannerCore::apply`]
//! dispatches them onto the kernel's named methods. The event form exists
//! so callers that treat the kernel as a state machine (the CLI's offline
//! replay, future sharding/replication layers) can log, forward and replay
//! a single stream; in-process adapters are free to call the methods
//! directly — the two surfaces are defined to be equivalent.

use crate::core::{JobId, JobSpec, PlanDelta, PlannerCore, SampleOutcome};
use crate::PlannerError;

/// One state transition of the planner kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannerEvent {
    /// A job entered the system. With `id: None` the kernel assigns the
    /// next free id (daemon semantics); with `Some(id)` the caller owns
    /// the id space (simulator semantics) and re-registration replaces
    /// the record.
    JobArrival {
        /// Caller-chosen id, or `None` to let the kernel assign one.
        id: Option<JobId>,
        /// The job being registered.
        spec: JobSpec,
    },
    /// A task of `job` completed in `runtime` slots.
    TaskSample {
        /// The job the sample belongs to.
        job: JobId,
        /// Observed task runtime in slots.
        runtime: u64,
    },
    /// A task attempt of `job` failed (its η inflates next plan).
    TaskFailed {
        /// The job charged with the failure.
        job: JobId,
    },
    /// `job` was cancelled or fully completed; drop it from the registry.
    Cancel {
        /// The job to remove.
        job: JobId,
    },
    /// Admission control parked or unparked `job`.
    SetParked {
        /// The job to (un)park.
        job: JobId,
        /// `true` to park, `false` to unpark.
        parked: bool,
    },
    /// The epoch closed / the clock reads `now_slot`: ensure the plan is
    /// fresh, recomputing from the registry if needed.
    Tick {
        /// Logical slot to plan at.
        now_slot: u64,
    },
    /// The cluster's effective capacity changed (spot revocation, restock,
    /// node failure, operator resize). The next plan pass replans against
    /// the new total; the peel replay treats it as a divergence layer
    /// rather than a from-scratch re-peel.
    CapacityChange {
        /// New effective capacity in containers; must be ≥ 1.
        capacity: u32,
    },
}

/// What applying a [`PlannerEvent`] did.
#[derive(Debug, Clone, PartialEq)]
pub enum EventOutcome {
    /// The job was registered under this id.
    Arrived {
        /// Assigned (or caller-chosen) job id.
        job: JobId,
    },
    /// The sample was ingested.
    Sampled(SampleOutcome),
    /// The failure was recorded (`known` = the job was resident).
    FailureRecorded {
        /// Whether the job was resident.
        known: bool,
    },
    /// The cancel was processed (`known` = the job was resident).
    Cancelled {
        /// Whether the job was resident.
        known: bool,
    },
    /// The park flag was updated.
    Parked,
    /// The plan is fresh; this is what the last replan changed.
    Planned(PlanDelta),
    /// The capacity was updated.
    CapacityChanged {
        /// The new effective capacity.
        capacity: u32,
    },
}

impl PlannerCore {
    /// Applies one typed event. Equivalent to calling the corresponding
    /// named method ([`PlannerCore::admit`], [`PlannerCore::ingest_sample`],
    /// [`PlannerCore::record_failure`], [`PlannerCore::cancel`],
    /// [`PlannerCore::set_parked`], [`PlannerCore::plan_at`],
    /// [`PlannerCore::set_capacity`]).
    ///
    /// # Errors
    ///
    /// Whatever the corresponding method returns.
    pub fn apply(&mut self, event: PlannerEvent) -> Result<EventOutcome, PlannerError> {
        match event {
            PlannerEvent::JobArrival { id: None, spec } => {
                Ok(EventOutcome::Arrived { job: self.admit(spec) })
            }
            PlannerEvent::JobArrival { id: Some(id), spec } => {
                self.admit_as(id, spec);
                Ok(EventOutcome::Arrived { job: id })
            }
            PlannerEvent::TaskSample { job, runtime } => {
                self.ingest_sample(job, runtime).map(EventOutcome::Sampled)
            }
            PlannerEvent::TaskFailed { job } => {
                Ok(EventOutcome::FailureRecorded { known: self.record_failure(job) })
            }
            PlannerEvent::Cancel { job } => {
                Ok(EventOutcome::Cancelled { known: self.cancel(job) })
            }
            PlannerEvent::SetParked { job, parked } => {
                self.set_parked(job, parked)?;
                Ok(EventOutcome::Parked)
            }
            PlannerEvent::Tick { now_slot } => {
                let delta = self.plan_at(now_slot)?.clone();
                Ok(EventOutcome::Planned(delta))
            }
            PlannerEvent::CapacityChange { capacity } => {
                if capacity == 0 {
                    return Err(PlannerError::Config("capacity must be >= 1".into()));
                }
                self.set_capacity(capacity);
                Ok(EventOutcome::CapacityChanged { capacity })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_core::RushConfig;
    use rush_utility::TimeUtility;

    fn spec(label: &str, tasks: u64) -> JobSpec {
        JobSpec {
            label: label.into(),
            utility: TimeUtility::sigmoid(400.0, 3.0, 0.02).expect("valid utility"),
            tasks,
            arrived_slot: 0,
            runtime_hint: Some(40.0),
            parked: false,
        }
    }

    #[test]
    fn event_stream_is_equivalent_to_method_calls() {
        let mut by_events = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let mut by_methods = PlannerCore::new(RushConfig::default(), 8).expect("kernel");

        let id = match by_events
            .apply(PlannerEvent::JobArrival { id: None, spec: spec("a", 5) })
            .expect("arrival")
        {
            EventOutcome::Arrived { job } => job,
            other => panic!("unexpected outcome {other:?}"),
        };
        by_events.apply(PlannerEvent::TaskSample { job: id, runtime: 42 }).expect("sample");
        by_events.apply(PlannerEvent::TaskFailed { job: id }).expect("failure");
        let planned = by_events.apply(PlannerEvent::Tick { now_slot: 3 }).expect("tick");

        let mid = by_methods.admit(spec("a", 5));
        by_methods.ingest_sample(mid, 42).expect("sample");
        by_methods.record_failure(mid);
        let mdelta = by_methods.plan_at(3).expect("plan").clone();

        assert_eq!(id, mid);
        assert_eq!(planned, EventOutcome::Planned(mdelta));
        assert_eq!(by_events.plan(), by_methods.plan());
        assert_eq!(by_events.plan_ids(), by_methods.plan_ids());
    }

    #[test]
    fn explicit_id_arrival_replaces_and_bumps_next_id() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        k.apply(PlannerEvent::JobArrival { id: Some(JobId(7)), spec: spec("x", 3) })
            .expect("arrival");
        assert_eq!(k.next_id(), 8);
        assert_eq!(k.job(JobId(7)).map(|j| j.remaining_tasks), Some(3));
        // Re-registration replaces the record.
        k.apply(PlannerEvent::JobArrival { id: Some(JobId(7)), spec: spec("x", 9) })
            .expect("arrival");
        assert_eq!(k.job(JobId(7)).map(|j| j.remaining_tasks), Some(9));
    }

    #[test]
    fn cancel_and_park_events_report_status() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let id = k.admit(spec("a", 2));
        assert_eq!(
            k.apply(PlannerEvent::SetParked { job: id, parked: true }).expect("park"),
            EventOutcome::Parked
        );
        assert_eq!(
            k.apply(PlannerEvent::Cancel { job: id }).expect("cancel"),
            EventOutcome::Cancelled { known: true }
        );
        assert_eq!(
            k.apply(PlannerEvent::Cancel { job: id }).expect("cancel"),
            EventOutcome::Cancelled { known: false }
        );
        assert!(k.apply(PlannerEvent::SetParked { job: id, parked: true }).is_err());
    }

    #[test]
    fn capacity_change_event_matches_method_call() {
        let mut by_events = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let mut by_methods = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        by_events.apply(PlannerEvent::JobArrival { id: None, spec: spec("a", 5) }).expect("a");
        by_methods.admit(spec("a", 5));
        by_events.apply(PlannerEvent::Tick { now_slot: 0 }).expect("tick");
        by_methods.plan_at(0).expect("plan");

        // A revocation mid-stream: the event and the method land on the
        // same kernel state and the same next plan.
        assert_eq!(
            by_events.apply(PlannerEvent::CapacityChange { capacity: 5 }).expect("capacity"),
            EventOutcome::CapacityChanged { capacity: 5 }
        );
        by_methods.set_capacity(5);
        assert_eq!(by_events.capacity(), by_methods.capacity());
        let de = by_events.apply(PlannerEvent::Tick { now_slot: 1 }).expect("tick");
        let dm = by_methods.plan_at(1).expect("plan").clone();
        assert_eq!(de, EventOutcome::Planned(dm));
        assert_eq!(by_events.plan(), by_methods.plan());

        // Zero capacity is rejected as a typed config error.
        assert!(matches!(
            by_events.apply(PlannerEvent::CapacityChange { capacity: 0 }),
            Err(PlannerError::Config(_))
        ));
    }
}

//! [`PlannerCore`] — the event-driven planner state machine.
//!
//! The kernel owns the four pieces of state the RUSH driving loop needs
//! and that every adapter previously duplicated:
//!
//! 1. the **job registry** ([`JobRecord`] per [`JobId`], in a `BTreeMap`
//!    so iteration — and therefore planning — is deterministic);
//! 2. the **sample history**: per-job completed-task runtimes plus the
//!    cross-job cold-start pools (same-label first, cluster-wide second);
//! 3. the incremental **[`PlanCache`]** memo for the per-job
//!    estimate+WCDE stage;
//! 4. the current **[`Plan`]**, the slot it was computed at, and the
//!    [`PlanDelta`] describing what the last replan changed.
//!
//! All mutation goes through the event methods (or [`PlannerCore::apply`]
//! with a [`crate::PlannerEvent`]); all planning goes through
//! [`PlannerCore::plan_at`] (registry mode) or
//! [`PlannerCore::plan_roster`] (roster mode). Both modes share the
//! invalidation rule: a plan is fresh exactly when no event arrived since
//! it was computed *and* the logical clock still reads the same slot.

use crate::PlannerError;
use rush_core::config::EstimatorKind;
use rush_core::plan::{compute_plan_incremental, Plan, PlanCache, PlanEntry, PlanInput, PlanPhaseStats, PlanState};
use rush_core::wcde::worst_case_quantile;
use rush_core::RushConfig;
use rush_estimator::{
    DistributionEstimator, EmpiricalEstimator, GaussianEstimator, MeanEstimator,
    WindowedEstimator,
};
use rush_utility::TimeUtility;
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Maximum borrowed samples per cold-start pool (newest kept).
const POOL_CAP: usize = 256;

/// Kernel-level job identifier. All adapters speak this type: the daemon
/// uses the raw `u64` on the wire, the simulator adapter converts from
/// [`rush_sim::JobId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl From<u64> for JobId {
    fn from(raw: u64) -> Self {
        JobId(raw)
    }
}

impl From<rush_sim::JobId> for JobId {
    fn from(id: rush_sim::JobId) -> Self {
        JobId(u64::from(id.0))
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Everything the kernel needs to register a new job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Template / application label (keys the cold-start pools).
    pub label: String,
    /// Completion-time utility.
    pub utility: TimeUtility,
    /// Tasks that have not completed yet at registration time.
    pub tasks: u64,
    /// Logical slot of arrival (ages the job in plan inputs).
    pub arrived_slot: u64,
    /// Optional caller-declared mean task runtime, used by admission
    /// probes before the first sample lands.
    pub runtime_hint: Option<f64>,
    /// Whether the job starts parked (excluded from registry planning).
    pub parked: bool,
}

/// One resident job as the kernel tracks it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Template / application label.
    pub label: String,
    /// Completion-time utility.
    pub utility: TimeUtility,
    /// Tasks that have not reported a sample yet.
    pub remaining_tasks: u64,
    /// Logical slot at which the job was registered.
    pub arrived_slot: u64,
    /// Caller-declared mean task runtime, if any.
    pub runtime_hint: Option<f64>,
    /// Whether the job is parked (excluded from registry planning).
    pub parked: bool,
    /// Completed-task runtime samples (slots), in arrival order.
    /// Maintained in [`ColdStart::OwnSamplesOnly`] mode; roster-mode
    /// callers carry authoritative samples in the roster instead.
    pub samples: Vec<u64>,
    /// Failed task attempts charged to the job (raises its η).
    pub failed_attempts: usize,
}

impl JobRecord {
    fn from_spec(spec: JobSpec) -> Self {
        JobRecord {
            label: spec.label,
            utility: spec.utility,
            remaining_tasks: spec.tasks,
            arrived_slot: spec.arrived_slot,
            runtime_hint: spec.runtime_hint,
            parked: spec.parked,
            samples: Vec::new(),
            failed_attempts: 0,
        }
    }
}

/// How a job with no samples of its own is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdStart {
    /// Only the job's own samples feed its estimate; with none, the
    /// configured prior (or runtime hint, for admission probes) carries
    /// it. The daemon and CLI use this: plans must depend only on
    /// explicitly ingested state so snapshot/restore is bit-exact.
    OwnSamplesOnly,
    /// Borrow same-label pool samples, then any cluster-local samples,
    /// before falling back to the prior — mirroring how production
    /// clusters benchmark recurring applications. The simulator adapter
    /// uses this.
    PooledByLabel,
}

/// One job of a caller-supplied planning roster (roster mode): the caller
/// owns the authoritative per-event job state (the simulator's view) and
/// lends it to the kernel for one plan pass, zero-copy.
#[derive(Debug, Clone, Copy)]
pub struct RosterJob<'a> {
    /// Kernel job id.
    pub id: JobId,
    /// Template label (cold-start pool key).
    pub label: &'a str,
    /// The job's own completed-task runtime samples.
    pub samples: &'a [u64],
    /// Tasks not yet completed.
    pub remaining_tasks: usize,
    /// Tasks currently running.
    pub running: u32,
    /// Failed attempts so far.
    pub failed_attempts: usize,
    /// Slots since arrival.
    pub age: f64,
    /// Completion-time utility.
    pub utility: TimeUtility,
}

/// What one replan changed, keyed by job id — the incremental contract
/// between the kernel and its adapters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanDelta {
    /// Jobs that are new in the plan or whose entry (η, target, mapping
    /// column, …) differs from the previous plan, with their new entries.
    pub changed: Vec<(JobId, PlanEntry)>,
    /// Jobs that were in the previous plan but are not in this one.
    pub removed: Vec<JobId>,
}

impl PlanDelta {
    /// Whether the replan changed nothing.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && self.removed.is_empty()
    }
}

/// Result of ingesting one runtime sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleOutcome {
    /// Whether the sample's job was resident in the registry.
    pub known: bool,
    /// Whether this was the job's last outstanding task (and, with
    /// retirement enabled, the job was dropped from the registry).
    pub completed: bool,
}

/// The planner kernel. See the [crate docs](crate) for the layering.
#[derive(Debug, Clone)]
pub struct PlannerCore {
    config: RushConfig,
    capacity: u32,
    cold_start: ColdStart,
    /// Drop a job from the registry when its last task reports (daemon
    /// semantics). Roster-mode callers keep records alive until an
    /// explicit `Cancel` because late samples may still arrive.
    retire_completed: bool,
    jobs: BTreeMap<JobId, JobRecord>,
    next_id: u64,
    /// Cross-job sample pools keyed by job label (template name).
    label_pool: BTreeMap<String, Vec<u64>>,
    /// All observed samples regardless of label — last-resort cold-start
    /// pool before the configured prior.
    global_pool: Vec<u64>,
    /// Cross-event planning state: the per-job estimate + WCDE memo
    /// table plus the peel trace and mapping pack the delta replan
    /// patches instead of recomputing (see `rush_core::plan::PlanState`).
    state: PlanState,
    /// The most recent plan.
    plan: Plan,
    /// Job ids of `plan.entries`, parallel.
    plan_ids: Vec<JobId>,
    /// Slot the current plan was computed at.
    plan_slot: Option<u64>,
    /// Set by every state-changing event; cleared by a successful replan.
    dirty: bool,
    /// What the last replan changed.
    delta: PlanDelta,
}

impl PlannerCore {
    /// Creates an empty kernel in [`ColdStart::OwnSamplesOnly`] mode with
    /// retirement enabled (daemon semantics).
    ///
    /// # Errors
    ///
    /// [`PlannerError::Config`] for zero capacity, [`PlannerError::Core`]
    /// for an invalid [`RushConfig`].
    pub fn new(config: RushConfig, capacity: u32) -> Result<Self, PlannerError> {
        config.validate()?;
        if capacity == 0 {
            return Err(PlannerError::Config("capacity must be >= 1".into()));
        }
        Ok(PlannerCore {
            config,
            capacity,
            cold_start: ColdStart::OwnSamplesOnly,
            retire_completed: true,
            jobs: BTreeMap::new(),
            next_id: 0,
            label_pool: BTreeMap::new(),
            global_pool: Vec::new(),
            state: PlanState::new(),
            plan: Plan::default(),
            plan_ids: Vec::new(),
            plan_slot: None,
            dirty: false,
            delta: PlanDelta::default(),
        })
    }

    /// Creates a kernel without validating the config — adapter use only:
    /// the simulator's scheduler SPI has no error channel, so an invalid
    /// config must surface as a failed plan pass at planning time (exactly
    /// as it did pre-kernel), not as a construction error.
    pub(crate) fn new_unchecked(config: RushConfig, capacity: u32) -> Self {
        PlannerCore {
            config,
            capacity,
            cold_start: ColdStart::OwnSamplesOnly,
            retire_completed: true,
            jobs: BTreeMap::new(),
            next_id: 0,
            label_pool: BTreeMap::new(),
            global_pool: Vec::new(),
            state: PlanState::new(),
            plan: Plan::default(),
            plan_ids: Vec::new(),
            plan_slot: None,
            dirty: false,
            delta: PlanDelta::default(),
        }
    }

    /// Selects the cold-start policy.
    pub fn with_cold_start(mut self, cold_start: ColdStart) -> Self {
        self.cold_start = cold_start;
        self
    }

    /// Enables or disables dropping a job when its last task reports.
    pub fn with_retirement(mut self, retire: bool) -> Self {
        self.retire_completed = retire;
        self
    }

    /// Rebuilds a kernel from snapshot parts.
    ///
    /// # Errors
    ///
    /// Same as [`PlannerCore::new`], plus [`PlannerError::Snapshot`] when
    /// a job id is duplicated or not below `next_id`.
    pub fn from_parts(
        config: RushConfig,
        capacity: u32,
        jobs: Vec<(JobId, JobRecord)>,
        next_id: u64,
    ) -> Result<Self, PlannerError> {
        let mut kernel = PlannerCore::new(config, capacity)?;
        for (id, record) in jobs {
            if id.0 >= next_id {
                return Err(PlannerError::Snapshot(format!(
                    "job id {id} is not below next_id {next_id}"
                )));
            }
            if kernel.jobs.insert(id, record).is_some() {
                return Err(PlannerError::Snapshot(format!("duplicate job id {id}")));
            }
        }
        kernel.next_id = next_id;
        Ok(kernel)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The scheduler configuration.
    pub fn config(&self) -> &RushConfig {
        &self.config
    }

    /// Cluster capacity in containers.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Next job id [`PlannerCore::admit`] will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Looks up one resident job.
    pub fn job(&self, id: JobId) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// Iterates all resident jobs (planned and parked) in id order.
    pub fn jobs(&self) -> impl Iterator<Item = (JobId, &JobRecord)> {
        self.jobs.iter().map(|(id, j)| (*id, j))
    }

    /// Number of resident jobs (planned and parked).
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Number of parked jobs.
    pub fn parked_count(&self) -> usize {
        self.jobs.values().filter(|j| j.parked).count()
    }

    /// The most recent plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Job ids of [`PlannerCore::plan`]'s entries, parallel.
    pub fn plan_ids(&self) -> &[JobId] {
        &self.plan_ids
    }

    /// Slot the current plan was computed at (`None` before any plan).
    pub fn plan_slot(&self) -> Option<u64> {
        self.plan_slot
    }

    /// What the last replan changed.
    pub fn delta(&self) -> &PlanDelta {
        &self.delta
    }

    /// The plan entry of one job, if it is in the current plan.
    pub fn entry(&self, id: JobId) -> Option<&PlanEntry> {
        let idx = self.plan_ids.iter().position(|p| *p == id)?;
        self.plan.entries.get(idx)
    }

    /// Estimate+WCDE memo hits since construction.
    pub fn cache_hits(&self) -> u64 {
        self.cache().hits()
    }

    /// Estimate+WCDE memo misses since construction.
    pub fn cache_misses(&self) -> u64 {
        self.cache().misses()
    }

    /// The per-job estimate + WCDE memo table of the planning state.
    pub fn cache(&self) -> &PlanCache {
        self.state.cache()
    }

    /// Phase breakdown and delta telemetry of the most recent replan.
    pub fn plan_stats(&self) -> PlanPhaseStats {
        self.state.last_stats()
    }

    /// Whether the current plan is fresh for `now_slot`: no event arrived
    /// since it was computed and the clock still reads the same slot.
    pub fn is_fresh(&self, now_slot: u64) -> bool {
        !self.dirty && self.plan_slot == Some(now_slot)
    }

    /// The smallest capacity under which the current plan's committed
    /// `(target, η)` reservations still satisfy Theorem 2's prefix
    /// condition — the probe a cross-shard rebalancer uses to decide how
    /// far a partition's slice can be cut. Entries the onion marked
    /// impossible are already beyond the theorem and do not pin capacity
    /// (they miss their targets at *any* slice); an empty or stale plan
    /// pins nothing.
    pub fn committed_capacity(&self) -> u32 {
        let reservations: Vec<(f64, u64)> = self
            .plan
            .entries
            .iter()
            .filter(|e| !e.impossible)
            .map(|e| (e.target, e.eta))
            .collect();
        rush_core::onion::prefix_capacity_required(&reservations)
    }

    /// Theorem-2 prefix-capacity headroom of this kernel: how many of its
    /// containers are *not* pinned by the current plan's committed prefix
    /// demand ([`PlannerCore::committed_capacity`]). This is the capacity
    /// a rebalancer may migrate away without breaking any promised
    /// deadline.
    pub fn headroom(&self) -> u32 {
        self.capacity.saturating_sub(self.committed_capacity())
    }

    // ------------------------------------------------------------------
    // Events
    // ------------------------------------------------------------------

    /// Registers a new job under the next free id and returns that id.
    pub fn admit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.dirty = true;
        self.jobs.insert(id, JobRecord::from_spec(spec));
        id
    }

    /// Registers (or re-registers) a job under a caller-chosen id — the
    /// simulator owns its own id space. Bumps `next_id` past `id`.
    pub fn admit_as(&mut self, id: JobId, spec: JobSpec) {
        self.next_id = self.next_id.max(id.0.saturating_add(1));
        self.dirty = true;
        self.jobs.insert(id, JobRecord::from_spec(spec));
    }

    /// Ingests one completed-task runtime sample.
    ///
    /// In [`ColdStart::PooledByLabel`] mode the sample also feeds the
    /// same-label and cluster-wide pools (a sample for an unknown job
    /// still feeds the cluster pool — evidence is evidence). In
    /// [`ColdStart::OwnSamplesOnly`] mode an unknown job is an error.
    ///
    /// # Errors
    ///
    /// [`PlannerError::UnknownJob`] in `OwnSamplesOnly` mode only.
    pub fn ingest_sample(
        &mut self,
        job: JobId,
        runtime: u64,
    ) -> Result<SampleOutcome, PlannerError> {
        match self.cold_start {
            ColdStart::OwnSamplesOnly => {
                let record =
                    self.jobs.get_mut(&job).ok_or(PlannerError::UnknownJob(job.0))?;
                record.samples.push(runtime);
                record.remaining_tasks = record.remaining_tasks.saturating_sub(1);
                let completed = record.remaining_tasks == 0;
                self.dirty = true;
                if completed && self.retire_completed {
                    self.jobs.remove(&job);
                }
                Ok(SampleOutcome { known: true, completed })
            }
            ColdStart::PooledByLabel => {
                self.dirty = true;
                let label = self.jobs.get(&job).map(|r| r.label.clone());
                let known = label.is_some();
                if let Some(label) = label {
                    let pool = self.label_pool.entry(label).or_default();
                    pool.push(runtime);
                    if pool.len() > POOL_CAP {
                        let excess = pool.len() - POOL_CAP;
                        pool.drain(..excess);
                    }
                }
                self.global_pool.push(runtime);
                if self.global_pool.len() > POOL_CAP {
                    let excess = self.global_pool.len() - POOL_CAP;
                    self.global_pool.drain(..excess);
                }
                Ok(SampleOutcome { known, completed: false })
            }
        }
    }

    /// Charges one failed task attempt to the job (the next plan inflates
    /// its η). Returns whether the job was known; the plan is invalidated
    /// either way, since roster-mode callers track attempt counts in the
    /// roster, not the registry.
    pub fn record_failure(&mut self, job: JobId) -> bool {
        self.dirty = true;
        match self.jobs.get_mut(&job) {
            Some(record) => {
                record.failed_attempts += 1;
                true
            }
            None => false,
        }
    }

    /// Removes a job from the registry. Pooled samples the job
    /// contributed are deliberately kept: they are evidence about the
    /// *template*, not the job. Returns whether the job was known; only a
    /// known removal invalidates the plan.
    pub fn cancel(&mut self, job: JobId) -> bool {
        if self.jobs.remove(&job).is_some() {
            self.dirty = true;
            true
        } else {
            false
        }
    }

    /// Parks or unparks a job (registry planning excludes parked jobs).
    ///
    /// # Errors
    ///
    /// [`PlannerError::UnknownJob`] for a non-resident id.
    pub fn set_parked(&mut self, job: JobId, parked: bool) -> Result<(), PlannerError> {
        let record = self.jobs.get_mut(&job).ok_or(PlannerError::UnknownJob(job.0))?;
        if record.parked != parked {
            record.parked = parked;
            self.dirty = true;
        }
        Ok(())
    }

    /// Forces the next plan request to recompute even if nothing visible
    /// changed (epoch close, external state change).
    pub fn invalidate(&mut self) {
        self.dirty = true;
    }

    /// Updates the planning capacity; a change invalidates the plan.
    /// Roster-mode adapters call this with the view's capacity before
    /// planning (the simulator owns the cluster size, not the kernel).
    pub fn set_capacity(&mut self, capacity: u32) {
        if self.capacity != capacity {
            self.capacity = capacity;
            self.dirty = true;
        }
    }

    // ------------------------------------------------------------------
    // Planning
    // ------------------------------------------------------------------

    /// Replans from the kernel's own registry (non-parked jobs, ascending
    /// id order) unless the current plan [is fresh](Self::is_fresh).
    /// Returns the delta of the last replan.
    ///
    /// # Errors
    ///
    /// [`PlannerError::Core`] when the pipeline fails; the previous plan
    /// and staleness are left untouched so the next call retries.
    pub fn plan_at(&mut self, now_slot: u64) -> Result<&PlanDelta, PlannerError> {
        if self.is_fresh(now_slot) {
            return Ok(&self.delta);
        }
        let ids: Vec<JobId> =
            self.jobs.iter().filter(|(_, j)| !j.parked).map(|(id, _)| *id).collect();
        // Destructure for disjoint borrows: the inputs borrow the records
        // and pools while the pipeline takes the plan cache mutably.
        let Self { config, capacity, cold_start, jobs, label_pool, global_pool, state, .. } =
            &mut *self;
        let inputs: Vec<PlanInput<'_>> = ids
            .iter()
            .filter_map(|id| jobs.get(id))
            .map(|j| {
                let samples: &[u64] = match cold_start {
                    ColdStart::OwnSamplesOnly => &j.samples,
                    ColdStart::PooledByLabel => {
                        cold_start_samples(label_pool, global_pool, &j.label, &j.samples)
                    }
                };
                PlanInput {
                    samples: Cow::Borrowed(samples),
                    remaining_tasks: j.remaining_tasks as usize,
                    running: 0,
                    failed_attempts: j.failed_attempts,
                    age: now_slot.saturating_sub(j.arrived_slot) as f64,
                    utility: j.utility,
                }
            })
            .collect();
        let plan = compute_plan_incremental(config, *capacity, &inputs, state)?;
        self.install_plan(now_slot, ids, plan);
        Ok(&self.delta)
    }

    /// Replans from a caller-supplied roster (roster mode) unless the
    /// current plan [is fresh](Self::is_fresh). The roster's order is the
    /// planning order; the kernel contributes cold-start pools and the
    /// plan cache. Returns the delta of the last replan.
    ///
    /// # Errors
    ///
    /// [`PlannerError::Core`] when the pipeline fails; the previous plan
    /// and staleness are left untouched. Callers that must make progress
    /// anyway can install an empty plan via
    /// [`PlannerCore::install_empty_plan`].
    pub fn plan_roster(
        &mut self,
        now_slot: u64,
        roster: &[RosterJob<'_>],
    ) -> Result<&PlanDelta, PlannerError> {
        if self.is_fresh(now_slot) {
            return Ok(&self.delta);
        }
        let Self { config, capacity, cold_start, label_pool, global_pool, state, .. } =
            &mut *self;
        let inputs: Vec<PlanInput<'_>> = roster
            .iter()
            .map(|r| {
                let samples: &[u64] = match cold_start {
                    ColdStart::OwnSamplesOnly => r.samples,
                    ColdStart::PooledByLabel => {
                        cold_start_samples(label_pool, global_pool, r.label, r.samples)
                    }
                };
                PlanInput {
                    samples: Cow::Borrowed(samples),
                    remaining_tasks: r.remaining_tasks,
                    running: r.running,
                    failed_attempts: r.failed_attempts,
                    age: r.age,
                    utility: r.utility,
                }
            })
            .collect();
        let plan = compute_plan_incremental(config, *capacity, &inputs, state)?;
        let ids: Vec<JobId> = roster.iter().map(|r| r.id).collect();
        self.install_plan(now_slot, ids, plan);
        Ok(&self.delta)
    }

    /// Installs an *empty* plan for `now_slot` — the fallback when a plan
    /// pass fails on pathological inputs and the caller must stay live
    /// (the simulator adapter's stall guards keep the cluster moving).
    /// The delta reports every previously planned job as removed.
    pub fn install_empty_plan(&mut self, now_slot: u64) {
        self.install_plan(now_slot, Vec::new(), Plan::default());
    }

    fn install_plan(&mut self, now_slot: u64, ids: Vec<JobId>, plan: Plan) {
        let mut previous: BTreeMap<JobId, PlanEntry> = self
            .plan_ids
            .iter()
            .copied()
            .zip(self.plan.entries.iter().copied())
            .collect();
        let mut changed = Vec::new();
        for (id, entry) in ids.iter().zip(plan.entries.iter()) {
            match previous.remove(id) {
                Some(old) if old == *entry => {}
                _ => changed.push((*id, *entry)),
            }
        }
        let removed: Vec<JobId> = previous.into_keys().collect();
        self.delta = PlanDelta { changed, removed };
        self.plan = plan;
        self.plan_ids = ids;
        self.plan_slot = Some(now_slot);
        self.dirty = false;
        #[cfg(feature = "strict-invariants")]
        self.check_plan_invariants();
    }

    /// Contract layer: structural invariants every installed plan obeys.
    #[cfg(feature = "strict-invariants")]
    fn check_plan_invariants(&self) {
        debug_assert_eq!(
            self.plan_ids.len(),
            self.plan.entries.len(),
            "plan ids and entries must stay parallel"
        );
        let mut seen = std::collections::BTreeSet::new();
        for id in &self.plan_ids {
            debug_assert!(seen.insert(*id), "plan ids must be unique, {id} repeats");
        }
        for (id, _) in &self.delta.changed {
            debug_assert!(
                self.plan_ids.contains(id),
                "changed job {id} must be in the installed plan"
            );
        }
        for id in &self.delta.removed {
            debug_assert!(
                !self.plan_ids.contains(id),
                "removed job {id} must not be in the installed plan"
            );
        }
    }
}

/// Picks the sample set backing a job's estimate: its own completed-task
/// runtimes, else the same-label pool, else the cluster-wide pool. A label
/// pool that exists but holds no samples is *no evidence* — it must not
/// shadow the global pool (a label entry can outlive its drained samples).
/// The returned slice may be empty, in which case the estimator falls back
/// to the configured prior.
pub(crate) fn cold_start_samples<'v>(
    label_pool: &'v BTreeMap<String, Vec<u64>>,
    global_pool: &'v [u64],
    label: &str,
    own: &'v [u64],
) -> &'v [u64] {
    if !own.is_empty() {
        own
    } else if let Some(pool) = label_pool.get(label).filter(|p| !p.is_empty()) {
        pool
    } else {
        // Same-template history is best, but any cluster-local runtime
        // evidence beats an arbitrary prior.
        global_pool
    }
}

/// Estimates a job's robust remaining demand `η` (container·slots) and
/// mean task runtime `R` (slots) from its runtime samples, using exactly
/// the estimator + WCDE path the planner runs — so admission control and
/// planning never disagree about a job's size.
///
/// With no samples yet, the runtime hint (if any) seeds a single
/// pseudo-sample; otherwise the configured cold prior carries the
/// estimate.
///
/// # Errors
///
/// [`PlannerError::Estimator`] / [`PlannerError::Core`] when estimation or
/// robustification fails (e.g. no samples and no prior).
pub fn estimate_eta(
    config: &RushConfig,
    samples: &[u64],
    runtime_hint: Option<f64>,
    remaining_tasks: usize,
) -> Result<(u64, f64), PlannerError> {
    let hint_sample;
    let samples: &[u64] = if samples.is_empty() {
        match runtime_hint {
            Some(h) => {
                hint_sample = [(h.round() as u64).max(1)];
                &hint_sample
            }
            None => samples,
        }
    } else {
        samples
    };
    let estimate = match config.estimator {
        EstimatorKind::Mean => MeanEstimator::new(config.max_bins)
            .with_prior(config.cold_prior)
            .estimate(samples, remaining_tasks)?,
        EstimatorKind::Gaussian => GaussianEstimator::new(config.max_bins)
            .with_prior(config.cold_prior)
            .estimate(samples, remaining_tasks)?,
        EstimatorKind::Empirical { resamples } => {
            EmpiricalEstimator::new(config.max_bins, resamples)
                .with_prior(config.cold_prior)
                .estimate(samples, remaining_tasks)?
        }
        EstimatorKind::Windowed { window } => WindowedEstimator::new(config.max_bins, window)
            .with_prior(config.cold_prior)
            .estimate(samples, remaining_tasks)?,
    };
    let wcde = worst_case_quantile(&estimate.pmf, config.theta, config.delta)?;
    Ok((wcde.eta, estimate.mean_task_runtime))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(label: &str, tasks: u64, arrived: u64) -> JobSpec {
        JobSpec {
            label: label.into(),
            utility: TimeUtility::sigmoid(500.0, 3.0, 0.02).expect("valid utility"),
            tasks,
            arrived_slot: arrived,
            runtime_hint: Some(50.0),
            parked: false,
        }
    }

    #[test]
    fn admit_assigns_ascending_ids_and_dirties() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let a = k.admit(spec("a", 4, 0));
        let b = k.admit(spec("b", 4, 0));
        assert_eq!((a, b), (JobId(0), JobId(1)));
        assert_eq!(k.next_id(), 2);
        assert!(!k.is_fresh(0), "admission invalidates the plan");
    }

    #[test]
    fn plan_is_fresh_within_slot_and_stale_across() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        k.admit(spec("a", 4, 0));
        let delta = k.plan_at(0).expect("plan").clone();
        assert_eq!(delta.changed.len(), 1);
        assert!(k.is_fresh(0));
        assert!(!k.is_fresh(1), "a new slot is a new plan");
        // Same slot, no events: the cached delta comes back, no recompute.
        let misses = k.cache_misses();
        let again = k.plan_at(0).expect("plan").clone();
        assert_eq!(again, delta);
        assert_eq!(k.cache_misses(), misses);
    }

    #[test]
    fn delta_reports_changes_and_removals() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let a = k.admit(spec("a", 4, 0));
        let b = k.admit(spec("b", 8, 0));
        k.plan_at(0).expect("plan");
        // Nothing changed: replanning at the same inputs yields an empty
        // delta (forced via invalidate).
        k.invalidate();
        let delta = k.plan_at(0).expect("plan");
        assert!(delta.is_empty(), "unchanged inputs produce an empty delta");
        // Cancel one job: it must show up as removed, and the survivor's
        // entry typically changes (more capacity for it).
        assert!(k.cancel(a));
        let delta = k.plan_at(0).expect("plan").clone();
        assert_eq!(delta.removed, vec![a]);
        assert!(delta.changed.iter().all(|(id, _)| *id == b));
    }

    #[test]
    fn registry_planning_skips_parked_jobs() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let a = k.admit(spec("a", 4, 0));
        let b = k.admit(JobSpec { parked: true, ..spec("b", 4, 0) });
        k.plan_at(0).expect("plan");
        assert_eq!(k.plan_ids(), &[a]);
        assert_eq!(k.parked_count(), 1);
        k.set_parked(b, false).expect("known job");
        k.plan_at(0).expect("plan");
        assert_eq!(k.plan_ids(), &[a, b]);
        assert!(k.entry(b).is_some());
        assert!(matches!(
            k.set_parked(JobId(99), true),
            Err(PlannerError::UnknownJob(99))
        ));
    }

    #[test]
    fn own_samples_mode_retires_on_last_sample() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let a = k.admit(spec("a", 2, 0));
        let first = k.ingest_sample(a, 40).expect("known");
        assert_eq!(first, SampleOutcome { known: true, completed: false });
        let last = k.ingest_sample(a, 44).expect("known");
        assert_eq!(last, SampleOutcome { known: true, completed: true });
        assert!(k.job(a).is_none(), "retired on last sample");
        assert!(matches!(
            k.ingest_sample(a, 1),
            Err(PlannerError::UnknownJob(0))
        ));
    }

    #[test]
    fn pooled_mode_feeds_pools_even_for_unknown_jobs() {
        let mut k = PlannerCore::new(RushConfig::default(), 8)
            .expect("kernel")
            .with_cold_start(ColdStart::PooledByLabel)
            .with_retirement(false);
        let a = k.admit(spec("tpl", 4, 0));
        let known = k.ingest_sample(a, 30).expect("pooled never errors");
        assert!(known.known);
        let unknown = k.ingest_sample(JobId(77), 31).expect("pooled never errors");
        assert!(!unknown.known);
        // Both samples landed in the global pool; only the known one in
        // the label pool. A fresh same-label job borrows the label pool.
        assert_eq!(
            cold_start_samples(&k.label_pool, &k.global_pool, "tpl", &[]),
            &[30]
        );
        assert_eq!(
            cold_start_samples(&k.label_pool, &k.global_pool, "other", &[]),
            &[30, 31]
        );
    }

    #[test]
    fn pool_caps_drain_oldest() {
        let mut k = PlannerCore::new(RushConfig::default(), 8)
            .expect("kernel")
            .with_cold_start(ColdStart::PooledByLabel);
        let a = k.admit(spec("tpl", 4, 0));
        for i in 0..(POOL_CAP as u64 + 10) {
            k.ingest_sample(a, i).expect("pooled");
        }
        assert_eq!(k.global_pool.len(), POOL_CAP);
        assert_eq!(k.global_pool.first().copied(), Some(10));
        let pool = k.label_pool.get("tpl").expect("label pool exists");
        assert_eq!(pool.len(), POOL_CAP);
    }

    #[test]
    fn cancel_dirties_only_known_jobs() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let a = k.admit(spec("a", 4, 0));
        k.plan_at(0).expect("plan");
        assert!(!k.cancel(JobId(9)), "unknown cancel is a no-op");
        assert!(k.is_fresh(0), "no-op cancel must not invalidate");
        assert!(k.cancel(a));
        assert!(!k.is_fresh(0));
    }

    #[test]
    fn from_parts_validates_ids() {
        let record = JobRecord::from_spec(spec("a", 4, 0));
        let err = PlannerCore::from_parts(
            RushConfig::default(),
            4,
            vec![(JobId(7), record.clone())],
            5,
        );
        assert!(matches!(err, Err(PlannerError::Snapshot(_))));
        let err = PlannerCore::from_parts(
            RushConfig::default(),
            4,
            vec![(JobId(1), record.clone()), (JobId(1), record.clone())],
            5,
        );
        assert!(matches!(err, Err(PlannerError::Snapshot(_))));
        let ok = PlannerCore::from_parts(RushConfig::default(), 4, vec![(JobId(1), record)], 5)
            .expect("consistent parts");
        assert_eq!(ok.next_id(), 5);
        assert_eq!(ok.job_count(), 1);
    }

    #[test]
    fn zero_capacity_is_a_config_error() {
        assert!(matches!(
            PlannerCore::new(RushConfig::default(), 0),
            Err(PlannerError::Config(_))
        ));
    }

    #[test]
    fn estimate_eta_matches_hint_and_scales() {
        let c = RushConfig::default();
        let (eta5, r5) = estimate_eta(&c, &[50, 60, 55], None, 5).expect("estimate");
        let (eta20, _) = estimate_eta(&c, &[50, 60, 55], None, 20).expect("estimate");
        assert!(eta20 > eta5);
        assert!(r5 > 0.0);
        let (small, _) = estimate_eta(&c, &[], Some(10.0), 10).expect("estimate");
        let (big, _) = estimate_eta(&c, &[], Some(1000.0), 10).expect("estimate");
        assert!(big > small);
    }

    #[test]
    fn empty_registry_plans_to_empty_and_clears_cache() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let a = k.admit(spec("a", 4, 0));
        k.plan_at(0).expect("plan");
        assert!(!k.plan().entries.is_empty());
        k.cancel(a);
        let delta = k.plan_at(1).expect("plan").clone();
        assert!(k.plan().entries.is_empty());
        assert_eq!(delta.removed, vec![a]);
    }

    #[test]
    fn install_empty_plan_reports_removals() {
        let mut k = PlannerCore::new(RushConfig::default(), 8).expect("kernel");
        let a = k.admit(spec("a", 4, 0));
        k.plan_at(0).expect("plan");
        k.install_empty_plan(3);
        assert!(k.plan().entries.is_empty());
        assert_eq!(k.delta().removed, vec![a]);
        assert!(k.is_fresh(3));
    }
}

//! The RUSH **planner kernel**: one event-driven owner of all planning
//! state, shared by the simulator adapter, the `rushd` daemon and the CLI.
//!
//! Before this crate existed the stateful driving logic around the paper's
//! DE→WCDE→TAS→mapping pipeline — sample ingestion, label-pool
//! bookkeeping, plan invalidation, recompute triggering, and acting on the
//! resulting [`rush_core::Plan`] — was implemented three times: in the
//! simulator-facing scheduler, in the daemon's job table, and in ad-hoc
//! CLI glue. [`PlannerCore`] centralizes it:
//!
//! * **Single owner** of the job registry, per-job sample history, the
//!   cross-job cold-start pools, the incremental [`rush_core::PlanCache`]
//!   and the current [`rush_core::Plan`].
//! * **Event-sourced**: state changes arrive as typed [`PlannerEvent`]s
//!   (`JobArrival`, `TaskSample`, `TaskFailed`, `Cancel`, `Tick`) via
//!   [`PlannerCore::apply`], or through the equivalent named methods.
//! * **Plan deltas**: every replan emits a [`PlanDelta`] — exactly the
//!   jobs whose `η`/target/mapping changed plus the jobs that left the
//!   plan — so adapters react incrementally instead of rereading whole
//!   plans.
//!
//! Two planning modes cover the three call sites:
//!
//! * **Registry mode** ([`PlannerCore::plan_at`]) — the kernel's own job
//!   records are the source of truth (daemon, CLI). Jobs are planned in
//!   ascending id order; parked jobs are excluded.
//! * **Roster mode** ([`PlannerCore::plan_roster`]) — the caller supplies
//!   a borrowed per-event roster (the simulator's [`ClusterView`]) and the
//!   kernel contributes config, cold-start pools and the plan cache. This
//!   keeps the hot path allocation-light and bit-identical to the
//!   pre-kernel scheduler.
//!
//! [`RushScheduler`] is the thin `rush_sim::Scheduler` adapter over the
//! kernel; `rush-serve` and `rush-cli` drive the same kernel for the
//! online and offline surfaces.
//!
//! [`ClusterView`]: rush_sim::view::ClusterView

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod event;
pub mod scheduler;
pub mod sharded;

pub use crate::core::{
    estimate_eta, ColdStart, JobId, JobRecord, JobSpec, PlanDelta, PlannerCore, RosterJob,
    SampleOutcome,
};
pub use event::{EventOutcome, PlannerEvent};
pub use scheduler::RushScheduler;
pub use sharded::{shard_of_label, ShardedPlanner, DEFAULT_REBALANCE_INTERVAL};

use std::fmt;

/// Unified error type of the planner layer: absorbs the estimation and
/// core-pipeline error enums so every adapter handles one type.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum PlannerError {
    /// The CA pipeline (WCDE / peel / mapping) failed.
    Core(rush_core::CoreError),
    /// Demand estimation failed.
    Estimator(rush_estimator::EstimatorError),
    /// A kernel configuration parameter is invalid.
    Config(String),
    /// An event referenced a job id the kernel does not know.
    UnknownJob(u64),
    /// Restored kernel parts were internally inconsistent.
    Snapshot(String),
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerError::Core(e) => write!(f, "core: {e}"),
            PlannerError::Estimator(e) => write!(f, "estimator: {e}"),
            PlannerError::Config(msg) => write!(f, "config: {msg}"),
            PlannerError::UnknownJob(id) => write!(f, "job {id} is not resident"),
            PlannerError::Snapshot(msg) => write!(f, "snapshot: {msg}"),
        }
    }
}

impl std::error::Error for PlannerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlannerError::Core(e) => Some(e),
            PlannerError::Estimator(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rush_core::CoreError> for PlannerError {
    fn from(e: rush_core::CoreError) -> Self {
        PlannerError::Core(e)
    }
}

impl From<rush_estimator::EstimatorError> for PlannerError {
    fn from(e: rush_estimator::EstimatorError) -> Self {
        PlannerError::Estimator(e)
    }
}

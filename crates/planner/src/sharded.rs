//! [`ShardedPlanner`] — N [`PlannerCore`] partitions behind one kernel
//! surface, for near-linear event-cost scaling at 10k–100k resident jobs.
//!
//! The single-kernel planner replans the *whole* registry whenever any
//! job changes; past a few thousand residents that replan dominates every
//! event. The sharded planner partitions the registry across N kernels by
//! **label hash** (every job of a template lands on the same shard, so
//! the [`crate::ColdStart::PooledByLabel`] pools stay intact), gives each
//! shard a **capacity slice** summing to the cluster's `C`, and replans
//! only the shards an event actually dirtied — a steady-state event
//! touches one shard and costs one `n/N`-job incremental replan. Under
//! the `parallel` feature, epoch-style batches that dirty several shards
//! replan them concurrently on scoped threads.
//!
//! Capacity — not jobs — migrates between shards: a periodic rebalancer
//! probes each shard's Theorem-2 prefix-capacity headroom
//! ([`PlannerCore::headroom`]) and re-splits `C` so every shard keeps at
//! least its committed prefix demand, with the surplus following planned
//! demand (η mass). Because assignment is a pure hash and slices change
//! only at rebalance points, plans stay deterministic and the shard-local
//! caches (PlanCache, peel traces) stay warm.
//!
//! With `shards == 1` every call forwards verbatim to the single kernel —
//! the configuration is bit-identical to a bare [`PlannerCore`], which
//! `tests/sharded_differential.rs` proves over randomized event streams.

use crate::core::{
    ColdStart, JobId, JobRecord, JobSpec, PlanDelta, PlannerCore, RosterJob, SampleOutcome,
};
use crate::event::{EventOutcome, PlannerEvent};
use crate::PlannerError;
use rush_core::plan::PlanEntry;
use rush_core::RushConfig;
use std::collections::BTreeMap;

/// How many plan passes between two rebalance probes, by default.
pub const DEFAULT_REBALANCE_INTERVAL: u64 = 64;

/// Deterministic shard assignment: FNV-1a over the label bytes, reduced
/// modulo the shard count. Pure — the same label always lands on the same
/// shard, across processes and runs — which is what keeps sharded plans
/// reproducible and same-label cold-start pools co-located.
#[must_use]
pub fn shard_of_label(label: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// An even split of `total` containers into `shards` slices: the first
/// `total % shards` slices get one extra container. Requires
/// `total >= shards` so every slice stays positive.
fn even_split(total: u32, shards: usize) -> Vec<u32> {
    let n = shards as u32;
    let base = total / n;
    let extra = total % n;
    (0..n).map(|i| base + u32::from(i < extra)).collect()
}

/// A job registry partitioned across N planner kernels with one capacity
/// slice each. See the [module docs](self) for the design.
#[derive(Debug, Clone)]
pub struct ShardedPlanner {
    shards: Vec<PlannerCore>,
    total: u32,
    /// Owner shard of every resident job (label hash at admission time).
    assignment: BTreeMap<u64, usize>,
    /// Global id counter; shards are driven through `admit_as` so ids
    /// stay unique across the partition.
    next_id: u64,
    /// Merged delta of the last completed plan pass.
    delta: PlanDelta,
    /// Per-shard deltas accumulated across partially-failed passes, so a
    /// retry still reports every change exactly once.
    pending: PlanDelta,
    /// Plan passes since construction (drives the rebalance cadence).
    passes: u64,
    rebalance_interval: u64,
}

impl ShardedPlanner {
    /// Builds a planner partitioned across `shards` kernels with an even
    /// initial capacity split.
    ///
    /// # Errors
    ///
    /// [`PlannerError::Config`] when `shards == 0` or
    /// `capacity < shards` (every slice must hold at least one
    /// container), plus whatever [`PlannerCore::new`] rejects.
    pub fn new(config: RushConfig, capacity: u32, shards: usize) -> Result<Self, PlannerError> {
        if shards == 0 {
            return Err(PlannerError::Config("shard count must be at least 1".into()));
        }
        if (capacity as u64) < shards as u64 {
            return Err(PlannerError::Config(format!(
                "capacity {capacity} cannot be split across {shards} shards (need >= 1 container each)"
            )));
        }
        let cores: Result<Vec<PlannerCore>, PlannerError> = even_split(capacity, shards)
            .into_iter()
            .map(|slice| PlannerCore::new(config, slice))
            .collect();
        Ok(ShardedPlanner {
            shards: cores?,
            total: capacity,
            assignment: BTreeMap::new(),
            next_id: 0,
            delta: PlanDelta::default(),
            pending: PlanDelta::default(),
            passes: 0,
            rebalance_interval: DEFAULT_REBALANCE_INTERVAL,
        })
    }

    /// Adapter-parity constructor: skips config validation, like
    /// [`PlannerCore::new_unchecked`]. The placeholder capacity is
    /// `max(capacity, shards)` so every slice starts positive even before
    /// the first `set_capacity` from a cluster view.
    pub(crate) fn new_unchecked(config: RushConfig, capacity: u32, shards: usize) -> Self {
        let shards = shards.max(1);
        let total = capacity.max(shards as u32);
        ShardedPlanner {
            shards: even_split(total, shards)
                .into_iter()
                .map(|slice| PlannerCore::new_unchecked(config, slice))
                .collect(),
            total,
            assignment: BTreeMap::new(),
            next_id: 0,
            delta: PlanDelta::default(),
            pending: PlanDelta::default(),
            passes: 0,
            rebalance_interval: DEFAULT_REBALANCE_INTERVAL,
        }
    }

    /// Sets the cold-start mode of every shard (builder style).
    #[must_use]
    pub fn with_cold_start(mut self, cold_start: ColdStart) -> Self {
        self.shards = self.shards.into_iter().map(|s| s.with_cold_start(cold_start)).collect();
        self
    }

    /// Sets completed-job retirement on every shard (builder style).
    #[must_use]
    pub fn with_retirement(mut self, retire: bool) -> Self {
        self.shards = self.shards.into_iter().map(|s| s.with_retirement(retire)).collect();
        self
    }

    /// Sets the rebalance cadence in plan passes; `0` disables the
    /// rebalancer (builder style).
    #[must_use]
    pub fn with_rebalance_interval(mut self, passes: u64) -> Self {
        self.rebalance_interval = passes;
        self
    }

    /// Rebuilds a sharded planner from snapshot parts, routing every job
    /// to its label-hash shard.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedPlanner::new`], plus [`PlannerError::Snapshot`]
    /// when a job id repeats or is not below `next_id`.
    pub fn from_parts(
        config: RushConfig,
        capacity: u32,
        shards: usize,
        jobs: Vec<(JobId, JobRecord)>,
        next_id: u64,
    ) -> Result<Self, PlannerError> {
        let mut planner = ShardedPlanner::new(config, capacity, shards)?;
        let mut parts: Vec<Vec<(JobId, JobRecord)>> = vec![Vec::new(); shards];
        for (id, record) in jobs {
            let shard = shard_of_label(&record.label, shards);
            if planner.assignment.insert(id.0, shard).is_some() {
                return Err(PlannerError::Snapshot(format!("duplicate job id {id}")));
            }
            parts[shard].push((id, record));
        }
        let slices: Vec<u32> = planner.shards.iter().map(PlannerCore::capacity).collect();
        for ((core, part), slice) in planner.shards.iter_mut().zip(parts).zip(slices) {
            *core = PlannerCore::from_parts(config, slice, part, next_id)?;
        }
        planner.next_id = next_id;
        Ok(planner)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The scheduler configuration (shared by every shard).
    pub fn config(&self) -> &RushConfig {
        // bound: construction guarantees at least one shard.
        self.shards[0].config()
    }

    /// Total cluster capacity in containers (the sum of all slices).
    pub fn capacity(&self) -> u32 {
        self.total
    }

    /// Number of planner shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current capacity slice of every shard, in shard order. Always
    /// sums to [`ShardedPlanner::capacity`].
    pub fn slices(&self) -> Vec<u32> {
        self.shards.iter().map(PlannerCore::capacity).collect()
    }

    /// Read access to one shard kernel, for introspection and tests.
    /// Mutation goes through the [`ShardedPlanner`] surface only — lint
    /// RUSH-L008 keeps adapter code off this accessor.
    pub fn shard_core(&self, shard: usize) -> &PlannerCore {
        &self.shards[shard]
    }

    /// The owner shard of a resident job, if it is registered.
    pub fn shard_of(&self, job: JobId) -> Option<usize> {
        self.assignment.get(&job.0).copied()
    }

    /// Next job id [`ShardedPlanner::admit`] will assign.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Looks up one resident job.
    pub fn job(&self, id: JobId) -> Option<&JobRecord> {
        self.shards[*self.assignment.get(&id.0)?].job(id)
    }

    /// Iterates all resident jobs across shards in ascending id order.
    pub fn jobs(&self) -> impl Iterator<Item = (JobId, &JobRecord)> {
        let mut all: Vec<(JobId, &JobRecord)> =
            self.shards.iter().flat_map(PlannerCore::jobs).collect();
        all.sort_by_key(|(id, _)| *id);
        all.into_iter()
    }

    /// Number of resident jobs across all shards.
    pub fn job_count(&self) -> usize {
        self.shards.iter().map(PlannerCore::job_count).sum()
    }

    /// Number of parked jobs across all shards.
    pub fn parked_count(&self) -> usize {
        self.shards.iter().map(PlannerCore::parked_count).sum()
    }

    /// Iterates the current plan as `(job, entry)` pairs, shard by shard
    /// (within a shard: that shard's planning order). With one shard this
    /// is exactly the kernel's `plan_ids × plan` zip.
    pub fn planned(&self) -> impl Iterator<Item = (JobId, &PlanEntry)> {
        self.shards
            .iter()
            .flat_map(|s| s.plan_ids().iter().copied().zip(s.plan().entries.iter()))
    }

    /// Number of entries in the current plan across all shards.
    pub fn planned_count(&self) -> usize {
        self.shards.iter().map(|s| s.plan_ids().len()).sum()
    }

    /// The plan entry of one job, if it is in its shard's current plan.
    pub fn entry(&self, id: JobId) -> Option<&PlanEntry> {
        self.shards[*self.assignment.get(&id.0)?].entry(id)
    }

    /// What the last completed plan pass changed, merged across shards.
    pub fn delta(&self) -> &PlanDelta {
        &self.delta
    }

    /// Estimate+WCDE memo hits across all shards.
    pub fn cache_hits(&self) -> u64 {
        self.shards.iter().map(PlannerCore::cache_hits).sum()
    }

    /// Estimate+WCDE memo misses across all shards.
    pub fn cache_misses(&self) -> u64 {
        self.shards.iter().map(PlannerCore::cache_misses).sum()
    }

    /// Whether every shard's plan is fresh for `now_slot`.
    pub fn is_fresh(&self, now_slot: u64) -> bool {
        self.shards.iter().all(|s| s.is_fresh(now_slot))
    }

    /// Theorem-2 headroom of every shard ([`PlannerCore::headroom`]), in
    /// shard order.
    pub fn headrooms(&self) -> Vec<u32> {
        self.shards.iter().map(PlannerCore::headroom).collect()
    }

    // ------------------------------------------------------------------
    // Events
    // ------------------------------------------------------------------

    /// Registers a new job under the next free id on its label's shard.
    pub fn admit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.route_admit(id, spec);
        id
    }

    /// Registers (or re-registers) a job under a caller-chosen id. If a
    /// re-registration changes the label onto a different shard, the old
    /// record is dropped from its previous owner first — a job is owned
    /// by exactly one shard at all times.
    pub fn admit_as(&mut self, id: JobId, spec: JobSpec) {
        self.next_id = self.next_id.max(id.0.saturating_add(1));
        self.route_admit(id, spec);
    }

    fn route_admit(&mut self, id: JobId, spec: JobSpec) {
        let shard = shard_of_label(&spec.label, self.shards.len());
        if let Some(old) = self.assignment.insert(id.0, shard) {
            if old != shard {
                self.shards[old].cancel(id);
            }
        }
        self.shards[shard].admit_as(id, spec);
    }

    /// Ingests one completed-task runtime sample, routed to the job's
    /// owner shard. A sample for an unknown job goes to shard 0 — under
    /// [`ColdStart::PooledByLabel`] stray evidence still feeds a cluster
    /// pool, and with one shard this is exactly the kernel's behavior.
    ///
    /// # Errors
    ///
    /// [`PlannerError::UnknownJob`] in `OwnSamplesOnly` mode only.
    pub fn ingest_sample(
        &mut self,
        job: JobId,
        runtime: u64,
    ) -> Result<SampleOutcome, PlannerError> {
        // Unrouted evidence defaults to shard 0 — with one shard this is
        // exactly the bare kernel's behavior.
        let shard = self.assignment.get(&job.0).copied().unwrap_or(0);
        let outcome = self.shards[shard].ingest_sample(job, runtime)?;
        if outcome.completed && self.shards[shard].job(job).is_none() {
            // Retirement dropped the job from its shard's registry.
            self.assignment.remove(&job.0);
        }
        Ok(outcome)
    }

    /// Charges one failed task attempt to the job's owner shard. Returns
    /// whether the job was known; only its shard's plan is invalidated.
    pub fn record_failure(&mut self, job: JobId) -> bool {
        let shard = self.assignment.get(&job.0).copied().unwrap_or(0);
        self.shards[shard].record_failure(job)
    }

    /// Removes a job from its owner shard. Returns whether it was known.
    pub fn cancel(&mut self, job: JobId) -> bool {
        let shard = self.assignment.remove(&job.0).unwrap_or(0);
        self.shards[shard].cancel(job)
    }

    /// Parks or unparks a job on its owner shard.
    ///
    /// # Errors
    ///
    /// [`PlannerError::UnknownJob`] for a non-resident id.
    pub fn set_parked(&mut self, job: JobId, parked: bool) -> Result<(), PlannerError> {
        let shard =
            *self.assignment.get(&job.0).ok_or(PlannerError::UnknownJob(job.0))?;
        self.shards[shard].set_parked(job, parked)
    }

    /// Forces the next plan pass to recompute every shard.
    pub fn invalidate(&mut self) {
        for s in &mut self.shards {
            s.invalidate();
        }
    }

    /// Updates the total planning capacity. A change re-splits the slices
    /// immediately along the current demand profile — every shard keeps
    /// its Theorem-2 committed prefix demand (floored at one container),
    /// so a revocation shrinks the *surplus* slices first instead of
    /// cutting evenly through promises ([`ShardedPlanner::rebalance`]
    /// semantics, applied at the new total). When the committed floors
    /// alone exceed the new total (the revocation overcommitted the
    /// cluster) the split falls back to even slices; an unchanged total
    /// keeps the current slices.
    ///
    /// # Errors
    ///
    /// [`PlannerError::Config`] when `capacity < shard_count` — a slice
    /// cannot hold less than one container.
    pub fn set_capacity(&mut self, capacity: u32) -> Result<(), PlannerError> {
        if capacity == self.total {
            return Ok(());
        }
        if (capacity as u64) < self.shards.len() as u64 {
            return Err(PlannerError::Config(format!(
                "capacity {capacity} cannot be split across {} shards",
                self.shards.len()
            )));
        }
        self.total = capacity;
        let slices = self
            .demand_split(capacity)
            .unwrap_or_else(|| even_split(capacity, self.shards.len()));
        self.apply_slices(&slices);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Planning
    // ------------------------------------------------------------------

    /// Replans every stale shard from its own registry and returns the
    /// merged delta. Fresh shards are skipped entirely — the scaling
    /// property: a steady-state event dirties one shard, so one event
    /// costs one `n/N`-job incremental replan. Under the `parallel`
    /// feature, multiple stale shards replan on scoped threads.
    ///
    /// # Errors
    ///
    /// The first failing shard's error (by shard index). Shards that
    /// succeeded keep their new plans and their deltas are carried into
    /// the next successful pass, so every change is reported exactly once.
    pub fn plan_at(&mut self, now_slot: u64) -> Result<&PlanDelta, PlannerError> {
        self.maybe_rebalance();
        let stale: Vec<usize> =
            (0..self.shards.len()).filter(|&i| !self.shards[i].is_fresh(now_slot)).collect();
        if stale.is_empty() {
            return Ok(&self.delta);
        }
        let results =
            fan_out_indexed(&mut self.shards, &stale, |_, s| s.plan_at(now_slot).map(|_| ()));
        self.collect_pass(results)
    }

    /// Replans from a caller-supplied roster, partitioned across shards
    /// by label hash (stable within a shard: the roster's order is the
    /// planning order, as in [`PlannerCore::plan_roster`]). With one
    /// shard the roster is forwarded verbatim.
    ///
    /// # Errors
    ///
    /// As [`ShardedPlanner::plan_at`].
    pub fn plan_roster(
        &mut self,
        now_slot: u64,
        roster: &[RosterJob<'_>],
    ) -> Result<&PlanDelta, PlannerError> {
        self.maybe_rebalance();
        let n = self.shards.len();
        let stale: Vec<usize> = (0..n).filter(|&i| !self.shards[i].is_fresh(now_slot)).collect();
        if stale.is_empty() {
            return Ok(&self.delta);
        }
        let mut parts: Vec<Vec<RosterJob<'_>>> = vec![Vec::new(); n];
        if n == 1 {
            // bound: n == 1 guarantees slot 0 exists.
            parts[0] = roster.to_vec();
        } else {
            for r in roster {
                parts[shard_of_label(r.label, n)].push(*r);
            }
        }
        let results = fan_out_indexed(&mut self.shards, &stale, |i, s| {
            s.plan_roster(now_slot, &parts[i]).map(|_| ())
        });
        self.collect_pass(results)
    }

    /// Installs an empty plan on every shard (the adapters' liveness
    /// fallback when a plan pass fails on pathological inputs).
    pub fn install_empty_plan(&mut self, now_slot: u64) {
        for s in &mut self.shards {
            s.install_empty_plan(now_slot);
        }
        self.pending = PlanDelta::default();
        let mut removed: Vec<JobId> = Vec::new();
        for s in &self.shards {
            removed.extend(s.delta().removed.iter().copied());
        }
        self.delta = PlanDelta { changed: Vec::new(), removed };
    }

    /// Merges the deltas of the shards that replanned in this pass into
    /// the pending set; on a fully successful pass, publishes it.
    fn collect_pass(
        &mut self,
        results: Vec<(usize, Result<(), PlannerError>)>,
    ) -> Result<&PlanDelta, PlannerError> {
        let mut first_err: Option<(usize, PlannerError)> = None;
        for (i, r) in results {
            match r {
                Ok(()) => {
                    let d = self.shards[i].delta();
                    self.pending.changed.extend(d.changed.iter().copied());
                    self.pending.removed.extend(d.removed.iter().copied());
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => {
                self.delta = std::mem::take(&mut self.pending);
                self.check_shard_invariants();
                Ok(&self.delta)
            }
        }
    }

    // ------------------------------------------------------------------
    // Rebalancing
    // ------------------------------------------------------------------

    fn maybe_rebalance(&mut self) {
        self.passes = self.passes.wrapping_add(1);
        if self.rebalance_interval == 0
            || self.shards.len() <= 1
            || !self.passes.is_multiple_of(self.rebalance_interval)
        {
            return;
        }
        self.rebalance();
    }

    /// Re-splits the capacity across shards from their Theorem-2 prefix
    /// headroom: every shard keeps at least its committed prefix demand
    /// ([`PlannerCore::committed_capacity`], floored at one container),
    /// and the surplus follows each shard's planned η mass — capacity
    /// migrates toward the loaded partitions without ever starving one
    /// below what it already promised. When the committed demands alone
    /// exceed `C` (the cluster is overcommitted), the current slices are
    /// kept: no re-split can help, and stability preserves cache warmth.
    ///
    /// Called automatically every [`ShardedPlanner::with_rebalance_interval`]
    /// plan passes; public for callers that want an explicit cadence.
    pub fn rebalance(&mut self) {
        if let Some(slices) = self.demand_split(self.total) {
            self.apply_slices(&slices);
        }
    }

    /// Computes committed-prefix-floored, η-weighted capacity slices for
    /// `capacity` total containers — the split [`ShardedPlanner::rebalance`]
    /// installs periodically and [`ShardedPlanner::set_capacity`] installs
    /// immediately on a capacity change. Returns `None` when a demand
    /// split is impossible or meaningless: a single shard, fewer
    /// containers than shards, or committed floors already exceeding
    /// `capacity` (no re-split can help).
    fn demand_split(&self, capacity: u32) -> Option<Vec<u32>> {
        let n = self.shards.len();
        if n <= 1 || (capacity as u64) < n as u64 {
            return None;
        }
        let total = u64::from(capacity);
        // Committed floor per shard: what its current plan already
        // promised (clamped into [1, total] — a shard always keeps one
        // container, and an overloaded shard cannot demand more than C).
        let floor: Vec<u64> = self
            .shards
            .iter()
            .map(|s| u64::from(s.committed_capacity()).clamp(1, total))
            .collect();
        let floor_sum: u64 = floor.iter().sum();
        if floor_sum > total {
            return None;
        }
        // Surplus follows planned demand: weight = total planned η + 1
        // (the +1 keeps idle shards eligible and the split total).
        let weights: Vec<u128> = self
            .shards
            .iter()
            .map(|s| s.plan().entries.iter().map(|e| u128::from(e.eta)).sum::<u128>() + 1)
            .collect();
        let weight_sum: u128 = weights.iter().sum();
        let surplus = total - floor_sum;
        let mut slices: Vec<u64> = floor.clone();
        let mut handed = 0u64;
        for (slice, w) in slices.iter_mut().zip(&weights) {
            let share = (u128::from(surplus) * w / weight_sum) as u64;
            *slice += share;
            handed += share;
        }
        // Flooring remainder: one container at a time, heaviest shard
        // first (ties to the lower index) — deterministic.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
        let mut rest = surplus - handed;
        for &i in order.iter().cycle().take(n * 2) {
            if rest == 0 {
                break;
            }
            slices[i] += 1;
            rest -= 1;
        }
        let slices: Vec<u32> = slices.into_iter().map(|s| s as u32).collect();
        #[cfg(feature = "strict-invariants")]
        {
            debug_assert_eq!(
                slices.iter().map(|&s| u64::from(s)).sum::<u64>(),
                total,
                "demand split must conserve total capacity"
            );
            for (i, (&s, &f)) in slices.iter().zip(&floor).enumerate() {
                debug_assert!(s >= 1, "shard {i} starved to an empty slice");
                debug_assert!(
                    u64::from(s) >= f,
                    "shard {i} cut below its committed prefix demand ({s} < {f})"
                );
            }
        }
        Some(slices)
    }

    /// Installs new capacity slices; only shards whose slice actually
    /// changed are dirtied (their caches survive — a capacity change
    /// invalidates the peel trace, not the estimate+WCDE memo).
    fn apply_slices(&mut self, slices: &[u32]) {
        for (s, &slice) in self.shards.iter_mut().zip(slices) {
            s.set_capacity(slice);
        }
        self.check_shard_invariants();
    }

    /// Contract layer: the partition invariants.
    #[cfg(feature = "strict-invariants")]
    fn check_shard_invariants(&self) {
        let sum: u64 = self.shards.iter().map(|s| u64::from(s.capacity())).sum();
        debug_assert_eq!(sum, u64::from(self.total), "slices must sum to the total capacity");
        debug_assert!(
            self.shards.iter().all(|s| s.capacity() >= 1),
            "every shard must keep at least one container"
        );
        let residents: usize = self.shards.iter().map(PlannerCore::job_count).sum();
        debug_assert_eq!(
            residents,
            self.assignment.len(),
            "every resident job must be owned by exactly one shard"
        );
        for (id, &shard) in &self.assignment {
            debug_assert!(
                self.shards[shard].job(JobId(*id)).is_some(),
                "job {id} is assigned to shard {shard} but not resident there"
            );
        }
    }

    #[cfg(not(feature = "strict-invariants"))]
    fn check_shard_invariants(&self) {}

    // ------------------------------------------------------------------
    // Event surface
    // ------------------------------------------------------------------

    /// Applies one typed event, routed to the owning shard (`Tick` plans
    /// every stale shard). Equivalent to the corresponding named method.
    ///
    /// # Errors
    ///
    /// Whatever the corresponding method returns.
    pub fn apply(&mut self, event: PlannerEvent) -> Result<EventOutcome, PlannerError> {
        match event {
            PlannerEvent::JobArrival { id: None, spec } => {
                Ok(EventOutcome::Arrived { job: self.admit(spec) })
            }
            PlannerEvent::JobArrival { id: Some(id), spec } => {
                self.admit_as(id, spec);
                Ok(EventOutcome::Arrived { job: id })
            }
            PlannerEvent::TaskSample { job, runtime } => {
                self.ingest_sample(job, runtime).map(EventOutcome::Sampled)
            }
            PlannerEvent::TaskFailed { job } => {
                Ok(EventOutcome::FailureRecorded { known: self.record_failure(job) })
            }
            PlannerEvent::Cancel { job } => {
                Ok(EventOutcome::Cancelled { known: self.cancel(job) })
            }
            PlannerEvent::SetParked { job, parked } => {
                self.set_parked(job, parked)?;
                Ok(EventOutcome::Parked)
            }
            PlannerEvent::Tick { now_slot } => {
                let delta = self.plan_at(now_slot)?.clone();
                Ok(EventOutcome::Planned(delta))
            }
            PlannerEvent::CapacityChange { capacity } => {
                self.set_capacity(capacity)?;
                Ok(EventOutcome::CapacityChanged { capacity })
            }
        }
    }

    /// Applies a batch of events: mutations are routed and grouped per
    /// shard (each shard sees its events in stream order), and each
    /// `Tick` acts as a barrier that plans every stale shard — under the
    /// `parallel` feature both the grouped mutations and the replans fan
    /// out across scoped threads. Outcomes come back in stream order.
    ///
    /// # Errors
    ///
    /// The first failing event's error (by stream position); events
    /// before it have been applied.
    pub fn apply_batch(
        &mut self,
        events: Vec<PlannerEvent>,
    ) -> Result<Vec<EventOutcome>, PlannerError> {
        let mut outcomes: Vec<Option<EventOutcome>> = (0..events.len()).map(|_| None).collect();
        let mut groups: Vec<Vec<(usize, PlannerEvent)>> = vec![Vec::new(); self.shards.len()];
        for (pos, event) in events.into_iter().enumerate() {
            match event {
                PlannerEvent::Tick { now_slot } => {
                    self.flush_groups(&mut groups, &mut outcomes)?;
                    let delta = self.plan_at(now_slot)?.clone();
                    outcomes[pos] = Some(EventOutcome::Planned(delta));
                }
                PlannerEvent::CapacityChange { capacity } => {
                    // Cross-shard barrier like Tick: the re-split touches
                    // every slice, so queued shard-local mutations must
                    // land first to keep stream order observable.
                    self.flush_groups(&mut groups, &mut outcomes)?;
                    self.set_capacity(capacity)?;
                    outcomes[pos] = Some(EventOutcome::CapacityChanged { capacity });
                }
                PlannerEvent::JobArrival { id, spec } => {
                    // Admission bookkeeping (id allocation, assignment,
                    // cross-shard moves) is serial; the shard-local insert
                    // rides the group.
                    let id = id.unwrap_or(JobId(self.next_id));
                    self.next_id = self.next_id.max(id.0.saturating_add(1));
                    let shard = shard_of_label(&spec.label, self.shards.len());
                    if let Some(old) = self.assignment.insert(id.0, shard) {
                        if old != shard {
                            groups[old].push((usize::MAX, PlannerEvent::Cancel { job: id }));
                        }
                    }
                    outcomes[pos] = Some(EventOutcome::Arrived { job: id });
                    groups[shard].push((pos, PlannerEvent::JobArrival { id: Some(id), spec }));
                }
                PlannerEvent::Cancel { job } => {
                    let shard = self.assignment.remove(&job.0).unwrap_or(0);
                    groups[shard].push((pos, PlannerEvent::Cancel { job }));
                }
                event => {
                    let job = match &event {
                        PlannerEvent::TaskSample { job, .. }
                        | PlannerEvent::TaskFailed { job }
                        | PlannerEvent::SetParked { job, .. } => *job,
                        // Arrival/cancel/tick are matched above.
                        _ => JobId(0),
                    };
                    let shard = self.assignment.get(&job.0).copied().unwrap_or(0);
                    groups[shard].push((pos, event));
                }
            }
        }
        self.flush_groups(&mut groups, &mut outcomes)?;
        let total = outcomes.len();
        let out: Vec<EventOutcome> = outcomes.into_iter().flatten().collect();
        debug_assert_eq!(out.len(), total, "every applied event produces an outcome");
        Ok(out)
    }

    /// Runs each shard's queued events (parallel when the feature is on),
    /// recording outcomes by stream position.
    fn flush_groups(
        &mut self,
        groups: &mut [Vec<(usize, PlannerEvent)>],
        outcomes: &mut [Option<EventOutcome>],
    ) -> Result<(), PlannerError> {
        let busy: Vec<usize> =
            (0..groups.len()).filter(|&i| !groups[i].is_empty()).collect();
        if busy.is_empty() {
            return Ok(());
        }
        let taken: Vec<Vec<(usize, PlannerEvent)>> =
            groups.iter_mut().map(std::mem::take).collect();
        let results = fan_out_indexed(&mut self.shards, &busy, |i, shard| {
            let mut out: Vec<(usize, Result<EventOutcome, PlannerError>)> = Vec::new();
            for (pos, event) in &taken[i] {
                out.push((*pos, shard.apply(event.clone())));
            }
            Ok(out)
        });
        // Surface the earliest failure by stream position; apply every
        // successful outcome either way (they did happen).
        let mut first_err: Option<(usize, PlannerError)> = None;
        for (_, r) in results {
            // The group runner itself never fails; shard-level errors ride
            // inside the per-event outcomes.
            let list = r.unwrap_or_default();
            for (pos, outcome) in list {
                match outcome {
                    Ok(o) => {
                        if pos != usize::MAX {
                            outcomes[pos] = Some(o);
                        }
                    }
                    Err(e) => {
                        if first_err.as_ref().is_none_or(|(p, _)| pos < *p) {
                            first_err = Some((pos, e));
                        }
                    }
                }
            }
        }
        match first_err {
            Some((_, e)) => Err(e),
            None => {
                self.retire_assignments();
                Ok(())
            }
        }
    }

    /// Drops assignments of jobs a shard no longer holds (retirement
    /// inside a batched sample completes a job without going through
    /// [`ShardedPlanner::cancel`]).
    fn retire_assignments(&mut self) {
        let shards = &self.shards;
        self.assignment.retain(|id, &mut shard| shards[shard].job(JobId(*id)).is_some());
    }
}

/// Runs `f` on the selected shards and returns `(index, result)` pairs in
/// selection order. Sequential without the `parallel` feature; scoped
/// threads with it (one per selected shard) when more than one shard is
/// selected.
fn fan_out_indexed<T, F>(
    shards: &mut [PlannerCore],
    selected: &[usize],
    f: F,
) -> Vec<(usize, Result<T, PlannerError>)>
where
    T: Send,
    F: Fn(usize, &mut PlannerCore) -> Result<T, PlannerError> + Sync,
{
    #[cfg(feature = "parallel")]
    {
        if selected.len() > 1 {
            let mut results: Vec<(usize, Result<T, PlannerError>)> =
                Vec::with_capacity(selected.len());
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(selected.len());
                let f = &f;
                for (i, shard) in shards.iter_mut().enumerate() {
                    if !selected.contains(&i) {
                        continue;
                    }
                    handles.push((i, scope.spawn(move || f(i, shard))));
                }
                for (i, h) in handles {
                    let r = h.join().unwrap_or_else(|_| {
                        Err(PlannerError::Config("planner shard thread panicked".into()))
                    });
                    results.push((i, r));
                }
            });
            results.sort_by_key(|(i, _)| *i);
            return results;
        }
    }
    selected.iter().map(|&i| (i, f(i, &mut shards[i]))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_utility::TimeUtility;

    fn spec(label: &str, tasks: u64, arrived: u64) -> JobSpec {
        JobSpec {
            label: label.into(),
            utility: TimeUtility::sigmoid(500.0, 3.0, 0.02).expect("valid utility"),
            tasks,
            arrived_slot: arrived,
            runtime_hint: Some(50.0),
            parked: false,
        }
    }

    fn sharded(capacity: u32, shards: usize) -> ShardedPlanner {
        ShardedPlanner::new(RushConfig::default(), capacity, shards).expect("planner")
    }

    #[test]
    fn shard_of_label_is_deterministic_and_in_range() {
        for shards in 1..=8usize {
            for label in ["etl", "train-7", "", "a very long label with spaces"] {
                let s = shard_of_label(label, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_label(label, shards), "pure function");
            }
        }
        assert_eq!(shard_of_label("anything", 1), 0);
    }

    #[test]
    fn construction_rejects_zero_shards_and_thin_capacity() {
        assert!(matches!(
            ShardedPlanner::new(RushConfig::default(), 8, 0),
            Err(PlannerError::Config(_))
        ));
        assert!(matches!(
            ShardedPlanner::new(RushConfig::default(), 3, 4),
            Err(PlannerError::Config(_))
        ));
    }

    #[test]
    fn slices_split_evenly_and_sum_to_capacity() {
        let p = sharded(10, 4);
        assert_eq!(p.slices(), vec![3, 3, 2, 2]);
        assert_eq!(p.slices().iter().sum::<u32>(), p.capacity());
    }

    #[test]
    fn admit_routes_by_label_hash_and_ids_stay_global() {
        let mut p = sharded(8, 4);
        let mut ids = Vec::new();
        for i in 0..12u64 {
            let label = format!("job-{i}");
            let id = p.admit(spec(&label, 4, 0));
            assert_eq!(p.shard_of(id), Some(shard_of_label(&label, 4)));
            ids.push(id);
        }
        // Ids are globally unique and ascending regardless of shard.
        assert_eq!(ids, (0..12).map(JobId).collect::<Vec<_>>());
        assert_eq!(p.job_count(), 12);
        assert_eq!(p.jobs().count(), 12);
    }

    #[test]
    fn set_capacity_validates_and_resplits() {
        let mut p = sharded(8, 2);
        assert!(p.set_capacity(8).is_ok(), "no-op on unchanged total");
        assert!(matches!(p.set_capacity(1), Err(PlannerError::Config(_))));
        p.set_capacity(5).expect("re-split");
        assert_eq!(p.slices(), vec![3, 2]);
        assert_eq!(p.capacity(), 5);
    }

    #[test]
    fn plan_replans_only_dirty_shards() {
        let mut p = sharded(8, 2).with_rebalance_interval(0);
        // Two labels that land on different shards.
        let labels: Vec<String> = {
            let mut found = Vec::new();
            let mut i = 0u64;
            while found.len() < 2 {
                let l = format!("l{i}");
                let s = shard_of_label(&l, 2);
                if !found.iter().any(|f: &String| shard_of_label(f, 2) == s) {
                    found.push(l);
                }
                i += 1;
            }
            found
        };
        let a = p.admit(spec(&labels[0], 4, 0));
        p.admit(spec(&labels[1], 4, 0));
        p.plan_at(0).expect("initial plan");
        let misses = p.cache_misses();
        // An event on shard A leaves shard B's plan fresh: the next pass
        // recomputes only one shard.
        let other = p.shard_of(a).map(|s| 1 - s).expect("resident");
        p.ingest_sample(a, 50).expect("sample");
        assert!(p.shards[other].is_fresh(0), "untouched shard stays fresh");
        p.plan_at(0).expect("replan");
        assert!(p.cache_misses() > misses, "dirty shard recomputed");
        assert!(p.is_fresh(0));
    }

    #[test]
    fn rebalance_conserves_capacity_and_respects_floors() {
        let mut p = sharded(16, 4).with_rebalance_interval(0);
        for i in 0..20u64 {
            p.admit(spec(&format!("t{i}"), 8, 0));
        }
        p.plan_at(0).expect("plan");
        p.rebalance();
        let slices = p.slices();
        assert_eq!(slices.iter().sum::<u32>(), 16, "capacity conserved");
        assert!(slices.iter().all(|&s| s >= 1), "no shard starved");
        for (i, &s) in slices.iter().enumerate() {
            assert!(
                s >= p.shard_core(i).committed_capacity().min(16),
                "slice below committed prefix demand"
            );
        }
        // Determinism: rebalancing again from the same plans is a no-op
        // fixed point or at least reproducible.
        p.plan_at(1).expect("replan under new slices");
        p.rebalance();
        let once = p.slices();
        p.rebalance();
        assert_eq!(p.slices(), once, "rebalance is deterministic");
    }

    #[test]
    fn cancel_and_retirement_drop_assignments() {
        let mut p = sharded(8, 2);
        let a = p.admit(spec("x", 2, 0));
        assert!(p.cancel(a));
        assert_eq!(p.shard_of(a), None);
        assert!(!p.cancel(a), "second cancel is unknown");
        assert_eq!(p.job_count(), 0);
    }

    #[test]
    fn apply_batch_orders_outcomes_by_stream_position() {
        let mut p = sharded(8, 4);
        let events = vec![
            PlannerEvent::JobArrival { id: None, spec: spec("p", 4, 0) },
            PlannerEvent::JobArrival { id: None, spec: spec("q", 4, 0) },
            PlannerEvent::TaskSample { job: JobId(0), runtime: 40 },
            PlannerEvent::Tick { now_slot: 0 },
            PlannerEvent::Cancel { job: JobId(1) },
            PlannerEvent::Tick { now_slot: 0 },
        ];
        let out = p.apply_batch(events).expect("batch");
        assert_eq!(out.len(), 6);
        assert!(matches!(out[0], EventOutcome::Arrived { job: JobId(0) }));
        assert!(matches!(out[1], EventOutcome::Arrived { job: JobId(1) }));
        assert!(matches!(out[2], EventOutcome::Sampled(_)));
        assert!(matches!(out[3], EventOutcome::Planned(_)));
        assert!(matches!(out[4], EventOutcome::Cancelled { known: true }));
        match &out[5] {
            EventOutcome::Planned(delta) => {
                assert!(delta.removed.contains(&JobId(1)), "cancel reported in tick delta");
            }
            other => panic!("expected a plan outcome, got {other:?}"),
        }
        assert!(p.is_fresh(0));
    }
}

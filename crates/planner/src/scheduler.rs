//! [`RushScheduler`] — the thin `rush_sim::Scheduler` adapter over the
//! planner kernel.
//!
//! The adapter owns nothing but a [`PlannerCore`] (in
//! [`ColdStart::PooledByLabel`] mode) and a desired-allocation map it
//! maintains incrementally from the kernel's [plan
//! deltas](crate::PlanDelta). Simulator events become kernel events; on
//! every `assign` the adapter lends the kernel the cluster view as a
//! planning roster (so plan inputs are authoritative and zero-copy) and
//! then applies the paper's dispatch rule (Sec. IV, "Container
//! Assignment"): the free container goes to the job with the **largest gap
//! between planned and current occupancy**, with the work-conserving and
//! stall-guard fallbacks layered below it. The plan is cached for the
//! current slot, so a burst of free containers in one slot costs one
//! pipeline pass.

use crate::core::{ColdStart, JobId, JobSpec, RosterJob};
use crate::sharded::ShardedPlanner;
use crate::PlannerError;
use rush_core::plan::Plan;
use rush_core::RushConfig;
use rush_sim::view::{ClusterView, TaskSample};
use rush_sim::Scheduler;
use std::collections::BTreeMap;

/// The RUSH scheduler: a `rush_sim::Scheduler` adapter over
/// [`PlannerCore`].
///
/// # Example
///
/// ```
/// use rush_core::RushConfig;
/// use rush_planner::RushScheduler;
/// use rush_sim::engine::{SimConfig, Simulation};
/// use rush_sim::job::{JobSpec, Phase, TaskSpec};
/// use rush_utility::TimeUtility;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let job = JobSpec::builder("quick")
///     .tasks((0..4).map(|_| TaskSpec::new(10.0, Phase::Map)))
///     .utility(TimeUtility::sigmoid(100.0, 5.0, 0.1)?)
///     .build()?;
/// let mut rush = RushScheduler::new(RushConfig::default());
/// let result = Simulation::new(SimConfig::homogeneous(1, 4), vec![job])?.run(&mut rush)?;
/// assert_eq!(result.outcomes.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RushScheduler {
    kernel: ShardedPlanner,
    name: &'static str,
    /// Desired next-slot allocations `(desired_now, target)` by raw job
    /// id, maintained incrementally from plan deltas.
    desired: BTreeMap<u64, (u32, f64)>,
    /// The merged cross-shard plan of the last completed pass, rebuilt
    /// after each refresh (with one shard: exactly the kernel's plan).
    plan: Plan,
    /// The typed error from the most recent failed capacity update, if
    /// any (see [`RushScheduler::last_capacity_error`]). Cleared by the
    /// next successful update.
    capacity_error: Option<PlannerError>,
}

impl RushScheduler {
    /// Creates a RUSH scheduler with the given configuration.
    ///
    /// The scheduler SPI has no error channel, so the config is taken as
    /// given (capacity comes from the view at plan time): an invalid
    /// config surfaces as a failed plan pass, which the assign fallbacks
    /// absorb — same as the pre-kernel scheduler.
    pub fn new(config: RushConfig) -> Self {
        Self::with_shards(config, 1)
    }

    /// Creates a RUSH scheduler whose planner is partitioned across
    /// `shards` kernels (see [`ShardedPlanner`]). With `shards == 1`
    /// (the [`RushScheduler::new`] default) behavior is bit-identical to
    /// the single-kernel adapter; more shards trade a deterministic
    /// label-hash partition of the capacity for near-linear event-cost
    /// scaling on large registries.
    pub fn with_shards(config: RushConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        RushScheduler {
            kernel: ShardedPlanner::new_unchecked(config, shards as u32, shards)
                .with_cold_start(ColdStart::PooledByLabel)
                .with_retirement(false),
            name: "RUSH",
            desired: BTreeMap::new(),
            plan: Plan::default(),
            capacity_error: None,
        }
    }

    /// Creates a scheduler configured like the authors' earlier **CoRA**
    /// system (INFOCOM'15) — the paper's non-robust predecessor: mean-based
    /// demand estimation and no KL ambiguity margin (`δ = 0`). Useful as the
    /// "RUSH minus robustness" comparison point.
    pub fn cora() -> Self {
        let config = RushConfig::default()
            .with_delta(0.0)
            .with_estimator(rush_core::config::EstimatorKind::Mean);
        let mut s = Self::new(config);
        s.name = "CoRA";
        s
    }

    /// The configuration in use.
    pub fn config(&self) -> &RushConfig {
        self.kernel.config()
    }

    /// The planner kernel behind the adapter (plan, deltas, cache
    /// counters — the data behind the paper's enhanced HTTP interface).
    pub fn kernel(&self) -> &ShardedPlanner {
        &self.kernel
    }

    /// The most recently computed plan (projected completion times, robust
    /// demands, impossible-job flags) — the data behind the paper's
    /// enhanced HTTP interface (Fig. 2). Entries are merged shard by
    /// shard; with one shard this is exactly the kernel's plan.
    pub fn last_plan(&self) -> &Plan {
        &self.plan
    }

    /// Forgets a completed or cancelled job: drops its registry record and
    /// invalidates the per-slot plan so the next scheduling event re-plans
    /// without it. Returns whether the job was known.
    ///
    /// The simulator calls [`Scheduler::on_task_complete`] with the job
    /// already gone from the view when it finishes naturally, which prunes
    /// the record — but a job *cancelled* mid-flight (or completed while
    /// no further task-completion event fires) would otherwise leak its
    /// entry forever and keep polluting [`Self::last_plan`] until the next
    /// event. Long-running daemons must call this on every cancel.
    ///
    /// Pooled runtime samples the job contributed are deliberately kept:
    /// they are evidence about the *template*, not the job, and future
    /// same-label jobs still want them.
    pub fn remove_job(&mut self, job: rush_sim::JobId) -> bool {
        // The pre-kernel scheduler invalidated unconditionally; keep that.
        self.kernel.invalidate();
        self.kernel.cancel(JobId::from(job))
    }

    /// The typed error from the most recent *failed* capacity update
    /// (the view's capacity could not hold one container per shard), or
    /// `None` when the last update succeeded. The scheduler SPI has no
    /// error channel, so the adapter degrades to an empty plan when this
    /// is `Some` — but it no longer swallows the cause: daemons and tests
    /// read it here.
    pub fn last_capacity_error(&self) -> Option<&PlannerError> {
        self.capacity_error.as_ref()
    }

    /// Ensures the kernel's plan is fresh for `view.now` and the desired
    /// map reflects it.
    fn refresh(&mut self, view: &ClusterView<'_>) {
        if let Err(e) = self.kernel.set_capacity(view.capacity) {
            // The view's capacity cannot hold one container per shard;
            // treat it like a failed pass (empty plan, fallbacks engage)
            // but keep the typed cause observable.
            self.capacity_error = Some(e);
            self.desired.clear();
            self.kernel.install_empty_plan(view.now);
            self.plan = Plan::default();
            return;
        }
        self.capacity_error = None;
        if self.kernel.is_fresh(view.now) {
            return;
        }
        let roster: Vec<RosterJob<'_>> = view
            .jobs
            .iter()
            .map(|j| RosterJob {
                id: JobId::from(j.id),
                label: &j.label,
                samples: &j.samples,
                remaining_tasks: j.pending_tasks,
                running: j.running_tasks as u32,
                failed_attempts: j.failed_attempts,
                age: j.age(view.now) as f64,
                utility: j.utility,
            })
            .collect();
        match self.kernel.plan_roster(view.now, &roster) {
            Ok(delta) => {
                for id in &delta.removed {
                    self.desired.remove(&id.0);
                }
                for (id, e) in &delta.changed {
                    self.desired.insert(id.0, (e.desired_now, e.target));
                }
                self.plan = Plan {
                    entries: self.kernel.planned().map(|(_, e)| *e).collect(),
                };
            }
            Err(_) => {
                // On estimation failure (pathological inputs) fall back to
                // an empty plan for this slot; the assign() fallbacks keep
                // the cluster from stalling.
                self.desired.clear();
                self.kernel.install_empty_plan(view.now);
                self.plan = Plan::default();
            }
        }
    }
}

impl Scheduler for RushScheduler {
    fn name(&self) -> &str {
        self.name
    }

    fn on_job_arrival(&mut self, _view: &ClusterView<'_>, job: rush_sim::JobId) {
        // Record the label while the job is certainly visible; the
        // arrival event dirties the kernel either way.
        match _view.job(job) {
            Some(j) => self.kernel.admit_as(
                JobId::from(job),
                JobSpec {
                    label: j.label.clone(),
                    utility: j.utility,
                    tasks: j.pending_tasks as u64,
                    arrived_slot: j.arrival,
                    runtime_hint: None,
                    parked: false,
                },
            ),
            None => self.kernel.invalidate(),
        }
    }

    fn on_task_failed(&mut self, _view: &ClusterView<'_>, sample: TaskSample) {
        // Failed-attempt durations are not runtime samples, but the plan
        // must be recomputed with the updated failure count.
        self.kernel.record_failure(JobId::from(sample.job));
    }

    fn on_capacity_change(&mut self, view: &ClusterView<'_>) {
        // Replan immediately against the new effective capacity: the
        // revocation's killed attempts have already been recorded (as
        // failures), and refresh pushes the new total into the kernel —
        // the peel replay absorbs it as a divergence layer, and the shard
        // re-split keeps every committed prefix funded.
        self.refresh(view);
    }

    fn on_task_complete(&mut self, _view: &ClusterView<'_>, sample: TaskSample) {
        // Pooled ingestion never errors; the binding documents intent.
        let _known = self.kernel.ingest_sample(JobId::from(sample.job), sample.runtime);
        if _view.job(sample.job).is_none() {
            // Job finished: forget its registry record.
            self.kernel.cancel(JobId::from(sample.job));
        }
    }

    fn assign(&mut self, view: &ClusterView<'_>) -> Option<rush_sim::JobId> {
        self.refresh(view);
        let desired = &self.desired;

        // The paper's rule: the container goes to the job with the largest
        // positive gap between planned and current occupancy. When no plan
        // entry wants more containers, the container stays idle until the
        // next scheduling event — this is how RUSH holds capacity back
        // from completion-time-insensitive work (the mapping only plans
        // their tasks into genuinely free queue time). A stall guard keeps
        // the clock moving when nothing at all is running.
        // Containers that would stay free after this assignment; an
        // insensitive task may only claim one while the configured reserve
        // remains for time-aware reaction headroom.
        let free_after = view.free_containers.saturating_sub(1) as f64;
        let reserve_ok =
            free_after >= self.kernel.config().insensitive_reserve * view.capacity as f64;
        let mut best: Option<(rush_sim::JobId, i64, f64)> = None;
        for j in view.jobs.iter().filter(|j| j.runnable_tasks > 0) {
            if !j.sensitivity.is_time_aware() && !reserve_ok {
                continue;
            }
            let (want, target) =
                desired.get(&u64::from(j.id.0)).map_or((0, f64::MAX), |&(w, t)| (w, t));
            let gap = want as i64 - j.running_tasks as i64;
            if gap <= 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, bgap, btarget)) => gap > bgap || (gap == bgap && target < btarget),
            };
            if better {
                best = Some((j.id, gap, target));
            }
        }
        if let Some((id, _, _)) = best {
            return Some(id);
        }

        // No plan entry wants more containers. Estimation error routinely
        // makes planned parallelism insufficient, so stay work-conserving
        // for *time-aware* jobs (running them earlier never lowers their
        // utility and protects against under-estimated demand). The free
        // container is withheld from completion-time-insensitive jobs —
        // they only run through plan slack above — which is exactly how
        // RUSH "delays the execution of the completion-time insensitive
        // jobs" (paper Sec. V-B).
        let earliest_target = |pred: &dyn Fn(&rush_sim::view::JobView) -> bool| {
            view.jobs
                .iter()
                .filter(|j| j.runnable_tasks > 0 && pred(j))
                .min_by(|a, b| {
                    let ta = desired.get(&u64::from(a.id.0)).map_or(f64::MAX, |x| x.1);
                    let tb = desired.get(&u64::from(b.id.0)).map_or(f64::MAX, |x| x.1);
                    ta.total_cmp(&tb).then(a.id.cmp(&b.id))
                })
                .map(|j| j.id)
        };
        if let Some(id) = earliest_target(&|j| j.sensitivity.is_time_aware()) {
            return Some(id);
        }
        // Stall guard: with nothing running at all, idling would freeze the
        // clock — run whatever is runnable.
        if view.jobs.iter().all(|j| j.running_tasks == 0) {
            return earliest_target(&|_| true);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_sim::engine::{SimConfig, Simulation};
    use rush_sim::job::{JobSpec, Phase, TaskSpec};
    use rush_sim::perturb::Interference;
    use rush_sim::Slot;
    use rush_utility::{Sensitivity, TimeUtility};

    fn job(
        label: &str,
        arrival: Slot,
        tasks: usize,
        runtime: f64,
        utility: TimeUtility,
        budget: Slot,
    ) -> JobSpec {
        JobSpec::builder(label)
            .arrival(arrival)
            .tasks((0..tasks).map(|_| TaskSpec::new(runtime, Phase::Map)))
            .utility(utility)
            .budget(budget)
            .build()
            .unwrap()
    }

    #[test]
    fn remove_job_forgets_record_and_invalidates_cache() {
        use rush_sim::view::{ClusterView, JobView};
        use rush_sim::JobId;
        let jv = JobView {
            id: JobId(0),
            label: "tpl".into(),
            arrival: 0,
            utility: TimeUtility::sigmoid(100.0, 5.0, 0.1).unwrap(),
            priority: 1,
            sensitivity: Sensitivity::Sensitive,
            budget: Some(100),
            total_tasks: 4,
            pending_tasks: 4,
            runnable_tasks: 4,
            running_tasks: 0,
            completed_tasks: 0,
            failed_attempts: 0,
            oldest_running_start: None,
            samples: Vec::new(),
        };
        let jobs = vec![jv];
        let view = ClusterView { now: 0, capacity: 4, free_containers: 4, jobs: &jobs };
        let mut rush = RushScheduler::new(RushConfig::default());
        rush.on_job_arrival(&view, JobId(0));
        // Populate the per-slot plan cache, then cancel the job.
        assert_eq!(rush.assign(&view), Some(JobId(0)));
        assert!(rush.remove_job(JobId(0)), "job was tracked");
        assert!(!rush.remove_job(JobId(0)), "second removal is a no-op");
        // The cancelled job's samples no longer feed its label pool: a
        // late task-completion event for it must not resurrect the label.
        let empty: Vec<JobView> = Vec::new();
        let gone = ClusterView { now: 5, capacity: 4, free_containers: 4, jobs: &empty };
        rush.on_task_complete(
            &gone,
            rush_sim::view::TaskSample {
                job: JobId(0),
                task: rush_sim::TaskId(0),
                runtime: 37,
                finished_at: 5,
            },
        );
        // Re-planning over an empty view yields an empty plan (the
        // invalidation from remove_job forces the refresh).
        assert_eq!(rush.assign(&gone), None);
        assert!(rush.last_plan().entries.is_empty());
    }

    #[test]
    fn completes_a_simple_workload() {
        let jobs = vec![job(
            "wc",
            0,
            8,
            10.0,
            TimeUtility::sigmoid(100.0, 5.0, 0.1).unwrap(),
            100,
        )];
        let mut rush = RushScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 4), jobs).unwrap().run(&mut rush).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.outcomes[0].met_budget(), "runtime {}", r.outcomes[0].runtime);
    }

    #[test]
    fn prioritizes_urgent_over_insensitive() {
        // One urgent job and one insensitive job contending for 4 containers.
        let jobs = vec![
            job("lazy", 0, 12, 20.0, TimeUtility::constant(5.0).unwrap(), 100_000),
            job("urgent", 0, 12, 20.0, TimeUtility::sigmoid(80.0, 5.0, 0.2).unwrap(), 80),
        ];
        let mut rush = RushScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 4), jobs)
            .unwrap()
            .run(&mut rush)
            .unwrap();
        let urgent = r.outcomes.iter().find(|o| o.label == "urgent").unwrap();
        // 12 tasks × 20 slots = 240 container·slots on 4 containers = 60
        // slots if given everything. The budget is 80: achievable only by
        // displacing the insensitive job.
        assert!(
            urgent.runtime <= 80 + 20,
            "urgent job should land near its budget, took {}",
            urgent.runtime
        );
    }

    #[test]
    fn cora_mode_is_non_robust_mean_based() {
        let cora = RushScheduler::cora();
        assert_eq!(Scheduler::name(&cora), "CoRA");
        assert_eq!(cora.config().delta, 0.0);
        assert!(matches!(cora.config().estimator, rush_core::config::EstimatorKind::Mean));
        // CoRA still schedules a workload to completion.
        let jobs = vec![job("wc", 0, 6, 10.0, TimeUtility::sigmoid(120.0, 5.0, 0.1).unwrap(), 120)];
        let r = Simulation::new(SimConfig::homogeneous(1, 3), jobs)
            .unwrap()
            .run(&mut RushScheduler::cora())
            .unwrap();
        assert_eq!(r.outcomes.len(), 1);
    }

    #[test]
    fn name_and_introspection() {
        let rush = RushScheduler::new(RushConfig::default());
        assert_eq!(Scheduler::name(&rush), "RUSH");
        assert!(rush.last_plan().entries.is_empty());
        assert_eq!(rush.config().theta, 0.9);
        assert_eq!(rush.kernel().cache_misses(), 0);
    }

    #[test]
    fn survives_interference() {
        let jobs = vec![job(
            "noisy",
            0,
            16,
            15.0,
            TimeUtility::sigmoid(400.0, 5.0, 0.05).unwrap(),
            400,
        )];
        let cfg = SimConfig::homogeneous(2, 4)
            .with_interference(Interference::LogNormal { cv: 0.5 })
            .with_seed(13);
        let mut rush = RushScheduler::new(RushConfig::default());
        let r = Simulation::new(cfg, jobs).unwrap().run(&mut rush).unwrap();
        assert_eq!(r.outcomes.len(), 1);
    }

    #[test]
    fn cross_label_pool_bootstraps_second_job() {
        // Two same-label jobs back to back: by the time the second arrives,
        // RUSH has pooled samples; the run must simply complete and both
        // jobs use sane plans (no stall, no misassignments storm).
        let u = TimeUtility::sigmoid(300.0, 5.0, 0.05).unwrap();
        let jobs = vec![
            job("tpl", 0, 8, 12.0, u, 300),
            job("tpl", 50, 8, 12.0, u, 300),
        ];
        let mut rush = RushScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 4), jobs)
            .unwrap()
            .run(&mut rush)
            .unwrap();
        assert_eq!(r.outcomes.len(), 2);
        assert!(r.misassignments == 0);
    }

    #[test]
    fn insensitive_reserve_gates_flat_jobs() {
        // One insensitive job alone on a busy-enough cluster: with
        // reserve 1.0 the gap rule never admits it, but the stall guard
        // still runs it when nothing else exists — the job completes
        // either way, only slower.
        let jobs = vec![job("flat", 0, 8, 10.0, TimeUtility::constant(2.0).unwrap(), 100_000)];
        let strict = RushConfig { insensitive_reserve: 1.0, ..Default::default() };
        let open = RushConfig { insensitive_reserve: 0.0, ..Default::default() };
        let r_strict = Simulation::new(SimConfig::homogeneous(1, 4), jobs.clone())
            .unwrap()
            .run(&mut RushScheduler::new(strict))
            .unwrap();
        let r_open = Simulation::new(SimConfig::homogeneous(1, 4), jobs)
            .unwrap()
            .run(&mut RushScheduler::new(open))
            .unwrap();
        assert_eq!(r_strict.outcomes.len(), 1);
        assert_eq!(r_open.outcomes.len(), 1);
        assert!(
            r_open.makespan <= r_strict.makespan,
            "open reserve must not be slower: {} vs {}",
            r_open.makespan,
            r_strict.makespan
        );
    }

    #[test]
    fn plan_cache_reused_within_slot() {
        // Several free containers in one slot must not trigger several
        // pipeline passes: with 4 containers and 4 runnable tasks at t=0,
        // scheduler_time stays bounded and the run completes with exactly
        // 4 assignments.
        let jobs = vec![job(
            "burst",
            0,
            4,
            10.0,
            TimeUtility::sigmoid(50.0, 5.0, 0.2).unwrap(),
            50,
        )];
        let mut rush = RushScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 4), jobs)
            .unwrap()
            .run(&mut rush)
            .unwrap();
        assert_eq!(r.assignments, 4);
        // One plan per event, not per container: the last plan is retained.
        assert!(!rush.last_plan().entries.is_empty() || r.outcomes.len() == 1);
    }

    #[test]
    fn failed_attempts_raise_eta_in_next_plan() {
        use rush_sim::perturb::FailureModel;
        let jobs = vec![job(
            "flaky",
            0,
            16,
            10.0,
            TimeUtility::sigmoid(400.0, 5.0, 0.05).unwrap(),
            400,
        )];
        let cfg = SimConfig::homogeneous(1, 4)
            .with_failures(FailureModel::Bernoulli { p: 0.3 })
            .with_seed(11);
        let mut rush = RushScheduler::new(RushConfig::default());
        let r = Simulation::new(cfg, jobs).unwrap().run(&mut rush).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.failed_attempts > 0);
    }

    #[test]
    fn survives_capacity_churn() {
        use rush_sim::cluster::{CapacityChange, CapacityEvent};
        // Spot revocation takes half the cluster mid-run, a restock
        // returns it: RUSH must re-plan (killed attempts re-queued as
        // failures) and still finish every job.
        let jobs = vec![
            job("a", 0, 10, 12.0, TimeUtility::sigmoid(300.0, 5.0, 0.05).unwrap(), 300),
            job("b", 5, 10, 12.0, TimeUtility::sigmoid(400.0, 3.0, 0.04).unwrap(), 400),
        ];
        let cfg = SimConfig::homogeneous(1, 6).with_capacity_events(vec![
            CapacityEvent { at: 15, change: CapacityChange::Revoke { n: 3 } },
            CapacityEvent { at: 60, change: CapacityChange::Restock { n: 3 } },
        ]);
        let mut rush = RushScheduler::new(RushConfig::default());
        let r = Simulation::new(cfg, jobs).unwrap().run(&mut rush).unwrap();
        assert_eq!(r.outcomes.len(), 2);
        assert_eq!(r.revoked_containers, 3);
        assert_eq!(r.restocked_containers, 3);
        assert!(rush.last_capacity_error().is_none());
    }

    #[test]
    fn capacity_error_is_surfaced_not_swallowed() {
        use rush_sim::view::ClusterView;
        // Two shards cannot split one container: refresh degrades to an
        // empty plan AND records the typed cause.
        let mut rush = RushScheduler::with_shards(RushConfig::default(), 2);
        let view = ClusterView { now: 0, capacity: 1, free_containers: 1, jobs: &[] };
        assert_eq!(rush.assign(&view), None);
        assert!(
            matches!(rush.last_capacity_error(), Some(crate::PlannerError::Config(_))),
            "expected a typed capacity error, got {:?}",
            rush.last_capacity_error()
        );
        // A workable capacity clears it.
        let view = ClusterView { now: 1, capacity: 4, free_containers: 4, jobs: &[] };
        assert_eq!(rush.assign(&view), None);
        assert!(rush.last_capacity_error().is_none());
    }

    #[test]
    fn mixed_sensitivities_complete() {
        let mk = |s: Sensitivity, arrival: Slot, budget: f64| {
            JobSpec::builder(format!("{s:?}"))
                .arrival(arrival)
                .tasks((0..6).map(|_| TaskSpec::new(10.0, Phase::Map)))
                .utility(s.utility_for(budget, 3.0).unwrap())
                .sensitivity(s)
                .budget(budget as Slot)
                .build()
                .unwrap()
        };
        let jobs = vec![
            mk(Sensitivity::Critical, 0, 120.0),
            mk(Sensitivity::Sensitive, 10, 200.0),
            mk(Sensitivity::Insensitive, 20, 100_000.0),
        ];
        let mut rush = RushScheduler::new(RushConfig::default());
        let r = Simulation::new(SimConfig::homogeneous(1, 3), jobs)
            .unwrap()
            .run(&mut rush)
            .unwrap();
        assert_eq!(r.outcomes.len(), 3);
        let critical = r.outcomes.iter().find(|o| o.label == "Critical").unwrap();
        assert!(critical.utility > 1.0, "critical utility {}", critical.utility);
    }
}

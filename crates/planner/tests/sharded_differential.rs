//! Differential proof of the sharding layer: a [`ShardedPlanner`] with
//! **one** shard must behave bit-identically to a bare [`PlannerCore`]
//! over randomized event streams — arrivals, samples, failures, cancels,
//! park flips, capacity changes and plan ticks, in both cold-start modes
//! and with retirement on and off.
//!
//! Every plan tick compares the full observable surface of both kernels:
//! the published delta, the `(job, entry)` plan table, the registry
//! contents, freshness, and the cache hit/miss counters (so the sharded
//! wrapper is proven not to sneak in extra recomputes). With more than
//! one shard determinism still holds, which the last test checks by
//! replaying the same stream twice.

use proptest::prelude::*;
use rush_core::RushConfig;
use rush_planner::{ColdStart, EventOutcome, JobId, PlannerCore, PlannerEvent, ShardedPlanner};
use rush_utility::TimeUtility;

/// One scripted kernel operation; job references index the admitted-id
/// list modulo its length so streams stay valid however admission went.
#[derive(Debug, Clone)]
enum Op {
    Arrive { label: u8, tasks: u64, parked: bool },
    Sample { job: usize, runtime: u64 },
    Fail { job: usize },
    Cancel { job: usize },
    Park { job: usize, parked: bool },
    Capacity { containers: u32 },
    Tick { advance: u64 },
}

fn arrive() -> impl Strategy<Value = Op> {
    (0u8..6, 1u64..12, 0u8..2)
        .prop_map(|(label, tasks, parked)| Op::Arrive { label, tasks, parked: parked == 1 })
}

fn sample() -> impl Strategy<Value = Op> {
    (0usize..16, 5u64..120).prop_map(|(job, runtime)| Op::Sample { job, runtime })
}

fn tick() -> impl Strategy<Value = Op> {
    (0u64..3).prop_map(|advance| Op::Tick { advance })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest shim's `prop_oneof!` is uniform; arms are
    // repeated to weight arrivals/samples/ticks over the rarer ops.
    prop_oneof![
        arrive(),
        arrive(),
        sample(),
        sample(),
        sample(),
        (0usize..16).prop_map(|job| Op::Fail { job }),
        (0usize..16).prop_map(|job| Op::Cancel { job }),
        (0usize..16, 0u8..2).prop_map(|(job, parked)| Op::Park { job, parked: parked == 1 }),
        (1u32..24).prop_map(|containers| Op::Capacity { containers }),
        tick(),
        tick(),
    ]
}

/// A stream dominated by capacity events: the spot-revocation regime,
/// where the cluster resizes more often than jobs arrive. Every other
/// observable must still track the bare kernel bit-for-bit.
fn churn_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        arrive(),
        sample(),
        (1u32..24).prop_map(|containers| Op::Capacity { containers }),
        (1u32..24).prop_map(|containers| Op::Capacity { containers }),
        (1u32..24).prop_map(|containers| Op::Capacity { containers }),
        tick(),
        tick(),
    ]
}

fn spec(label: u8, tasks: u64, arrived: u64, parked: bool) -> rush_planner::JobSpec {
    rush_planner::JobSpec {
        label: format!("tpl-{label}"),
        utility: TimeUtility::sigmoid(400.0 + f64::from(label) * 60.0, 3.0, 0.02)
            .expect("valid utility"),
        tasks,
        arrived_slot: arrived,
        runtime_hint: Some(40.0),
        parked,
    }
}

/// Picks a job id for an `Op` reference: admitted ids round-robin, with a
/// deliberately-unknown id when nothing was admitted yet (both kernels
/// must agree on the unknown-job path too).
fn pick(ids: &[JobId], sel: usize) -> JobId {
    if ids.is_empty() {
        JobId(9_999)
    } else {
        ids[sel % ids.len()]
    }
}

fn assert_same_surface(sharded: &ShardedPlanner, core: &PlannerCore, now: u64, ctx: &str) {
    assert_eq!(sharded.delta(), core.delta(), "delta diverged {ctx}");
    let sharded_plan: Vec<(JobId, rush_core::plan::PlanEntry)> =
        sharded.planned().map(|(id, e)| (id, *e)).collect();
    let core_plan: Vec<(JobId, rush_core::plan::PlanEntry)> = core
        .plan_ids()
        .iter()
        .copied()
        .zip(core.plan().entries.iter().cloned())
        .collect();
    assert_eq!(sharded_plan, core_plan, "plan diverged {ctx}");
    let sharded_jobs: Vec<_> = sharded.jobs().map(|(id, j)| (id, j.clone())).collect();
    let core_jobs: Vec<_> = core.jobs().map(|(id, j)| (id, j.clone())).collect();
    assert_eq!(sharded_jobs, core_jobs, "registry diverged {ctx}");
    assert_eq!(sharded.is_fresh(now), core.is_fresh(now), "freshness diverged {ctx}");
    assert_eq!(sharded.cache_hits(), core.cache_hits(), "cache hits diverged {ctx}");
    assert_eq!(sharded.cache_misses(), core.cache_misses(), "cache misses diverged {ctx}");
    assert_eq!(sharded.next_id(), core.next_id(), "id counter diverged {ctx}");
}

fn run_stream(ops: &[Op], cold_start: ColdStart, retire: bool) {
    let capacity = 8;
    let mut sharded = ShardedPlanner::new(RushConfig::default(), capacity, 1)
        .expect("sharded")
        .with_cold_start(cold_start)
        .with_retirement(retire);
    let mut core = PlannerCore::new(RushConfig::default(), capacity)
        .expect("core")
        .with_cold_start(cold_start)
        .with_retirement(retire);

    let mut ids: Vec<JobId> = Vec::new();
    let mut now = 0u64;
    for (step, op) in ops.iter().enumerate() {
        let ctx = format!("at step {step} ({op:?})");
        match op {
            Op::Arrive { label, tasks, parked } => {
                let s = spec(*label, *tasks, now, *parked);
                let a = sharded.admit(s.clone());
                let b = core.admit(s);
                assert_eq!(a, b, "admission ids diverged {ctx}");
                ids.push(a);
            }
            Op::Sample { job, runtime } => {
                let id = pick(&ids, *job);
                let a = sharded.ingest_sample(id, *runtime);
                let b = core.ingest_sample(id, *runtime);
                match (a, b) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "sample outcome diverged {ctx}"),
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("sample result diverged {ctx}: {a:?} vs {b:?}"),
                }
            }
            Op::Fail { job } => {
                let id = pick(&ids, *job);
                assert_eq!(sharded.record_failure(id), core.record_failure(id), "{ctx}");
            }
            Op::Cancel { job } => {
                let id = pick(&ids, *job);
                assert_eq!(sharded.cancel(id), core.cancel(id), "{ctx}");
                ids.retain(|&j| j != id);
            }
            Op::Park { job, parked } => {
                let id = pick(&ids, *job);
                let a = sharded.set_parked(id, *parked);
                let b = core.set_parked(id, *parked);
                assert_eq!(a.is_ok(), b.is_ok(), "park result diverged {ctx}");
            }
            Op::Capacity { containers } => {
                // Drive the sharded side through the typed event path and
                // the bare kernel through the method, so the stream also
                // proves `PlannerEvent::CapacityChange` is equivalent to a
                // direct `set_capacity` call.
                let out = sharded
                    .apply(PlannerEvent::CapacityChange { capacity: *containers })
                    .expect("1-shard capacity event");
                assert_eq!(
                    out,
                    EventOutcome::CapacityChanged { capacity: *containers },
                    "capacity outcome diverged {ctx}"
                );
                core.set_capacity(*containers);
            }
            Op::Tick { advance } => {
                now += advance;
                let a = sharded.plan_at(now);
                let b = core.plan_at(now);
                match (&a, &b) {
                    (Ok(_), Ok(_)) | (Err(_), Err(_)) => {}
                    _ => panic!("plan result diverged {ctx}: {a:?} vs {b:?}"),
                }
                assert_same_surface(&sharded, &core, now, &ctx);
            }
        }
    }
    // Final barrier: plan once more and compare everything.
    now += 1;
    let _ = sharded.plan_at(now);
    let _ = core.plan_at(now);
    assert_same_surface(&sharded, &core, now, "at the final tick");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn one_shard_matches_bare_kernel_own_samples(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        run_stream(&ops, ColdStart::OwnSamplesOnly, false);
    }

    #[test]
    fn one_shard_matches_bare_kernel_pooled(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        run_stream(&ops, ColdStart::PooledByLabel, false);
    }

    #[test]
    fn one_shard_matches_bare_kernel_with_retirement(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        run_stream(&ops, ColdStart::OwnSamplesOnly, true);
    }

    #[test]
    fn one_shard_matches_bare_kernel_under_capacity_churn(
        ops in proptest::collection::vec(churn_op_strategy(), 1..60),
    ) {
        run_stream(&ops, ColdStart::PooledByLabel, false);
    }

    #[test]
    fn multi_shard_replay_is_deterministic(
        ops in proptest::collection::vec(op_strategy(), 1..50),
        shards in 2usize..5,
    ) {
        // Two independent multi-shard planners fed the same stream must
        // agree on every observable (determinism of routing, slicing and
        // rebalancing — the single-shard tests above pin the semantics).
        let capacity = 12;
        let mk = || {
            ShardedPlanner::new(RushConfig::default(), capacity, shards)
                .expect("sharded")
                .with_cold_start(ColdStart::PooledByLabel)
        };
        let mut a = mk();
        let mut b = mk();
        let mut ids: Vec<JobId> = Vec::new();
        let mut now = 0u64;
        for op in &ops {
            match op {
                Op::Arrive { label, tasks, parked } => {
                    let s = spec(*label, *tasks, now, *parked);
                    let ia = a.admit(s.clone());
                    let ib = b.admit(s);
                    prop_assert_eq!(ia, ib);
                    ids.push(ia);
                }
                Op::Sample { job, runtime } => {
                    let id = pick(&ids, *job);
                    let _ = a.ingest_sample(id, *runtime);
                    let _ = b.ingest_sample(id, *runtime);
                }
                Op::Fail { job } => {
                    let id = pick(&ids, *job);
                    a.record_failure(id);
                    b.record_failure(id);
                }
                Op::Cancel { job } => {
                    let id = pick(&ids, *job);
                    a.cancel(id);
                    b.cancel(id);
                    ids.retain(|&j| j != id);
                }
                Op::Park { job, parked } => {
                    let id = pick(&ids, *job);
                    let _ = a.set_parked(id, *parked);
                    let _ = b.set_parked(id, *parked);
                }
                Op::Capacity { containers } => {
                    // Clamp so every shard keeps a container.
                    let c = (*containers).max(shards as u32);
                    a.set_capacity(c).expect("capacity");
                    b.set_capacity(c).expect("capacity");
                }
                Op::Tick { advance } => {
                    now += advance;
                    let ra = a.plan_at(now).cloned();
                    let rb = b.plan_at(now).cloned();
                    match (ra, rb) {
                        (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                        (Err(_), Err(_)) => {}
                        other => panic!("plan result diverged: {other:?}"),
                    }
                    prop_assert_eq!(a.slices(), b.slices());
                }
            }
        }
        now += 1;
        let _ = a.plan_at(now);
        let _ = b.plan_at(now);
        let pa: Vec<_> = a.planned().map(|(id, e)| (id, *e)).collect();
        let pb: Vec<_> = b.planned().map(|(id, e)| (id, *e)).collect();
        prop_assert_eq!(pa, pb);
        prop_assert_eq!(a.slices(), b.slices());
    }
}

/// A typed [`rush_core::ClusterModel`] spot-churn trajectory drives a
/// multi-shard planner through repeated revoke/restock cycles: after every
/// event the shard slices must still partition the effective capacity,
/// every shard must keep at least one container, and planning must keep
/// succeeding — the committed-prefix floor inside `demand_split` must
/// never wedge the rebalancer under churn.
#[test]
fn multi_shard_absorbs_cluster_model_spot_churn() {
    let model = rush_core::ClusterModel::tiered(4, 0, 8).with_spot_churn(1, 10, 20, 5, 6, 4);
    model.validate().expect("valid model");

    let mut planner = ShardedPlanner::new(RushConfig::default(), model.total_capacity(), 3)
        .expect("sharded")
        .with_cold_start(ColdStart::PooledByLabel);
    let mut ids: Vec<JobId> = Vec::new();
    for i in 0..9u8 {
        ids.push(planner.admit(spec(i % 6, 4 + u64::from(i), 0, false)));
    }
    for (i, id) in ids.iter().enumerate() {
        planner.ingest_sample(*id, 20 + i as u64 * 7).expect("sample");
    }

    let mut now = 0u64;
    for ev in &model.events {
        now = ev.at;
        let capacity = model.capacity_at(now);
        let out =
            planner.apply(PlannerEvent::CapacityChange { capacity }).expect("capacity event");
        assert_eq!(out, EventOutcome::CapacityChanged { capacity });
        let slices = planner.slices();
        assert_eq!(
            slices.iter().sum::<u32>(),
            capacity,
            "slices must partition the effective capacity at slot {now}"
        );
        assert!(slices.iter().all(|&s| s >= 1), "every shard keeps a container at slot {now}");
        planner.plan_at(now).expect("plan under churn");
    }
    // The schedule is revoke/restock balanced: once it is exhausted the
    // cluster is back at full strength.
    assert_eq!(model.capacity_at(now + 1), model.total_capacity());
}

//! Property tests of the sharded planner's partition invariants, for
//! shard counts 2–6 over randomized event streams:
//!
//! 1. **Slice conservation** — the per-shard capacity slices always sum
//!    to the configured total, and no slice is ever zero.
//! 2. **Unique ownership** — every resident job is owned by exactly one
//!    shard (the union of shard registries has no duplicates and matches
//!    the planner's merged view), and ownership follows the label hash.
//! 3. **Rebalance floors** — an explicit rebalance never cuts a shard
//!    below its committed Theorem-2 prefix demand (capped by the total:
//!    an overcommitted cluster keeps its slices), never starves a shard
//!    to zero, and conserves the total exactly.
//!
//! The same checks run as `debug_assert!`s inside the planner under the
//! `strict-invariants` feature; this suite proves them from the outside
//! on the default build too.

use proptest::prelude::*;
use rush_core::RushConfig;
use rush_planner::{shard_of_label, JobId, ShardedPlanner};
use rush_utility::TimeUtility;
use std::collections::BTreeSet;

#[derive(Debug, Clone)]
enum Op {
    Arrive { label: u8, tasks: u64 },
    Sample { job: usize, runtime: u64 },
    Cancel { job: usize },
    Tick { advance: u64 },
    Rebalance,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..10, 1u64..16).prop_map(|(label, tasks)| Op::Arrive { label, tasks }),
        (0u8..10, 1u64..16).prop_map(|(label, tasks)| Op::Arrive { label, tasks }),
        (0usize..24, 5u64..90).prop_map(|(job, runtime)| Op::Sample { job, runtime }),
        (0usize..24, 5u64..90).prop_map(|(job, runtime)| Op::Sample { job, runtime }),
        (0usize..24).prop_map(|job| Op::Cancel { job }),
        (0u64..3).prop_map(|advance| Op::Tick { advance }),
        (0u64..3).prop_map(|advance| Op::Tick { advance }),
        Just(Op::Rebalance),
    ]
}

fn spec(label: u8, tasks: u64, arrived: u64) -> rush_planner::JobSpec {
    rush_planner::JobSpec {
        label: format!("tenant-{label}"),
        utility: TimeUtility::sigmoid(500.0, 3.0, 0.02).expect("valid utility"),
        tasks,
        arrived_slot: arrived,
        runtime_hint: Some(40.0),
        parked: false,
    }
}

/// The partition invariants, checked from the public surface.
fn assert_invariants(p: &ShardedPlanner, ctx: &str) {
    let n = p.shard_count();
    let slices = p.slices();
    // 1. Slice conservation.
    assert_eq!(
        slices.iter().map(|&s| u64::from(s)).sum::<u64>(),
        u64::from(p.capacity()),
        "slices must sum to the total {ctx}"
    );
    assert!(slices.iter().all(|&s| s >= 1), "no shard may hold zero containers {ctx}");
    // 2. Unique ownership: union of shard registries == merged view, no
    //    id appears twice, and every job sits on its label-hash shard.
    let mut seen = BTreeSet::new();
    let mut union = 0usize;
    for i in 0..n {
        for (id, job) in p.shard_core(i).jobs() {
            union += 1;
            assert!(seen.insert(id), "job {id} resident on two shards {ctx}");
            assert_eq!(
                i,
                shard_of_label(&job.label, n),
                "job {id} is off its label-hash shard {ctx}"
            );
            assert_eq!(p.shard_of(id), Some(i), "ownership map disagrees for {id} {ctx}");
        }
    }
    assert_eq!(union, p.job_count(), "merged job count mismatch {ctx}");
    assert_eq!(p.jobs().count(), union, "merged iterator mismatch {ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn partition_invariants_hold_through_random_streams(
        ops in proptest::collection::vec(op_strategy(), 1..70),
        shards in 2usize..7,
    ) {
        let capacity = 24u32;
        let mut p = ShardedPlanner::new(RushConfig::default(), capacity, shards)
            .expect("planner")
            // Exercise the periodic path too, on a short cadence.
            .with_rebalance_interval(5);
        let mut ids: Vec<JobId> = Vec::new();
        let mut now = 0u64;
        for (step, op) in ops.iter().enumerate() {
            let ctx = format!("at step {step} ({op:?}, {shards} shards)");
            match op {
                Op::Arrive { label, tasks } => {
                    ids.push(p.admit(spec(*label, *tasks, now)));
                }
                Op::Sample { job, runtime } => {
                    if !ids.is_empty() {
                        let id = ids[job % ids.len()];
                        let _ = p.ingest_sample(id, *runtime);
                    }
                }
                Op::Cancel { job } => {
                    if !ids.is_empty() {
                        let id = ids[job % ids.len()];
                        p.cancel(id);
                        ids.retain(|&j| j != id);
                    }
                }
                Op::Tick { advance } => {
                    now += advance;
                    let _ = p.plan_at(now);
                }
                Op::Rebalance => {
                    // 3. Rebalance floors: capture the committed demands,
                    //    rebalance, and check no shard fell below them.
                    let _ = p.plan_at(now);
                    let committed: Vec<u32> = (0..shards)
                        .map(|i| p.shard_core(i).committed_capacity())
                        .collect();
                    let overcommitted = committed
                        .iter()
                        .map(|&c| u64::from(c.clamp(1, capacity)))
                        .sum::<u64>()
                        > u64::from(capacity);
                    let before = p.slices();
                    p.rebalance();
                    let after = p.slices();
                    if overcommitted {
                        prop_assert_eq!(
                            &before, &after,
                            "overcommitted cluster must keep its slices {}", ctx
                        );
                    } else {
                        for (i, (&s, &c)) in after.iter().zip(&committed).enumerate() {
                            prop_assert!(
                                s >= c.min(capacity),
                                "shard {} cut below committed demand ({} < {}) {}",
                                i, s, c, ctx
                            );
                        }
                    }
                }
            }
            assert_invariants(&p, &ctx);
        }
        // Close with a final plan: invariants must survive a full pass.
        now += 1;
        let _ = p.plan_at(now);
        assert_invariants(&p, "after the final plan");
    }

    #[test]
    fn headroom_never_exceeds_slice(
        jobs in 1usize..30,
        shards in 2usize..5,
    ) {
        // headroom() = slice - committed, saturating: committed demand
        // above the slice must clamp to zero headroom, not wrap.
        let mut p = ShardedPlanner::new(RushConfig::default(), 8, shards).expect("planner");
        for i in 0..jobs {
            p.admit(spec((i % 6) as u8, 12, 0));
        }
        let _ = p.plan_at(0);
        for (i, h) in p.headrooms().into_iter().enumerate() {
            prop_assert!(
                h <= p.shard_core(i).capacity(),
                "headroom {} exceeds slice {} on shard {}",
                h, p.shard_core(i).capacity(), i
            );
        }
    }
}

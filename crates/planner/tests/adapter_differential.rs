//! Differential proof of the kernel refactor: the kernel-backed
//! [`rush_planner::RushScheduler`] must behave **bit-identically** to the
//! frozen pre-kernel [`rush_core::ReferenceScheduler`].
//!
//! Both schedulers are driven through the same randomized simulations —
//! heterogeneous node speeds, data-locality penalties, Bernoulli failures,
//! log-normal interference, and a speculation wrapper — and every field of
//! the resulting [`SimResult`] (including the full trace event sequence,
//! which encodes the exact assignment order) is compared. Wall-clock
//! `scheduler_time` is the only field allowed to differ.
//!
//! The workload generator mirrors the `engine_differential` corpus but
//! swaps the trivial FCFS-style scheduler for the RUSH CA unit and mixes
//! time-utility shapes so the onion peel and the insensitive-reserve gate
//! are both exercised.

use proptest::prelude::*;
use rush_core::{ReferenceScheduler, RushConfig};
use rush_planner::RushScheduler;
use rush_sim::cluster::ClusterSpec;
use rush_sim::engine::{SimConfig, Simulation};
use rush_sim::job::{JobSpec, Phase, TaskSpec};
use rush_sim::outcome::SimResult;
use rush_sim::perturb::{FailureModel, Interference};
use rush_sim::scheduler::Scheduler;
use rush_sim::{NodeId, Slot};
use rush_utility::TimeUtility;

/// One parameterized workload on a 3-speed-grade cluster. Per-job shape is
/// a function of the index so every `(seed, n_jobs)` pair names exactly
/// one workload; utilities alternate between sigmoid (time-aware) and
/// constant (insensitive) so both dispatch paths run.
fn build_sim(
    seed: u64,
    n_jobs: usize,
    containers_per_node: u32,
    fail_p: f64,
    cv: f64,
) -> Simulation {
    let cluster = ClusterSpec::new(vec![
        (0.8, containers_per_node),
        (1.0, containers_per_node),
        (1.3, containers_per_node),
    ])
    .unwrap();
    let mut cfg = SimConfig::new(cluster)
        .with_remote_penalty(1.4)
        .with_trace(true)
        .with_seed(seed);
    if fail_p > 0.0 {
        cfg = cfg.with_failures(FailureModel::Bernoulli { p: fail_p });
    }
    if cv > 0.0 {
        cfg = cfg.with_interference(Interference::LogNormal { cv });
    }
    let jobs: Vec<JobSpec> = (0..n_jobs)
        .map(|i| {
            let maps = 1 + (i * 7 + seed as usize) % 6;
            let reduces = (i + seed as usize) % 3;
            let arrival = (i as Slot * 5) % 23;
            // Two jobs share each label so the cross-job cold-start pools
            // engage, and utilities alternate time-aware / insensitive.
            let mut b = JobSpec::builder(format!("tpl{}", i / 2)).arrival(arrival);
            for t in 0..maps {
                let mut task = TaskSpec::new(3.0 + ((i + t) % 9) as f64, Phase::Map);
                if t % 2 == 0 {
                    task = task.with_preference(NodeId(((i + t) % 3) as u32));
                }
                b = b.task(task);
            }
            for t in 0..reduces {
                b = b.task(TaskSpec::new(4.0 + (t % 5) as f64, Phase::Reduce));
            }
            let utility = if i % 3 == 2 {
                TimeUtility::constant(1.0).unwrap()
            } else {
                TimeUtility::sigmoid(60.0 + (i as f64) * 15.0, 4.0, 0.05).unwrap()
            };
            b.utility(utility).budget(60 + i as Slot * 15).build().unwrap()
        })
        .collect();
    Simulation::new(cfg, jobs).unwrap()
}

/// Asserts everything except wall-clock scheduler time is identical.
fn assert_bit_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.outcomes, b.outcomes, "per-job outcomes must match");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.misassignments, b.misassignments);
    assert_eq!(a.scheduler_invocations, b.scheduler_invocations);
    assert_eq!(a.failed_attempts, b.failed_attempts);
    assert_eq!(a.speculative_attempts, b.speculative_attempts);
    assert_eq!(a.killed_attempts, b.killed_attempts);
    assert_eq!(a.local_starts, b.local_starts);
    assert_eq!(a.remote_starts, b.remote_starts);
    assert_eq!(a.trace, b.trace, "trace event sequences must match");
}

fn run_both(seed: u64, n_jobs: usize, cpn: u32, fail: f64, cv: f64) -> (SimResult, SimResult) {
    let mut adapter = RushScheduler::new(RushConfig::default());
    let mut reference = ReferenceScheduler::new(RushConfig::default());
    let a = build_sim(seed, n_jobs, cpn, fail, cv).run(&mut adapter).unwrap();
    let b = build_sim(seed, n_jobs, cpn, fail, cv).run(&mut reference).unwrap();
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole contract: kernel adapter ≡ frozen reference, bit for bit,
    /// across randomized seeds, fleet sizes, failures and interference.
    #[test]
    fn adapter_matches_reference_bit_for_bit(
        seed in 0u64..1000,
        n_jobs in 1usize..10,
        cpn in 1u32..4,
        fail in prop_oneof![Just(0.0), Just(0.2)],
        cv in prop_oneof![Just(0.0), Just(0.4)],
    ) {
        let (a, b) = run_both(seed, n_jobs, cpn, fail, cv);
        assert_bit_identical(&a, &b);
    }

    /// The two CoRA modes (non-robust mean-based config) also agree.
    #[test]
    fn cora_modes_agree(seed in 0u64..1000, n_jobs in 1usize..8) {
        let mut adapter = RushScheduler::cora();
        let mut reference = ReferenceScheduler::cora();
        let a = build_sim(seed, n_jobs, 2, 0.1, 0.3).run(&mut adapter).unwrap();
        let b = build_sim(seed, n_jobs, 2, 0.1, 0.3).run(&mut reference).unwrap();
        assert_bit_identical(&a, &b);
    }

    /// Speculation wraps both schedulers identically: duplicate launches
    /// and kills depend only on the inner assignment stream.
    #[test]
    fn speculative_wrappers_agree(seed in 0u64..1000, n_jobs in 2usize..8) {
        let mut adapter =
            rush_sched::Speculative::new(RushScheduler::new(RushConfig::default()), 2.0);
        let mut reference =
            rush_sched::Speculative::new(ReferenceScheduler::new(RushConfig::default()), 2.0);
        let a = build_sim(seed, n_jobs, 2, 0.15, 0.5).run(&mut adapter).unwrap();
        let b = build_sim(seed, n_jobs, 2, 0.15, 0.5).run(&mut reference).unwrap();
        assert_bit_identical(&a, &b);
    }
}

/// Deterministic spot-checks pinning the corners proptest may not draw:
/// the one-job fast path, a failure+interference storm, and mid-run
/// `remove_job` behavior on both schedulers.
#[test]
fn fixed_corpus_agrees() {
    for &(seed, n_jobs, cpn, fail, cv) in &[
        (7u64, 1usize, 1u32, 0.0f64, 0.0f64),
        (11, 6, 2, 0.35, 0.5),
        (23, 9, 3, 0.15, 0.4),
        (104, 4, 1, 0.25, 0.0),
    ] {
        let (a, b) = run_both(seed, n_jobs, cpn, fail, cv);
        assert_bit_identical(&a, &b);
    }
}

/// The adapters agree on `name()` and plan introspection after a run.
#[test]
fn introspection_matches_after_identical_runs() {
    let mut adapter = RushScheduler::new(RushConfig::default());
    let mut reference = ReferenceScheduler::new(RushConfig::default());
    assert_eq!(Scheduler::name(&adapter), Scheduler::name(&reference));
    let a = build_sim(42, 5, 2, 0.1, 0.3).run(&mut adapter).unwrap();
    let b = build_sim(42, 5, 2, 0.1, 0.3).run(&mut reference).unwrap();
    assert_bit_identical(&a, &b);
    assert_eq!(adapter.last_plan(), reference.last_plan(), "final plans must match");
}

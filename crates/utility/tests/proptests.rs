//! Property tests for the utility classes: the non-increasing contract and
//! inverse consistency, for every class.

use proptest::prelude::*;
use rush_utility::{LatestTime, PiecewiseLinear, TimeUtility, Utility};

fn any_utility() -> impl Strategy<Value = TimeUtility> {
    prop_oneof![
        (1.0f64..5000.0, 0.1f64..10.0, 0.001f64..2.0)
            .prop_map(|(b, w, beta)| TimeUtility::linear(b, w, beta).unwrap()),
        (1.0f64..5000.0, 0.1f64..10.0, 0.001f64..2.0)
            .prop_map(|(b, w, beta)| TimeUtility::sigmoid(b, w, beta).unwrap()),
        (0.1f64..10.0).prop_map(|w| TimeUtility::constant(w).unwrap()),
        (1.0f64..5000.0, 0.1f64..10.0).prop_map(|(b, w)| TimeUtility::step(b, w).unwrap()),
    ]
}

proptest! {
    /// U is non-increasing and bounded by [inf, sup] everywhere.
    #[test]
    fn non_increasing_and_bounded(u in any_utility(), ts in prop::collection::vec(0.0f64..10_000.0, 2..32)) {
        let mut sorted = ts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::INFINITY;
        for &t in &sorted {
            let v = u.utility(t);
            prop_assert!(v <= prev + 1e-9, "increased at t={t}");
            prop_assert!(v <= u.sup() + 1e-9);
            prop_assert!(v + 1e-9 >= u.inf());
            prev = v;
        }
    }

    /// latest_time(L) is consistent: U(latest) ≥ L and U just after < L
    /// (for strictly decreasing classes).
    #[test]
    fn inverse_consistency(u in any_utility(), frac in 0.05f64..0.95) {
        let level = u.inf() + (u.sup() - u.inf()) * frac;
        if level <= u.inf() + 1e-12 {
            return Ok(());
        }
        match u.latest_time(level) {
            LatestTime::At(t) => {
                prop_assert!(u.utility(t) + 1e-6 >= level,
                    "U({t}) = {} < level {level}", u.utility(t));
                prop_assert!(u.utility(t + 1.0) <= level + 1e-6,
                    "one slot later still attains the level");
            }
            LatestTime::Always => {
                prop_assert!(u.utility(1e9) + 1e-9 >= level);
            }
            LatestTime::Never => {
                prop_assert!(level > u.sup() - 1e-9);
            }
        }
    }

    /// Piecewise-linear utilities honour the same contract.
    #[test]
    fn piecewise_contract(
        raw in prop::collection::vec((1.0f64..100.0, 0.0f64..5.0), 1..6),
        frac in 0.05f64..0.95,
    ) {
        // Build valid breakpoints: strictly increasing times, non-increasing utils.
        let mut t_acc = 0.0;
        let mut u_acc = 6.0;
        let points: Vec<(f64, f64)> = raw
            .iter()
            .map(|&(dt, du)| {
                t_acc += dt;
                u_acc = (u_acc - du * 0.2).max(0.0);
                (t_acc, u_acc)
            })
            .collect();
        let u = PiecewiseLinear::new(points).unwrap();
        // Non-increasing sweep.
        let mut prev = f64::INFINITY;
        let mut t = 0.0;
        while t < t_acc + 50.0 {
            let v = u.utility(t);
            prop_assert!(v <= prev + 1e-9);
            prev = v;
            t += t_acc / 64.0 + 0.1;
        }
        // Inverse consistency at an interior level.
        let level = u.inf() + (u.sup() - u.inf()) * frac;
        if level > u.inf() + 1e-9 && level < u.sup() - 1e-9 {
            if let LatestTime::At(t) = u.latest_time(level) {
                prop_assert!(u.utility(t) + 1e-6 >= level);
            }
        }
    }
}

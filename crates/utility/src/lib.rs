//! Completion-time utility functions for the RUSH scheduler.
//!
//! Each job in the RUSH model (ICDCS 2016, Sec. II) carries a
//! **non-increasing** utility function `U_i(T_i)` of its completion time.
//! The paper's job-configuration interface ships three utility classes —
//! piece-wise linear, sigmoid and constant — parameterized by a time budget
//! `B`, a priority `W` and a sensitivity `β`; this crate implements those
//! (plus a hard step deadline) as the closed enum [`TimeUtility`], and the
//! open trait [`Utility`] for user-supplied classes.
//!
//! The onion-peeling algorithm needs the *inverse* `U⁻¹(L)`: the latest
//! completion time that still attains utility level `L`. Because some
//! utilities are flat (constant class) or bounded (all classes), the inverse
//! is the three-valued [`LatestTime`].
//!
//! **Paper erratum**: the paper prints the sigmoid as `W/(1+e^{β(B−T)})`,
//! which *increases* with `T`, contradicting its own non-increasing
//! assumption. [`TimeUtility::sigmoid`] implements the evident intent
//! `U(T) = W/(1+e^{β(T−B)})`.
//!
//! # Example
//!
//! ```
//! use rush_utility::{LatestTime, TimeUtility, Utility};
//!
//! # fn main() -> Result<(), rush_utility::UtilityError> {
//! let u = TimeUtility::sigmoid(600.0, 5.0, 0.05)?; // budget 600 s, W=5
//! assert!(u.utility(0.0) > 4.9);          // well before budget: ~W
//! assert!(u.utility(2000.0) < 0.01);      // far past budget: ~0
//! match u.latest_time(2.5) {
//!     LatestTime::At(t) => assert!((t - 600.0).abs() < 1e-9), // U(B) = W/2
//!     _ => unreachable!(),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// Errors from constructing utility functions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UtilityError {
    /// A parameter was out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for UtilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtilityError::InvalidParameter { name, value } => {
                write!(f, "invalid utility parameter {name}: {value}")
            }
        }
    }
}

impl Error for UtilityError {}

/// The inverse image of a utility level: the latest completion time that
/// still attains it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatestTime {
    /// Utility level `L` is attained iff the job completes by this time.
    At(f64),
    /// The level is attained at every completion time (flat utility ≥ L).
    Always,
    /// The level is unattainable even at `T = 0`.
    Never,
}

impl LatestTime {
    /// Collapses to a finite deadline, mapping [`Always`](LatestTime::Always)
    /// to `horizon` and [`Never`](LatestTime::Never) to `None`.
    pub fn deadline_within(self, horizon: f64) -> Option<f64> {
        match self {
            LatestTime::At(t) => Some(t.min(horizon)),
            LatestTime::Always => Some(horizon),
            LatestTime::Never => None,
        }
    }
}

/// A non-increasing utility of completion time.
///
/// Implementations must guarantee `utility(t1) ≥ utility(t2)` whenever
/// `t1 ≤ t2`, with `sup() = utility(0)` and `inf() = lim_{t→∞} utility(t)`.
pub trait Utility {
    /// Utility of completing at time `t ≥ 0`.
    fn utility(&self, t: f64) -> f64;

    /// Supremum of the utility (attained at `t = 0`).
    fn sup(&self) -> f64 {
        self.utility(0.0)
    }

    /// Infimum of the utility as `t → ∞`.
    fn inf(&self) -> f64;

    /// The latest completion time attaining utility at least `level`
    /// (`U⁻¹(L)` in the paper's onion-peeling algorithm).
    fn latest_time(&self, level: f64) -> LatestTime;
}

/// The closed set of utility classes shipped with RUSH's job-configuration
/// interface (paper Sec. IV), plus a hard step deadline.
///
/// All variants take the client-specified time budget `B` (slots), priority
/// weight `W > 0` and, where applicable, sensitivity `β > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TimeUtility {
    /// `U(T) = max(β·(B − T) + W, 0)` — utility decays linearly past the
    /// point where the budget margin runs out.
    Linear {
        /// Time budget `B`.
        budget: f64,
        /// Priority weight `W`.
        weight: f64,
        /// Decay slope `β`.
        beta: f64,
    },
    /// `U(T) = W / (1 + e^{β(T − B)})` — smooth drop around the budget with
    /// steepness `β` (corrected sign; see crate docs).
    Sigmoid {
        /// Time budget `B`.
        budget: f64,
        /// Priority weight `W`.
        weight: f64,
        /// Steepness `β`.
        beta: f64,
    },
    /// `U(T) = W` — a completion-time-insensitive job.
    Constant {
        /// Priority weight `W`.
        weight: f64,
    },
    /// `U(T) = W` for `T ≤ B`, else 0 — a hard deadline.
    Step {
        /// Deadline `B`.
        budget: f64,
        /// Priority weight `W`.
        weight: f64,
    },
}

impl TimeUtility {
    /// Linear class `max(β(B−T)+W, 0)`.
    ///
    /// # Errors
    ///
    /// [`UtilityError::InvalidParameter`] if `budget < 0`, `weight ≤ 0` or
    /// `beta ≤ 0`, or any parameter is non-finite.
    pub fn linear(budget: f64, weight: f64, beta: f64) -> Result<Self, UtilityError> {
        validate_budget(budget)?;
        validate_weight(weight)?;
        validate_beta(beta)?;
        Ok(TimeUtility::Linear { budget, weight, beta })
    }

    /// Sigmoid class `W/(1+e^{β(T−B)})`.
    ///
    /// # Errors
    ///
    /// [`UtilityError::InvalidParameter`] as for [`TimeUtility::linear`].
    pub fn sigmoid(budget: f64, weight: f64, beta: f64) -> Result<Self, UtilityError> {
        validate_budget(budget)?;
        validate_weight(weight)?;
        validate_beta(beta)?;
        Ok(TimeUtility::Sigmoid { budget, weight, beta })
    }

    /// Constant class `W` (time-insensitive).
    ///
    /// # Errors
    ///
    /// [`UtilityError::InvalidParameter`] if `weight ≤ 0` or non-finite.
    pub fn constant(weight: f64) -> Result<Self, UtilityError> {
        validate_weight(weight)?;
        Ok(TimeUtility::Constant { weight })
    }

    /// Hard step deadline: `W` up to `budget`, 0 after.
    ///
    /// # Errors
    ///
    /// [`UtilityError::InvalidParameter`] if `budget < 0` or `weight ≤ 0`.
    pub fn step(budget: f64, weight: f64) -> Result<Self, UtilityError> {
        validate_budget(budget)?;
        validate_weight(weight)?;
        Ok(TimeUtility::Step { budget, weight })
    }

    /// The priority weight `W`.
    pub fn weight(&self) -> f64 {
        match *self {
            TimeUtility::Linear { weight, .. }
            | TimeUtility::Sigmoid { weight, .. }
            | TimeUtility::Constant { weight }
            | TimeUtility::Step { weight, .. } => weight,
        }
    }

    /// The time budget `B`, if this class has one.
    pub fn budget(&self) -> Option<f64> {
        match *self {
            TimeUtility::Linear { budget, .. }
            | TimeUtility::Sigmoid { budget, .. }
            | TimeUtility::Step { budget, .. } => Some(budget),
            TimeUtility::Constant { .. } => None,
        }
    }
}

fn validate_budget(budget: f64) -> Result<(), UtilityError> {
    if !budget.is_finite() || budget < 0.0 {
        return Err(UtilityError::InvalidParameter { name: "budget", value: budget });
    }
    Ok(())
}

fn validate_weight(weight: f64) -> Result<(), UtilityError> {
    if !weight.is_finite() || weight <= 0.0 {
        return Err(UtilityError::InvalidParameter { name: "weight", value: weight });
    }
    Ok(())
}

fn validate_beta(beta: f64) -> Result<(), UtilityError> {
    if !beta.is_finite() || beta <= 0.0 {
        return Err(UtilityError::InvalidParameter { name: "beta", value: beta });
    }
    Ok(())
}

impl Utility for TimeUtility {
    fn utility(&self, t: f64) -> f64 {
        let t = t.max(0.0);
        match *self {
            TimeUtility::Linear { budget, weight, beta } => (beta * (budget - t) + weight).max(0.0),
            TimeUtility::Sigmoid { budget, weight, beta } => {
                weight / (1.0 + (beta * (t - budget)).exp())
            }
            TimeUtility::Constant { weight } => weight,
            TimeUtility::Step { budget, weight } => {
                if t <= budget {
                    weight
                } else {
                    0.0
                }
            }
        }
    }

    fn inf(&self) -> f64 {
        match *self {
            TimeUtility::Constant { weight } => weight,
            _ => 0.0,
        }
    }

    fn latest_time(&self, level: f64) -> LatestTime {
        match *self {
            TimeUtility::Linear { budget, weight, beta } => {
                if level <= 0.0 {
                    return LatestTime::Always;
                }
                if level > self.sup() + 1e-12 {
                    return LatestTime::Never;
                }
                // β(B−T)+W = L  ⇒  T = B + (W − L)/β
                LatestTime::At((budget + (weight - level) / beta).max(0.0))
            }
            TimeUtility::Sigmoid { budget, weight, beta } => {
                if level <= 0.0 {
                    return LatestTime::Always;
                }
                if level >= self.sup() {
                    // The sigmoid's sup is only approached as T→0; treat
                    // level == U(0) as "complete immediately".
                    return if level > self.sup() + 1e-12 {
                        LatestTime::Never
                    } else {
                        LatestTime::At(0.0)
                    };
                }
                // W/(1+e^{β(T−B)}) = L  ⇒  T = B + ln(W/L − 1)/β
                LatestTime::At((budget + (weight / level - 1.0).ln() / beta).max(0.0))
            }
            TimeUtility::Constant { weight } => {
                if level <= weight {
                    LatestTime::Always
                } else {
                    LatestTime::Never
                }
            }
            TimeUtility::Step { budget, weight } => {
                if level <= 0.0 {
                    LatestTime::Always
                } else if level <= weight {
                    LatestTime::At(budget)
                } else {
                    LatestTime::Never
                }
            }
        }
    }
}

/// A general piece-wise linear, non-increasing utility defined by
/// `(time, utility)` breakpoints — the "piece-wise linear class" the
/// paper's job-configuration interface accepts in its most general form.
///
/// Before the first breakpoint the utility is the first value; after the
/// last it is the last value; in between it interpolates linearly.
///
/// # Example
///
/// ```
/// use rush_utility::{PiecewiseLinear, Utility};
///
/// # fn main() -> Result<(), rush_utility::UtilityError> {
/// // Full value to t=100, linear decay to 1 at t=200, floor at 1.
/// let u = PiecewiseLinear::new(vec![(100.0, 5.0), (200.0, 1.0)])?;
/// assert_eq!(u.utility(50.0), 5.0);
/// assert_eq!(u.utility(150.0), 3.0);
/// assert_eq!(u.utility(1000.0), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PiecewiseLinear {
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Creates a piece-wise linear utility from breakpoints.
    ///
    /// # Errors
    ///
    /// [`UtilityError::InvalidParameter`] if fewer than one breakpoint is
    /// given, times are not strictly increasing, utilities are increasing
    /// anywhere, any value is non-finite, or any utility is negative.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, UtilityError> {
        if points.is_empty() {
            return Err(UtilityError::InvalidParameter { name: "points", value: 0.0 });
        }
        let mut prev_t = f64::NEG_INFINITY;
        let mut prev_u = f64::INFINITY;
        for &(t, u) in &points {
            if !t.is_finite() || t < 0.0 || t <= prev_t {
                return Err(UtilityError::InvalidParameter { name: "time", value: t });
            }
            if !u.is_finite() || u < 0.0 || u > prev_u {
                return Err(UtilityError::InvalidParameter { name: "utility", value: u });
            }
            prev_t = t;
            prev_u = u;
        }
        Ok(PiecewiseLinear { points })
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

impl Utility for PiecewiseLinear {
    fn utility(&self, t: f64) -> f64 {
        let t = t.max(0.0);
        // bound: points is validated non-empty at construction
        let first = self.points[0];
        if t <= first.0 {
            return first.1;
        }
        for w in self.points.windows(2) {
            // bound: windows(2) yields exactly two elements
            let ((t0, u0), (t1, u1)) = (w[0], w[1]);
            if t <= t1 {
                return u0 + (u1 - u0) * (t - t0) / (t1 - t0);
            }
        }
        self.points.last().map_or(0.0, |&(_, u)| u)
    }

    fn inf(&self) -> f64 {
        // Points are validated non-empty at construction; an empty curve
        // degenerates to zero utility rather than a panic.
        self.points.last().map_or(0.0, |&(_, u)| u)
    }

    fn latest_time(&self, level: f64) -> LatestTime {
        // bound: points is validated non-empty at construction
        let sup = self.points[0].1;
        let inf = self.inf();
        if level <= inf {
            return LatestTime::Always;
        }
        if level > sup + 1e-12 {
            return LatestTime::Never;
        }
        // Walk segments to find the last time with utility ≥ level.
        // bound: points is validated non-empty at construction
        let mut latest = self.points[0].0;
        for w in self.points.windows(2) {
            // bound: windows(2) yields exactly two elements
            let ((t0, u0), (t1, u1)) = (w[0], w[1]);
            if u1 >= level {
                latest = t1;
            } else if u0 >= level {
                // Crossing inside this segment.
                latest = t0 + (u0 - level) / (u0 - u1) * (t1 - t0);
            }
        }
        LatestTime::At(latest)
    }
}

/// The completion-time sensitivity classes of the paper's evaluation mix
/// (20 % critical / 60 % sensitive / 20 % insensitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Sensitivity {
    /// Utility drops rapidly past the budget (steep sigmoid).
    Critical,
    /// Utility drops gradually past the budget (gentle sigmoid).
    Sensitive,
    /// Utility does not depend on completion time (constant).
    Insensitive,
}

impl Sensitivity {
    /// Builds the utility the paper's evaluation assigns to this class:
    /// steep sigmoid (critical), gentle sigmoid (sensitive) or constant
    /// (insensitive), for time budget `budget` and priority `weight`.
    ///
    /// The steepness values are scaled to the budget so "steep" means the
    /// utility collapses within ~2 % of the budget past the deadline and
    /// "gentle" within ~25 %.
    ///
    /// # Errors
    ///
    /// Propagates [`UtilityError::InvalidParameter`] for non-positive
    /// budgets or weights.
    pub fn utility_for(self, budget: f64, weight: f64) -> Result<TimeUtility, UtilityError> {
        if !budget.is_finite() || budget <= 0.0 {
            return Err(UtilityError::InvalidParameter { name: "budget", value: budget });
        }
        match self {
            Sensitivity::Critical => TimeUtility::sigmoid(budget, weight, 50.0 / budget),
            Sensitivity::Sensitive => TimeUtility::sigmoid(budget, weight, 10.0 / budget),
            Sensitivity::Insensitive => TimeUtility::constant(weight),
        }
    }

    /// Whether the class cares about completion time at all.
    pub fn is_time_aware(self) -> bool {
        !matches!(self, Sensitivity::Insensitive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_non_increasing(u: &TimeUtility, horizon: f64) {
        let mut prev = f64::INFINITY;
        let mut t = 0.0;
        while t <= horizon {
            let v = u.utility(t);
            assert!(v <= prev + 1e-9, "utility increased at t={t}: {v} > {prev} for {u:?}");
            prev = v;
            t += horizon / 256.0;
        }
    }

    #[test]
    fn linear_shape_and_floor() {
        let u = TimeUtility::linear(100.0, 5.0, 0.1).unwrap();
        assert!((u.utility(100.0) - 5.0).abs() < 1e-12);
        assert!((u.utility(0.0) - 15.0).abs() < 1e-12);
        assert_eq!(u.utility(1e6), 0.0); // floored at zero
        assert_non_increasing(&u, 500.0);
    }

    #[test]
    fn linear_inverse_round_trips() {
        let u = TimeUtility::linear(100.0, 5.0, 0.1).unwrap();
        for level in [1.0, 2.5, 5.0, 10.0, 14.0] {
            match u.latest_time(level) {
                LatestTime::At(t) => {
                    assert!((u.utility(t) - level).abs() < 1e-9, "level {level}");
                }
                other => panic!("expected At, got {other:?}"),
            }
        }
        assert_eq!(u.latest_time(0.0), LatestTime::Always);
        assert_eq!(u.latest_time(-1.0), LatestTime::Always);
        assert_eq!(u.latest_time(16.0), LatestTime::Never);
    }

    #[test]
    fn sigmoid_is_corrected_direction() {
        // Regression for the paper's sign typo: utility must DROP as T grows.
        let u = TimeUtility::sigmoid(600.0, 5.0, 0.05).unwrap();
        assert!(u.utility(0.0) > u.utility(600.0));
        assert!(u.utility(600.0) > u.utility(1200.0));
        assert!((u.utility(600.0) - 2.5).abs() < 1e-12); // W/2 at the budget
        assert_non_increasing(&u, 3000.0);
    }

    #[test]
    fn sigmoid_inverse_round_trips() {
        let u = TimeUtility::sigmoid(600.0, 5.0, 0.05).unwrap();
        for level in [0.5, 1.0, 2.5, 4.0, 4.9] {
            match u.latest_time(level) {
                LatestTime::At(t) => {
                    assert!((u.utility(t) - level).abs() < 1e-9, "level {level}");
                }
                other => panic!("expected At, got {other:?}"),
            }
        }
        assert_eq!(u.latest_time(0.0), LatestTime::Always);
        assert_eq!(u.latest_time(6.0), LatestTime::Never);
    }

    #[test]
    fn sigmoid_inverse_clamps_high_levels_to_zero_time() {
        let u = TimeUtility::sigmoid(10.0, 5.0, 2.0).unwrap();
        let sup = u.sup();
        match u.latest_time(sup) {
            LatestTime::At(t) => assert_eq!(t, 0.0),
            other => panic!("expected At(0), got {other:?}"),
        }
    }

    #[test]
    fn sigmoid_steepness_orders_decay() {
        let steep = TimeUtility::sigmoid(100.0, 5.0, 0.5).unwrap();
        let gentle = TimeUtility::sigmoid(100.0, 5.0, 0.05).unwrap();
        // Past the budget the steep one collapses faster.
        assert!(steep.utility(120.0) < gentle.utility(120.0));
        // Before the budget the steep one holds value longer.
        assert!(steep.utility(80.0) > gentle.utility(80.0));
    }

    #[test]
    fn constant_is_flat() {
        let u = TimeUtility::constant(3.0).unwrap();
        assert_eq!(u.utility(0.0), 3.0);
        assert_eq!(u.utility(1e9), 3.0);
        assert_eq!(u.inf(), 3.0);
        assert_eq!(u.latest_time(3.0), LatestTime::Always);
        assert_eq!(u.latest_time(3.1), LatestTime::Never);
    }

    #[test]
    fn step_deadline() {
        let u = TimeUtility::step(50.0, 2.0).unwrap();
        assert_eq!(u.utility(50.0), 2.0);
        assert_eq!(u.utility(50.1), 0.0);
        assert_eq!(u.latest_time(1.0), LatestTime::At(50.0));
        assert_eq!(u.latest_time(2.5), LatestTime::Never);
        assert_eq!(u.latest_time(0.0), LatestTime::Always);
    }

    #[test]
    fn constructors_validate() {
        assert!(TimeUtility::linear(-1.0, 1.0, 1.0).is_err());
        assert!(TimeUtility::linear(1.0, 0.0, 1.0).is_err());
        assert!(TimeUtility::linear(1.0, 1.0, 0.0).is_err());
        assert!(TimeUtility::sigmoid(1.0, 1.0, f64::NAN).is_err());
        assert!(TimeUtility::constant(-2.0).is_err());
        assert!(TimeUtility::step(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn negative_times_are_clamped() {
        let u = TimeUtility::linear(10.0, 1.0, 1.0).unwrap();
        assert_eq!(u.utility(-5.0), u.utility(0.0));
    }

    #[test]
    fn accessors() {
        let u = TimeUtility::sigmoid(10.0, 4.0, 1.0).unwrap();
        assert_eq!(u.weight(), 4.0);
        assert_eq!(u.budget(), Some(10.0));
        let c = TimeUtility::constant(2.0).unwrap();
        assert_eq!(c.budget(), None);
    }

    #[test]
    fn latest_time_deadline_within() {
        assert_eq!(LatestTime::At(5.0).deadline_within(10.0), Some(5.0));
        assert_eq!(LatestTime::At(50.0).deadline_within(10.0), Some(10.0));
        assert_eq!(LatestTime::Always.deadline_within(10.0), Some(10.0));
        assert_eq!(LatestTime::Never.deadline_within(10.0), None);
    }

    #[test]
    fn sensitivity_classes() {
        let crit = Sensitivity::Critical.utility_for(100.0, 5.0).unwrap();
        let sens = Sensitivity::Sensitive.utility_for(100.0, 5.0).unwrap();
        let insens = Sensitivity::Insensitive.utility_for(100.0, 5.0).unwrap();
        // Critical collapses faster past budget than sensitive.
        assert!(crit.utility(110.0) < sens.utility(110.0));
        assert_eq!(insens.utility(110.0), insens.utility(0.0));
        assert!(Sensitivity::Critical.is_time_aware());
        assert!(!Sensitivity::Insensitive.is_time_aware());
        assert!(Sensitivity::Critical.utility_for(0.0, 5.0).is_err());
    }

    #[test]
    fn piecewise_shape_and_bounds() {
        let u = PiecewiseLinear::new(vec![(100.0, 5.0), (200.0, 1.0), (300.0, 0.0)]).unwrap();
        assert_eq!(u.utility(0.0), 5.0);
        assert_eq!(u.utility(100.0), 5.0);
        assert_eq!(u.utility(150.0), 3.0);
        assert_eq!(u.utility(250.0), 0.5);
        assert_eq!(u.utility(300.0), 0.0);
        assert_eq!(u.utility(1e9), 0.0);
        assert_eq!(u.sup(), 5.0);
        assert_eq!(u.inf(), 0.0);
        assert_eq!(u.points().len(), 3);
    }

    #[test]
    fn piecewise_is_non_increasing() {
        let u = PiecewiseLinear::new(vec![(10.0, 4.0), (20.0, 4.0), (50.0, 0.5)]).unwrap();
        let mut prev = f64::INFINITY;
        let mut t = 0.0;
        while t < 100.0 {
            let v = u.utility(t);
            assert!(v <= prev + 1e-12);
            prev = v;
            t += 0.5;
        }
    }

    #[test]
    fn piecewise_inverse_round_trips() {
        let u = PiecewiseLinear::new(vec![(100.0, 5.0), (200.0, 1.0)]).unwrap();
        for level in [1.5, 2.5, 4.0, 5.0] {
            match u.latest_time(level) {
                LatestTime::At(t) => {
                    assert!((u.utility(t) - level).abs() < 1e-9, "level {level} at t {t}");
                }
                other => panic!("level {level}: {other:?}"),
            }
        }
        assert_eq!(u.latest_time(0.5), LatestTime::Always); // below inf=1
        assert_eq!(u.latest_time(6.0), LatestTime::Never);
        // Flat-segment boundary: level = sup is attainable until the first
        // breakpoint time.
        assert_eq!(u.latest_time(5.0), LatestTime::At(100.0));
    }

    #[test]
    fn piecewise_validation() {
        assert!(PiecewiseLinear::new(vec![]).is_err());
        assert!(PiecewiseLinear::new(vec![(10.0, 1.0), (5.0, 0.5)]).is_err()); // time order
        assert!(PiecewiseLinear::new(vec![(10.0, 1.0), (20.0, 2.0)]).is_err()); // increasing
        assert!(PiecewiseLinear::new(vec![(10.0, -1.0)]).is_err()); // negative
        assert!(PiecewiseLinear::new(vec![(f64::NAN, 1.0)]).is_err());
        assert!(PiecewiseLinear::new(vec![(10.0, 2.0), (10.0, 1.0)]).is_err()); // dup time
    }

    #[test]
    fn piecewise_single_point_is_step_like() {
        let u = PiecewiseLinear::new(vec![(50.0, 2.0)]).unwrap();
        assert_eq!(u.utility(10.0), 2.0);
        assert_eq!(u.utility(100.0), 2.0); // constant after the last point
        assert_eq!(u.inf(), 2.0);
        assert_eq!(u.latest_time(2.0), LatestTime::Always);
    }

    #[test]
    fn error_display() {
        let e = UtilityError::InvalidParameter { name: "beta", value: -1.0 };
        assert!(e.to_string().contains("beta"));
    }
}

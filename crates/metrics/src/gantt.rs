//! ASCII Gantt rendering and utilization analysis of simulator traces.
//!
//! Given the container/start/duration information of task-start events,
//! [`Gantt`] renders one row per container with a character per time
//! bucket, and [`utilization`] computes the busy fraction over time — the
//! quickest way to see whether a scheduler is idling capacity or packing
//! it.

/// One placed task attempt: container, start slot, duration, and the label
/// character to draw (e.g. a job's letter).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GanttSpan {
    /// Container (row) index.
    pub container: u32,
    /// Start slot.
    pub start: u64,
    /// Duration in slots.
    pub duration: u64,
    /// Single-character label (typically the job id mod 26 as a letter).
    pub label: char,
}

/// An ASCII Gantt chart.
#[derive(Debug, Clone, Default)]
pub struct Gantt {
    spans: Vec<GanttSpan>,
}

impl Gantt {
    /// Creates an empty chart.
    pub fn new() -> Self {
        Gantt::default()
    }

    /// Adds one span.
    pub fn span(&mut self, span: GanttSpan) -> &mut Self {
        self.spans.push(span);
        self
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the chart is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the chart with `width` character buckets; rows are
    /// containers (0..max container), `.` is idle. Overlapping spans on a
    /// container show the later span's label (the simulator never produces
    /// overlaps).
    pub fn render(&self, width: usize) -> String {
        if self.spans.is_empty() || width == 0 {
            return String::new();
        }
        let containers = self.spans.iter().map(|s| s.container).max().unwrap_or(0) as usize + 1;
        let end = self
            .spans
            .iter()
            .map(|s| s.start + s.duration)
            .max()
            .unwrap_or(1)
            .max(1);
        let scale = end as f64 / width as f64;
        let mut rows = vec![vec!['.'; width]; containers];
        for s in &self.spans {
            let from = (s.start as f64 / scale) as usize;
            let to = (((s.start + s.duration) as f64 / scale).ceil() as usize).min(width);
            for cell in rows[s.container as usize][from..to.max(from + 1).min(width)].iter_mut() {
                *cell = s.label;
            }
        }
        let mut out = String::new();
        for (c, row) in rows.iter().enumerate() {
            out.push_str(&format!("c{c:<3} |"));
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out.push_str(&format!("      0{:>width$}\n", end, width = width - 1));
        out
    }
}

/// Cluster utilization: the fraction of `capacity · makespan`
/// container·slots actually occupied by the given spans.
///
/// Returns 0 for empty input or zero capacity.
pub fn utilization(spans: &[GanttSpan], capacity: u32) -> f64 {
    if spans.is_empty() || capacity == 0 {
        return 0.0;
    }
    let busy: u64 = spans.iter().map(|s| s.duration).sum();
    let end = spans.iter().map(|s| s.start + s.duration).max().unwrap_or(1).max(1);
    busy as f64 / (capacity as u64 * end) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans() -> Vec<GanttSpan> {
        vec![
            GanttSpan { container: 0, start: 0, duration: 10, label: 'a' },
            GanttSpan { container: 1, start: 0, duration: 5, label: 'a' },
            GanttSpan { container: 1, start: 5, duration: 5, label: 'b' },
        ]
    }

    #[test]
    fn render_shape() {
        let mut g = Gantt::new();
        for s in spans() {
            g.span(s);
        }
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        let out = g.render(10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3); // 2 containers + axis
        assert!(lines[0].starts_with("c0"));
        assert_eq!(lines[0].matches('a').count(), 10);
        assert_eq!(lines[1].matches('a').count(), 5);
        assert_eq!(lines[1].matches('b').count(), 5);
    }

    #[test]
    fn render_scales_to_width() {
        let mut g = Gantt::new();
        g.span(GanttSpan { container: 0, start: 0, duration: 100, label: 'x' });
        g.span(GanttSpan { container: 0, start: 100, duration: 100, label: 'y' });
        let out = g.render(20);
        let row = out.lines().next().unwrap();
        assert_eq!(row.matches('x').count(), 10);
        assert_eq!(row.matches('y').count(), 10);
    }

    #[test]
    fn render_empty_and_degenerate() {
        assert_eq!(Gantt::new().render(10), "");
        let mut g = Gantt::new();
        g.span(GanttSpan { container: 0, start: 0, duration: 1, label: 'z' });
        assert_eq!(g.render(0), "");
        assert!(g.render(4).contains('z'));
    }

    #[test]
    fn idle_cells_are_dots() {
        let mut g = Gantt::new();
        g.span(GanttSpan { container: 0, start: 5, duration: 5, label: 'k' });
        let out = g.render(10);
        let row = out.lines().next().unwrap();
        assert!(row.contains('.'));
        assert_eq!(row.matches('k').count(), 5);
    }

    #[test]
    fn utilization_math() {
        // 20 busy container·slots over 2 containers × 10 slots = 100%.
        assert!((utilization(&spans(), 2) - 1.0).abs() < 1e-12);
        // Same spans on a 4-container cluster: 50%.
        assert!((utilization(&spans(), 4) - 0.5).abs() < 1e-12);
        assert_eq!(utilization(&[], 4), 0.0);
        assert_eq!(utilization(&spans(), 0), 0.0);
    }
}

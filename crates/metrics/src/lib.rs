//! Experiment reporting for the RUSH reproduction: fixed-width tables,
//! boxplot and ECDF series (the shapes behind the paper's Figs. 3–6), and
//! CSV export for external plotting.
//!
//! # Example
//!
//! ```
//! use rush_metrics::table::Table;
//!
//! let mut t = Table::new(["scheduler", "median latency"]);
//! t.row(["RUSH", "-12.0"]);
//! t.row(["FIFO", "85.0"]);
//! let s = t.render();
//! assert!(s.contains("RUSH"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod gantt;
pub mod histogram;
pub mod series;
pub mod table;

pub use histogram::Histogram;
pub use rush_prob::stats::{Ecdf, FiveNumber};

//! Minimal CSV writing (RFC 4180 quoting) for exporting figure data.

use std::fmt::Write as _;

/// Accumulates CSV rows in memory; call [`Csv::finish`] for the document.
#[derive(Debug, Clone, Default)]
pub struct Csv {
    buf: String,
}

impl Csv {
    /// Creates an empty document.
    pub fn new() -> Self {
        Csv::default()
    }

    /// Appends one row, quoting cells that contain commas, quotes or
    /// newlines.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut first = true;
        for cell in cells {
            if !first {
                self.buf.push(',');
            }
            first = false;
            let c = cell.as_ref();
            if c.contains([',', '"', '\n']) {
                let _ = write!(self.buf, "\"{}\"", c.replace('"', "\"\""));
            } else {
                self.buf.push_str(c);
            }
        }
        self.buf.push('\n');
        self
    }

    /// The document so far.
    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consumes the writer, returning the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rows() {
        let mut c = Csv::new();
        c.row(["a", "b"]).row(["1", "2"]);
        assert_eq!(c.finish(), "a,b\n1,2\n");
    }

    #[test]
    fn quoting() {
        let mut c = Csv::new();
        c.row(["he,llo", "say \"hi\"", "multi\nline"]);
        assert_eq!(c.as_str(), "\"he,llo\",\"say \"\"hi\"\"\",\"multi\nline\"\n");
    }

    #[test]
    fn empty_row_is_newline() {
        let mut c = Csv::new();
        c.row(Vec::<&str>::new());
        assert_eq!(c.as_str(), "\n");
    }
}

//! Fixed-width text tables for experiment output.

use std::fmt::Write as _;

/// A simple fixed-width table: column widths auto-size to content.
///
/// Numeric-looking cells are right-aligned, text left-aligned.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row. Shorter rows are padded with empty cells; longer
    /// rows are truncated to the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let numeric: Vec<bool> = (0..cols)
            .map(|i| {
                !self.rows.is_empty()
                    && self.rows.iter().all(|r| {
                        let c = &r[i];
                        c.is_empty() || c.parse::<f64>().is_ok()
                    })
            })
            .collect();
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{:<width$}", h, width = widths[i]);
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                if numeric[i] {
                    let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals, trimming `-0.0` to `0.0`.
pub fn fmt_f64(x: f64, digits: usize) -> String {
    let s = format!("{x:.digits$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_owned()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1.5"]);
        t.row(["b", "-22.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric column right-aligned: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only"]);
        t.row(["x", "y"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["h1", "h2"]);
        assert!(t.is_empty());
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn text_columns_left_aligned() {
        let mut t = Table::new(["name", "note"]);
        t.row(["a", "xx"]);
        t.row(["bbbb", "y"]);
        let s = t.render();
        // "note" column contains non-numeric text → left aligned.
        assert!(s.lines().nth(2).unwrap().contains("xx"));
    }

    #[test]
    fn fmt_f64_handles_negative_zero() {
        assert_eq!(fmt_f64(-0.0001, 2), "0.00");
        assert_eq!(fmt_f64(-1.23456, 2), "-1.23");
        assert_eq!(fmt_f64(12.3456, 3), "12.346");
    }
}

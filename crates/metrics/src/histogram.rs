//! Log2-bucketed latency histogram.
//!
//! The serving daemon records one submit→planned latency per submission;
//! a full latency distribution cannot be kept per counter. This histogram
//! trades resolution for O(1) memory: values land in power-of-two buckets
//! (`[2^k, 2^(k+1))`), quantiles interpolate linearly inside the winning
//! bucket, and two histograms merge by adding counts — so per-connection
//! (or per-worker) histograms combine into one report without locks.
//!
//! Worst-case quantile error is the bucket width, i.e. a factor of 2 —
//! adequate for p50/p99 latency reporting, where the magnitude matters and
//! the third significant digit does not.
//!
//! # Example
//!
//! ```
//! use rush_metrics::histogram::Histogram;
//!
//! let mut h = Histogram::new();
//! for us in [120, 180, 240, 300, 9_000] {
//!     h.record(us);
//! }
//! assert_eq!(h.count(), 5);
//! assert!(h.quantile(0.5) >= 128 && h.quantile(0.5) < 512);
//! assert!(h.quantile(1.0) >= 8_192);
//! ```

/// Bucket count: one per possible `u64` magnitude plus a zero bucket.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (e.g. latencies in µs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[0]` holds zeros; `counts[k]` (k ≥ 1) holds values in
    /// `[2^(k-1), 2^k)`.
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros` (so value
/// `v` lands in the bucket whose range contains it).
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lower bound (inclusive) of bucket `k`.
fn bucket_lo(k: usize) -> u64 {
    if k == 0 {
        0
    } else {
        1u64 << (k - 1)
    }
}

/// Upper bound (exclusive, saturating) of bucket `k`.
fn bucket_hi(k: usize) -> u64 {
    if k == 0 {
        1
    } else if k >= 64 {
        u64::MAX
    } else {
        1u64 << k
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { counts: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty); exact, not
    /// bucket-quantized, because the running sum is kept separately.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`, clamped), linearly interpolated
    /// inside the winning bucket and clamped to the observed `[min, max]`.
    /// Returns 0 for an empty histogram.
    ///
    /// Accuracy: within the winning bucket's width (a factor of two) of
    /// the exact order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic we want (1-based, nearest-rank).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                // Interpolate within the bucket by the rank's position,
                // staying inside the bucket's half-open range.
                let lo = bucket_lo(k) as f64;
                let hi = bucket_hi(k) as f64;
                let frac = (rank - seen) as f64 / c as f64;
                let v = (lo + (hi - lo) * frac) as u64;
                return v.min(bucket_hi(k).saturating_sub(1)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Exports the non-empty buckets as CSV with a header:
    /// `bucket_lo,bucket_hi,count`.
    pub fn to_csv(&self) -> String {
        let mut csv = crate::csv::Csv::new();
        csv.row(["bucket_lo", "bucket_hi", "count"]);
        for (k, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                csv.row([bucket_lo(k).to_string(), bucket_hi(k).to_string(), c.to_string()]);
            }
        }
        csv.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!((h.mean() - 0.0).abs() < 1e-12);
        assert_eq!(h.to_csv().lines().count(), 1); // header only
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for v in [1u64, 2, 3, 7, 8, 1023, 1024, 1 << 40] {
            let k = bucket_of(v);
            assert!(bucket_lo(k) <= v && v < bucket_hi(k) || k >= 64, "v={v} k={k}");
        }
    }

    #[test]
    fn count_min_max_mean_track_exactly() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 40);
        assert!((h.mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let mut h = Histogram::new();
        // 100 samples: 1..=100.
        for v in 1..=100u64 {
            h.record(v);
        }
        // The true p50 is 50; log2 buckets guarantee a factor-2 bound.
        let p50 = h.quantile(0.5);
        assert!((25..=100).contains(&p50), "p50={p50}");
        // p99 must land in the top bucket's range.
        let p99 = h.quantile(0.99);
        assert!((64..=100).contains(&p99), "p99={p99}");
        // Quantiles are monotone in q.
        let qs: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        // Extremes clamp to observed min/max.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn quantile_of_constant_samples_is_exactish() {
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(300);
        }
        let p50 = h.quantile(0.5);
        // One bucket: [256, 512); clamped to observed range = exactly 300.
        assert_eq!(p50, 300);
    }

    #[test]
    fn zeros_have_their_own_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5, 10, 15] {
            a.record(v);
        }
        for v in [1000, 2000] {
            b.record(v);
        }
        let mut whole = Histogram::new();
        for v in [5, 10, 15, 1000, 2000] {
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        // Merging an empty histogram changes nothing.
        a.merge(&Histogram::new());
        assert_eq!(a, whole);
        // Merging into an empty histogram copies.
        let mut empty = Histogram::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
    }

    #[test]
    fn csv_lists_nonempty_buckets() {
        let mut h = Histogram::new();
        h.record(3); // bucket [2,4)
        h.record(3);
        h.record(100); // bucket [64,128)
        let csv = h.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "bucket_lo,bucket_hi,count");
        assert_eq!(lines.len(), 3);
        assert!(lines.contains(&"2,4,2"));
        assert!(lines.contains(&"64,128,1"));
    }

    #[test]
    fn large_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(0.99), u64::MAX);
        assert!(h.mean() > 0.0);
    }
}

//! Figure-series helpers: boxplot rows and ECDF curves.

use rush_prob::stats::{Ecdf, FiveNumber};

/// A labelled boxplot entry, one per (scheduler, configuration) group —
/// the unit of the paper's Fig. 4.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxplotRow {
    /// Group label (e.g. `"RUSH @ 1.5x"`).
    pub label: String,
    /// The five-number summary with outliers.
    pub stats: FiveNumber,
    /// Number of samples behind the summary.
    pub n: usize,
}

impl BoxplotRow {
    /// Builds a row from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(label: impl Into<String>, samples: &[f64]) -> Self {
        BoxplotRow { label: label.into(), stats: FiveNumber::from_samples(samples), n: samples.len() }
    }
}

/// An ECDF curve sampled at fixed points — the unit of the paper's Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfCurve {
    /// Curve label (scheduler name).
    pub label: String,
    /// `(x, F(x))` pairs in ascending `x`.
    pub points: Vec<(f64, f64)>,
}

impl CdfCurve {
    /// Samples the ECDF of `values` at `grid`.
    pub fn from_samples(label: impl Into<String>, values: &[f64], grid: &[f64]) -> Self {
        let ecdf = Ecdf::from_samples(values);
        CdfCurve { label: label.into(), points: ecdf.series(grid) }
    }

    /// `F(x)` by lookup on the sampled grid (exact match or nearest below).
    pub fn at(&self, x: f64) -> f64 {
        let mut best = 0.0;
        for &(gx, gy) in &self.points {
            if gx <= x {
                best = gy;
            } else {
                break;
            }
        }
        best
    }
}

/// Builds an evenly spaced grid of `n ≥ 2` points covering `[lo, hi]`.
///
/// # Panics
///
/// Panics if `n < 2` or `hi ≤ lo`.
pub fn grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "grid needs at least two points");
    assert!(hi > lo, "grid range must be non-empty");
    (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_row_from_samples() {
        let r = BoxplotRow::from_samples("x", &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(r.n, 5);
        assert_eq!(r.stats.median, 3.0);
        assert_eq!(r.label, "x");
    }

    #[test]
    #[should_panic]
    fn boxplot_row_empty_panics() {
        BoxplotRow::from_samples("x", &[]);
    }

    #[test]
    fn cdf_curve_sampling_and_lookup() {
        let c = CdfCurve::from_samples("s", &[1.0, 2.0, 3.0, 4.0], &grid(0.0, 5.0, 6));
        assert_eq!(c.at(0.0), 0.0);
        assert_eq!(c.at(2.0), 0.5);
        assert_eq!(c.at(5.0), 1.0);
        assert_eq!(c.at(4.5), 1.0);
    }

    #[test]
    fn grid_is_even_and_inclusive() {
        let g = grid(0.0, 10.0, 11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[10], 10.0);
        assert!((g[5] - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn grid_rejects_tiny_n() {
        grid(0.0, 1.0, 1);
    }
}

//! Ablation A4 — task-failure extension (the paper's future work).
//!
//! Injects Bernoulli task failures and compares RUSH with failure-aware
//! demand inflation (`η/(1−p̂)`) against RUSH without it and against FIFO,
//! at increasing failure rates.

use rush_bench::{flag, parse_args, paper_experiment, CALIBRATED_INTERARRIVAL};
use rush_core::RushConfig;
use rush_planner::RushScheduler;
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::stats::FiveNumber;
use rush_sched::Fifo;
use rush_sim::perturb::FailureModel;
use rush_sim::Scheduler;
use rush_workload::{generate, WorkloadConfig};

fn main() {
    let args = parse_args();
    let jobs: usize = flag(&args, "jobs", 60);
    let seed: u64 = flag(&args, "seed", 1);
    let ratio: f64 = flag(&args, "ratio", 1.5);

    println!("Ablation A4: task failures (budget {ratio}x, {jobs} jobs)\n");
    let mut t = Table::new([
        "p_fail", "scheduler", "mean_util", "zero_util", "median_lat", "met", "failures",
    ]);
    for p_fail in [0.0f64, 0.05, 0.15, 0.3] {
        let exp = paper_experiment(seed);
        let cfg = WorkloadConfig {
            jobs,
            budget_ratio: ratio,
            mean_interarrival: CALIBRATED_INTERARRIVAL,
            seed,
            ..Default::default()
        };
        let workload = generate(&cfg, &exp).expect("workload");
        // Failures are injected at simulation level, identically for all
        // schedulers (same sim seed).
        let exp = rush_workload::Experiment::new(exp.cluster().clone())
            .with_interference(exp.interference().clone())
            .with_sim_seed(seed);
        let run = |sched: &mut dyn Scheduler| {
            let cfg = rush_sim::engine::SimConfig::new(exp.cluster().clone())
                .with_interference(exp.interference().clone())
                .with_failures(FailureModel::Bernoulli { p: p_fail })
                .with_seed(seed)
                .with_max_slots(10_000_000);
            rush_sim::engine::Simulation::new(cfg, workload.clone())
                .expect("sim")
                .run(sched)
                .expect("run")
        };
        let mut aware = RushScheduler::new(RushConfig::default());
        let mut blind =
            RushScheduler::new(RushConfig { failure_aware: false, ..Default::default() });
        let mut fifo = Fifo::new();
        for (name, result) in [
            ("RUSH", run(&mut aware)),
            ("RUSH-noFA", run(&mut blind)),
            ("FIFO", run(&mut fifo)),
        ] {
            let utils = result.utility_vector();
            let lat: Vec<f64> =
                result.time_aware_outcomes().filter_map(|o| o.latency()).collect();
            let s = FiveNumber::from_samples(&lat);
            let met = lat.iter().filter(|&&l| l <= 0.0).count();
            t.row([
                fmt_f64(p_fail, 2),
                name.to_owned(),
                fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
                fmt_f64(result.zero_utility_fraction(1e-3), 3),
                fmt_f64(s.median, 1),
                format!("{}/{}", met, lat.len()),
                result.failed_attempts.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Expectation: failure-aware inflation keeps RUSH's provision honest as");
    println!("rework grows; without it the planner persistently under-budgets.");
}

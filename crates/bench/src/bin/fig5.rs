//! Figure 5 — resource consumption and execution time of the scheduler.
//!
//! Reproduces: the cost of one full CA pass (estimate → WCDE → onion peel →
//! mapping) as the number of simultaneous jobs grows from 20 to 1000, plus
//! an estimate of the scheduler's working-set size.
//!
//! Paper's finding: runtime grows roughly linearly (0.32 s → 7.34 s on
//! their VM) and memory stays under 130 MB — RUSH is lightweight. Absolute
//! numbers differ on other hardware; the linear *shape* is the claim.

use rush_bench::{flag, parse_args};
use rush_core::plan::{compute_plan, PlanInput};
use rush_core::RushConfig;
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::rng::{derive_seed, seeded_rng};
use rush_utility::TimeUtility;
use rand::Rng;
use std::time::Instant;

/// Synthetic WordCount-like jobs with random configurations (paper Sec.
/// V-C).
fn synth_jobs(n: usize, seed: u64) -> Vec<PlanInput> {
    let mut rng = seeded_rng(derive_seed(seed, n as u64));
    (0..n)
        .map(|_| {
            let observed = rng.gen_range(5..40);
            let remaining = rng.gen_range(5..80);
            let mean: f64 = rng.gen_range(30.0..90.0);
            let samples: Vec<u64> = (0..observed)
                .map(|_| (mean + rng.gen_range(-15.0..15.0)).max(1.0) as u64)
                .collect();
            let budget = rng.gen_range(200.0..4000.0);
            PlanInput {
                samples,
                remaining_tasks: remaining,
                running: 0,
                failed_attempts: 0,
                age: rng.gen_range(0.0..200.0),
                utility: TimeUtility::sigmoid(budget, rng.gen_range(1.0..5.0), 10.0 / budget)
                    .expect("valid utility"),
            }
        })
        .collect()
}

/// Rough working-set estimate of one CA pass: the dominant allocations are
/// the per-job quantized PMFs and the mapping queues.
fn approx_bytes(cfg: &RushConfig, n_jobs: usize, capacity: u32) -> usize {
    let pmf = cfg.max_bins * std::mem::size_of::<f64>();
    let per_job = pmf * 2 // reference + REM reweighting scratch
        + 64 * std::mem::size_of::<u64>() // samples
        + 256; // entries, targets, segments
    n_jobs * per_job + capacity as usize * std::mem::size_of::<u64>()
}

fn main() {
    let args = parse_args();
    let reps: usize = flag(&args, "reps", 5);
    let seed: u64 = flag(&args, "seed", 1);
    let capacity: u32 = flag(&args, "capacity", 48);
    let cfg = RushConfig::default();

    println!("Figure 5: CA-pass cost vs number of simultaneous jobs");
    println!("capacity {capacity} containers, {reps} repetitions per point\n");

    let mut t = Table::new(["jobs", "mean_ms", "per_job_us", "approx_MB"]);
    let mut prev: Option<(usize, f64)> = None;
    let mut ratios = Vec::new();
    for &n in &[20usize, 50, 100, 200, 500, 1000] {
        let jobs = synth_jobs(n, seed);
        // Warm-up pass.
        let _ = compute_plan(&cfg, capacity, &jobs).expect("plan");
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = compute_plan(&cfg, capacity, &jobs).expect("plan");
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        if let Some((pn, pms)) = prev {
            // Growth rate per job ratio: ideally ~ (n/pn) for linear cost.
            ratios.push((ms / pms) / (n as f64 / pn as f64));
        }
        prev = Some((n, ms));
        t.row([
            n.to_string(),
            fmt_f64(ms, 2),
            fmt_f64(ms * 1e3 / n as f64, 1),
            fmt_f64(approx_bytes(&cfg, n, capacity) as f64 / 1e6, 1),
        ]);
    }
    println!("{}", t.render());
    let avg_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("normalized growth rate (1.0 = perfectly linear): {}", fmt_f64(avg_ratio, 2));
    println!("Paper shape: near-linear runtime growth; memory well under 130 MB.");
}

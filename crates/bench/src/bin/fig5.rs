//! Figure 5 — resource consumption and execution time of the scheduler.
//!
//! Reproduces: the cost of one full CA pass (estimate → WCDE → onion peel →
//! mapping) as the number of simultaneous jobs grows from 20 to 1000, plus
//! an estimate of the scheduler's working-set size.
//!
//! Paper's finding: runtime grows roughly linearly (0.32 s → 7.34 s on
//! their VM) and memory stays under 130 MB — RUSH is lightweight. Absolute
//! numbers differ on other hardware; the linear *shape* is the claim.
//!
//! Beyond the paper, this binary records the effect of the incremental CA
//! pipeline. Three per-event costs are measured:
//!
//! * **baseline** — the pre-optimization pipeline: per-job estimate + WCDE
//!   with no memoization and the straightforward [`rush_core::onion::naive`]
//!   peel (per-probe allocation + sort, full-range bisection per layer).
//! * **uncached** — `compute_plan` from scratch: optimized peel, no
//!   memoization.
//! * **cached** — steady state: each scheduling event mutates one job and
//!   re-plans through a warm [`rush_core::plan::PlanState`]: the estimate +
//!   WCDE stage re-solves only the mutated job, the onion peel *replays*
//!   its recorded probe trajectory (delta peeling), and the mapping reuses
//!   the unchanged prefix of its pack order.
//!
//! Results are written to `BENCH_fig5_scheduler_cost.json` (override with
//! `--out PATH`) so the speedup is a versioned artifact, not terminal
//! scroll-back. Each cached point carries a per-phase breakdown
//! (estimate+WCDE / peel / mapping / assembly ns per event) so the
//! peel-dominance claim stays measured; `--profile` prints it as a table.
//!
//! Beyond the single-kernel series, a **sharded sweep** drives the
//! [`rush_planner::ShardedPlanner`] at 10k (and, in full mode, 100k)
//! resident jobs across shard counts: each steady-state event (one task
//! sample) dirties exactly one label-hash shard, so only that shard's
//! `n/N`-job registry replans — the event cost drops near-linearly with
//! the shard count. Build with `--features parallel` to also fan
//! multi-shard replans out across scoped threads.
//!
//! Flags: `--reps N`, `--seed S`, `--capacity C`, `--out PATH`, `--quick`
//! (CI mode: fewer points and repetitions), `--profile` (print the phase
//! breakdown).

use rand::Rng;
use rush_bench::{flag, parse_args};
use rush_core::mapping::{map_continuous, MapJob};
use rush_core::onion::{naive, OnionJob, Shifted};
use rush_core::plan::{compute_plan, compute_plan_incremental, PlanInput, PlanState};
use rush_core::wcde::worst_case_quantile;
use rush_core::RushConfig;
use rush_estimator::{DistributionEstimator, GaussianEstimator};
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::rng::{derive_seed, seeded_rng};
use rush_utility::TimeUtility;
use std::time::Instant;

/// Synthetic WordCount-like jobs with random configurations (paper Sec.
/// V-C).
fn synth_jobs(n: usize, seed: u64) -> Vec<PlanInput<'static>> {
    let mut rng = seeded_rng(derive_seed(seed, n as u64));
    (0..n)
        .map(|_| {
            let observed = rng.gen_range(5..40);
            let remaining = rng.gen_range(5..80);
            let mean: f64 = rng.gen_range(30.0..90.0);
            let samples: Vec<u64> = (0..observed)
                .map(|_| (mean + rng.gen_range(-15.0f64..15.0)).max(1.0) as u64)
                .collect();
            let budget = rng.gen_range(200.0..4000.0);
            PlanInput {
                samples: samples.into(),
                remaining_tasks: remaining,
                running: 0,
                failed_attempts: 0,
                age: rng.gen_range(0.0..200.0),
                utility: TimeUtility::sigmoid(budget, rng.gen_range(1.0..5.0), 10.0 / budget)
                    .expect("valid utility"),
            }
        })
        .collect()
}

/// Rough working-set estimate of one CA pass: the dominant allocations are
/// the per-job quantized PMFs and the mapping queues.
fn approx_bytes(cfg: &RushConfig, n_jobs: usize, capacity: u32) -> usize {
    let pmf = cfg.max_bins * std::mem::size_of::<f64>();
    let per_job = pmf * 2 // reference + REM reweighting scratch
        + 64 * std::mem::size_of::<u64>() // samples
        + 256; // entries, targets, segments
    n_jobs * per_job + capacity as usize * std::mem::size_of::<u64>()
}

/// The pre-optimization CA pass: per-job estimate + WCDE recomputed from
/// scratch, reference (`naive`) onion peel, continuous mapping. This is
/// what every scheduling event cost before the incremental pipeline.
fn baseline_pass(cfg: &RushConfig, capacity: u32, jobs: &[PlanInput<'_>]) {
    let de = GaussianEstimator::new(cfg.max_bins).with_prior(cfg.cold_prior);
    let n = jobs.len();
    let mut etas = Vec::with_capacity(n);
    let mut task_lens = Vec::with_capacity(n);
    for j in jobs {
        let est = de.estimate(&j.samples, j.remaining_tasks).expect("estimate");
        let eta = worst_case_quantile(&est.pmf, cfg.theta, cfg.delta).expect("wcde").eta;
        etas.push(eta);
        task_lens.push(est.mean_task_runtime.ceil().max(1.0) as u64);
    }
    let shifted: Vec<Shifted<'_>> = jobs.iter().map(|j| Shifted::new(&j.utility, j.age)).collect();
    let onion_jobs: Vec<OnionJob<'_>> =
        shifted.iter().zip(&etas).map(|(u, &eta)| OnionJob { demand: eta, utility: u }).collect();
    let targets = naive::peel(&onion_jobs, capacity, cfg.tolerance, cfg.horizon).expect("peel");
    let mut target_of = vec![0.0f64; n];
    let mut lax_of = vec![false; n];
    for t in &targets {
        target_of[t.job] = t.deadline;
        lax_of[t.job] = t.lax;
    }
    let map_jobs: Vec<MapJob> = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let nt = job.remaining_tasks as u64;
            let r = if nt > 0 { etas[i].div_ceil(nt).max(task_lens[i]) } else { task_lens[i] };
            MapJob { tasks: nt, task_len: r, target: target_of[i].max(1.0) as u64, lax: lax_of[i] }
        })
        .collect();
    let _ = map_continuous(&map_jobs, capacity).expect("map");
}

/// One scheduling event: a task of job `k` completes. Exactly one job's
/// estimator-visible state changes — the access pattern the plan cache is
/// built for.
fn apply_event(jobs: &mut [PlanInput<'static>], k: usize, sample: u64) {
    let job = &mut jobs[k];
    job.samples.to_mut().push(sample);
    if job.samples.len() > 120 {
        job.samples.to_mut().remove(0);
    }
    if job.remaining_tasks > 1 {
        job.remaining_tasks -= 1;
    }
}

struct Point {
    jobs: usize,
    baseline_ns_per_event: f64,
    uncached_ns_per_event: f64,
    cached_ns_per_event: f64,
    /// Per-phase ns/event of the cached (steady-state) series:
    /// estimate+WCDE, peel, mapping, assembly.
    phase_ns: [f64; 4],
    approx_mb: f64,
}

struct ShardPoint {
    jobs: usize,
    shards: usize,
    ns_per_event: f64,
}

/// The sharded steady-state sweep: a [`ShardedPlanner`] holding `n`
/// resident jobs, driven by single-sample events at a fixed slot. Every
/// event dirties one shard and `plan_at` replans only that shard, so
/// ns/event falls with the shard count; the 1-shard row is the registry
/// baseline the speedup is measured against.
fn sharded_series(quick: bool, capacity: u32, seed: u64) -> Vec<ShardPoint> {
    use rush_planner::{JobId, JobSpec, ShardedPlanner};

    let combos: &[(usize, usize)] = if quick {
        &[(10_000, 1), (10_000, 2), (10_000, 8)]
    } else {
        &[(10_000, 1), (10_000, 2), (10_000, 4), (10_000, 8), (100_000, 8)]
    };
    let events = if quick { 64 } else { 256 };
    let cfg = RushConfig::default();
    let mut points = Vec::with_capacity(combos.len());
    for &(n, shards) in combos {
        let total = capacity.max(shards as u32);
        let mut planner = ShardedPlanner::new(cfg, total, shards)
            .expect("planner")
            .with_retirement(false);
        let mut rng = seeded_rng(derive_seed(seed, (n as u64) << 8 | shards as u64));
        for i in 0..n {
            let mean: f64 = rng.gen_range(30.0..90.0);
            let budget: f64 = rng.gen_range(2_000.0..40_000.0);
            planner.admit(JobSpec {
                // ~500 templates: labels spread across shards by hash,
                // many jobs per label (shared-cloud tenancy shape).
                label: format!("tpl-{}", i % 509),
                utility: TimeUtility::sigmoid(budget, 3.0, 10.0 / budget)
                    .expect("valid utility"),
                tasks: 1_000,
                arrived_slot: 0,
                runtime_hint: Some(mean),
                parked: false,
            });
        }
        planner.plan_at(0).expect("initial plan");
        // Warm-up: a few events so every shard's caches are hot.
        for e in 0..8u64 {
            let _ = planner.ingest_sample(JobId(e * 7919 % n as u64), 40 + e % 50);
            planner.plan_at(0).expect("warm-up replan");
        }
        let t = Instant::now();
        for e in 0..events as u64 {
            // 7919 is prime: the sampled job (and thus the dirtied shard)
            // rotates through the registry.
            let _ = planner.ingest_sample(JobId(e * 7919 % n as u64), 40 + (e * 13) % 50);
            planner.plan_at(0).expect("replan");
        }
        let ns_per_event = t.elapsed().as_nanos() as f64 / events as f64;
        points.push(ShardPoint { jobs: n, shards, ns_per_event });
    }
    points
}

fn main() {
    let args = parse_args();
    let quick = args.contains_key("quick");
    let profile = args.contains_key("profile");
    let reps: usize = flag(&args, "reps", if quick { 2 } else { 5 });
    let seed: u64 = flag(&args, "seed", 1);
    let capacity: u32 = flag(&args, "capacity", 48);
    let out_path: String = flag(&args, "out", "BENCH_fig5_scheduler_cost.json".to_owned());
    let cfg = RushConfig::default();

    println!("Figure 5: CA-pass cost vs number of simultaneous jobs");
    println!("capacity {capacity} containers, {reps} repetitions per point\n");

    let ns: &[usize] = if quick { &[20, 100, 200, 1000] } else { &[20, 50, 100, 200, 500, 1000] };
    let mut t = Table::new(["jobs", "baseline_ms", "full_ms", "event_ms", "speedup", "approx_MB"]);
    let mut points: Vec<Point> = Vec::new();
    let mut prev: Option<(usize, f64)> = None;
    let mut ratios = Vec::new();
    for &n in ns {
        // Baseline: the pre-optimization per-event cost — full recompute
        // with the reference peel (the paper's Fig. 5 measurement).
        let jobs = synth_jobs(n, seed);
        baseline_pass(&cfg, capacity, &jobs); // warm-up
        let t0 = Instant::now();
        for _ in 0..reps {
            baseline_pass(&cfg, capacity, &jobs);
        }
        let baseline_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;

        // Uncached: `compute_plan` from scratch with the optimized peel.
        let _ = compute_plan(&cfg, capacity, &jobs).expect("plan"); // warm-up
        let t1 = Instant::now();
        for _ in 0..reps {
            let _ = compute_plan(&cfg, capacity, &jobs).expect("plan");
        }
        let uncached_ms = t1.elapsed().as_secs_f64() * 1e3 / reps as f64;

        // Cached: steady-state event cost. Each event mutates one job, so
        // the memoized estimate + WCDE stage re-solves that job, the peel
        // replays its recorded trajectory, and the mapping repacks only
        // from the first changed pack-order position. The identical event
        // series runs three times from a fresh state and the fastest round
        // is kept — min-of-k suppresses host scheduling noise, which at
        // sub-millisecond budgets otherwise dominates the estimate.
        let events = (reps * 40).max(120);
        let mut cached_ms = f64::INFINITY;
        let mut phase_ns = [0f64; 4];
        for _ in 0..3 {
            let mut jobs = synth_jobs(n, seed);
            let mut state = PlanState::new();
            let _ = compute_plan_incremental(&cfg, capacity, &jobs, &mut state).expect("plan");
            let mut round_phase = [0u64; 4];
            let t2 = Instant::now();
            for e in 0..events {
                apply_event(&mut jobs, e % n, 40 + (e as u64 * 13) % 50);
                let _ =
                    compute_plan_incremental(&cfg, capacity, &jobs, &mut state).expect("plan");
                let st = state.last_stats();
                round_phase[0] += st.solve_ns;
                round_phase[1] += st.peel_ns;
                round_phase[2] += st.map_ns;
                round_phase[3] += st.assemble_ns;
            }
            let round_ms = t2.elapsed().as_secs_f64() * 1e3 / events as f64;
            if round_ms < cached_ms {
                cached_ms = round_ms;
                phase_ns = round_phase.map(|v| v as f64 / events as f64);
            }
        }

        if let Some((pn, pms)) = prev {
            // Growth rate per job ratio: ideally ~ (n/pn) for linear cost.
            ratios.push((baseline_ms / pms) / (n as f64 / pn as f64));
        }
        prev = Some((n, baseline_ms));
        let mb = approx_bytes(&cfg, n, capacity) as f64 / 1e6;
        t.row([
            n.to_string(),
            fmt_f64(baseline_ms, 2),
            fmt_f64(uncached_ms, 2),
            fmt_f64(cached_ms, 2),
            fmt_f64(baseline_ms / cached_ms, 2),
            fmt_f64(mb, 1),
        ]);
        points.push(Point {
            jobs: n,
            baseline_ns_per_event: baseline_ms * 1e6,
            uncached_ns_per_event: uncached_ms * 1e6,
            cached_ns_per_event: cached_ms * 1e6,
            phase_ns,
            approx_mb: mb,
        });
    }
    println!("{}", t.render());
    if profile {
        let mut pt = Table::new(["jobs", "solve_us", "peel_us", "map_us", "assemble_us"]);
        for p in &points {
            pt.row([
                p.jobs.to_string(),
                fmt_f64(p.phase_ns[0] / 1e3, 1),
                fmt_f64(p.phase_ns[1] / 1e3, 1),
                fmt_f64(p.phase_ns[2] / 1e3, 1),
                fmt_f64(p.phase_ns[3] / 1e3, 1),
            ]);
        }
        println!("\ncached-series phase breakdown (per event):\n{}", pt.render());
    }
    let avg_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    println!("normalized growth rate (1.0 = perfectly linear): {}", fmt_f64(avg_ratio, 2));
    println!("Paper shape: near-linear runtime growth; memory well under 130 MB.");

    println!("\nSharded sweep: steady-state ns/event at 10k+ resident jobs");
    let sharded = sharded_series(quick, capacity, seed);
    let mut st = Table::new(["jobs", "shards", "event_us", "speedup_vs_1_shard"]);
    for sp in &sharded {
        let base = sharded
            .iter()
            .find(|b| b.jobs == sp.jobs && b.shards == 1)
            .map_or(f64::NAN, |b| b.ns_per_event);
        let speedup = if base.is_nan() {
            "-".to_owned()
        } else {
            fmt_f64(base / sp.ns_per_event, 2)
        };
        st.row([
            sp.jobs.to_string(),
            sp.shards.to_string(),
            fmt_f64(sp.ns_per_event / 1e3, 1),
            speedup,
        ]);
    }
    println!("{}", st.render());

    let json = render_json(&points, &sharded, capacity, reps, seed, quick);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("\nfailed to write {out_path}: {e}"),
    }
}

/// Hand-rolled JSON: the workspace builds offline, without serde.
fn render_json(
    points: &[Point],
    sharded: &[ShardPoint],
    capacity: u32,
    reps: usize,
    seed: u64,
    quick: bool,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"benchmark\": \"fig5_scheduler_cost\",");
    let _ = writeln!(s, "  \"unit\": \"ns_per_event\",");
    let _ = writeln!(s, "  \"capacity\": {capacity},");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"jobs\": {}, \"baseline_ns_per_event\": {:.0}, \"uncached_ns_per_event\": {:.0}, \"cached_ns_per_event\": {:.0}, \"speedup\": {:.2}, \"approx_mb\": {:.1}, \"profile_ns\": {{\"solve\": {:.0}, \"peel\": {:.0}, \"map\": {:.0}, \"assemble\": {:.0}}}}}{}",
            p.jobs,
            p.baseline_ns_per_event,
            p.uncached_ns_per_event,
            p.cached_ns_per_event,
            p.baseline_ns_per_event / p.cached_ns_per_event,
            p.approx_mb,
            p.phase_ns[0],
            p.phase_ns[1],
            p.phase_ns[2],
            p.phase_ns[3],
            comma
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"sharded_points\": [");
    for (i, sp) in sharded.iter().enumerate() {
        let comma = if i + 1 == sharded.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"jobs\": {}, \"shards\": {}, \"ns_per_event\": {:.0}}}{}",
            sp.jobs, sp.shards, sp.ns_per_event, comma
        );
    }
    let _ = writeln!(s, "  ],");
    let last = points.last().expect("at least one point");
    let _ = writeln!(
        s,
        "  \"speedup_at_{}_jobs\": {:.2}",
        last.jobs,
        last.baseline_ns_per_event / last.cached_ns_per_event
    );
    let _ = writeln!(s, "}}");
    s
}

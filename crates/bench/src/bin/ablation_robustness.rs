//! Ablation A1 — what does the robustness margin buy?
//!
//! Sweeps the entropy threshold δ (0 = trust the reference distribution)
//! on the tight-budget (1×) workload and reports utility and
//! budget-compliance of the time-aware jobs. The paper's thesis: the KL
//! margin protects scheduling decisions against estimation error,
//! especially early in each job's life.

use rush_bench::{flag, parse_args, run_comparison, time_aware_latencies};
use rush_core::RushConfig;
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::stats::FiveNumber;

fn main() {
    let args = parse_args();
    let jobs: usize = flag(&args, "jobs", 60);
    let seed: u64 = flag(&args, "seed", 1);
    let ratio: f64 = flag(&args, "ratio", 1.0);

    println!("Ablation A1: entropy threshold delta sweep (budget ratio {ratio}x)\n");
    let mut t = Table::new(["delta", "mean_util", "zero_util", "median_lat", "q3_lat", "met"]);
    for delta in [0.0f64, 0.35, 0.7, 1.4] {
        let cfg = RushConfig::default().with_delta(delta);
        let results = run_comparison(jobs, ratio, seed, cfg);
        let (_, rush) = results.iter().find(|(n, _)| n == "RUSH").expect("RUSH present");
        let utils = rush.utility_vector();
        let lat = time_aware_latencies(rush);
        let s = FiveNumber::from_samples(&lat);
        let met = lat.iter().filter(|&&l| l <= 0.0).count();
        t.row([
            fmt_f64(delta, 2),
            fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
            fmt_f64(rush.zero_utility_fraction(1e-3), 3),
            fmt_f64(s.median, 1),
            fmt_f64(s.q3, 1),
            format!("{}/{}", met, lat.len()),
        ]);
    }
    println!("{}", t.render());
    println!("Reading the result: at saturation-level contention, end-to-end latency");
    println!("is queueing-dominated and the delta margin changes little — the");
    println!("robustness payoff lives in the per-job coverage guarantee (Fig. 3 /");
    println!("ablation A2a), i.e. not promising budgets that the demand's tail will");
    println!("break, rather than in aggregate throughput.");
}

//! Ablation A6 — bursty arrivals.
//!
//! The paper evaluates Poisson arrivals only; real clusters see bursts.
//! This experiment replays the same job population with on/off burst
//! arrivals (same long-run rate) and asks whether RUSH's reservation-based
//! planning degrades more or less gracefully than the baselines.

use rush_bench::{flag, paper_experiment, parse_args, time_aware_latencies, CALIBRATED_INTERARRIVAL};
use rush_core::RushConfig;
use rush_planner::RushScheduler;
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::stats::FiveNumber;
use rush_sched::{Edf, Fifo, Rrh};
use rush_sim::Scheduler;
use rush_workload::{generate, ArrivalProcess, WorkloadConfig};

fn main() {
    let args = parse_args();
    let jobs: usize = flag(&args, "jobs", 60);
    let seed: u64 = flag(&args, "seed", 1);
    let ratio: f64 = flag(&args, "ratio", 1.5);

    println!("Ablation A6: Poisson vs bursty arrivals (budget {ratio}x, {jobs} jobs)\n");
    let mut t =
        Table::new(["arrivals", "scheduler", "mean_util", "zero_util", "median_lat", "q3_lat", "met"]);
    for (name, process) in [
        ("poisson", ArrivalProcess::Poisson),
        ("burst-5", ArrivalProcess::Bursty { burst: 5 }),
        ("burst-10", ArrivalProcess::Bursty { burst: 10 }),
    ] {
        let exp = paper_experiment(seed);
        let cfg = WorkloadConfig {
            jobs,
            budget_ratio: ratio,
            mean_interarrival: CALIBRATED_INTERARRIVAL,
            arrivals: process,
            seed,
            ..Default::default()
        };
        let workload = generate(&cfg, &exp).expect("workload");
        let mut rush = RushScheduler::new(RushConfig::default());
        let mut fifo = Fifo::new();
        let mut edf = Edf::new();
        let mut rrh = Rrh::new();
        let mut set: [(&str, &mut dyn Scheduler); 4] = [
            ("RUSH", &mut rush),
            ("FIFO", &mut fifo),
            ("EDF", &mut edf),
            ("RRH", &mut rrh),
        ];
        for (sched, result) in exp.compare(&workload, &mut set).expect("compare") {
            let utils = result.utility_vector();
            let lat = time_aware_latencies(&result);
            let s = FiveNumber::from_samples(&lat);
            let met = lat.iter().filter(|&&l| l <= 0.0).count();
            t.row([
                name.to_owned(),
                sched,
                fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
                fmt_f64(result.zero_utility_fraction(1e-3), 3),
                fmt_f64(s.median, 1),
                fmt_f64(s.q3, 1),
                format!("{}/{}", met, lat.len()),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Reading the result: mild bursts are handled fine (RUSH's planning can");
    println!("even exploit the idle gaps between bursts), but under heavy bursts");
    println!("RUSH falls behind greedy triage (RRH): a big burst delivers many cold");
    println!("jobs at once, so an entire wave is planned on prior-based demand");
    println!("estimates and some jobs are wrongly deferred as hopeless. A real");
    println!("limitation of estimate-driven reservation under strongly correlated");
    println!("arrivals, outside the paper's Poisson evaluation.");
}

//! Internal tuning sweep: insensitive-reserve fraction vs outcomes.
use rush_bench::{flag, parse_args, run_comparison, time_aware_latencies};
use rush_core::RushConfig;
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::stats::FiveNumber;

fn main() {
    let args = parse_args();
    let jobs: usize = flag(&args, "jobs", 40);
    let seed: u64 = flag(&args, "seed", 1);
    let ratio: f64 = flag(&args, "ratio", 1.5);
    let mut t = Table::new(["reserve", "mean_util", "zero", "median_lat", "q3_lat", "met", "makespan"]);
    for reserve in [0.5f64, 0.75, 0.9, 0.95, 1.0] {
        let cfg = RushConfig { insensitive_reserve: reserve, ..Default::default() };
        let results = run_comparison(jobs, ratio, seed, cfg);
        let (_, rush) = results.iter().find(|(n, _)| n == "RUSH").unwrap();
        let utils = rush.utility_vector();
        let lat = time_aware_latencies(rush);
        let s = FiveNumber::from_samples(&lat);
        let met = lat.iter().filter(|&&l| l <= 0.0).count();
        t.row([
            fmt_f64(reserve, 2),
            fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
            fmt_f64(rush.zero_utility_fraction(1e-3), 2),
            fmt_f64(s.median, 1),
            fmt_f64(s.q3, 1),
            format!("{}/{}", met, lat.len()),
            rush.makespan.to_string(),
        ]);
    }
    println!("ratio {ratio}x, {jobs} jobs");
    println!("{}", t.render());
}

//! Figure 3 — robustness of the distribution estimation.
//!
//! Reproduces: probability that the provisioned demand `η` covers the true
//! random demand `v`, as a function of the number of observed task-runtime
//! samples and the entropy threshold `δ`, for a 100-map + 1-reduce job with
//! task runtimes ~ N(60 s, 20 s), θ = 0.9, 100 repetitions.
//!
//! Paper's finding: with only 25 samples no δ reaches the θ = 0.9 target;
//! with ≥ 35 samples, δ ≥ 0.7 does.

use rush_bench::{fig3_coverage, flag, parse_args};
use rush_metrics::table::{fmt_f64, Table};

fn main() {
    let args = parse_args();
    let total_tasks: usize = flag(&args, "tasks", 101);
    let theta: f64 = flag(&args, "theta", 0.9);
    let reps: usize = flag(&args, "reps", 100);
    let seed: u64 = flag(&args, "seed", 1);

    let sample_counts = [15usize, 25, 35, 45, 55];
    let deltas = [0.0f64, 0.1, 0.35, 0.7, 1.05, 1.4];

    println!("Figure 3: P(eta >= v) vs samples and entropy threshold delta");
    println!("job: {total_tasks} tasks ~ N(60, 20); theta = {theta}; {reps} repetitions\n");

    let mut headers = vec!["delta".to_owned()];
    headers.extend(sample_counts.iter().map(|n| format!("{n} samples")));
    let mut t = Table::new(headers);
    for &delta in &deltas {
        let mut row = vec![fmt_f64(delta, 2)];
        for &n in &sample_counts {
            let cov = fig3_coverage(n, total_tasks, delta, theta, reps, seed);
            row.push(fmt_f64(cov, 3));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("target: theta = {theta}. Paper shape: row delta>=0.7 crosses {theta}");
    println!("from 35 samples on; the 25-sample column stays below it.");
}

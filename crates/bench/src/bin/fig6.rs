//! Figure 6 — CDFs of achieved job utilities under budget pressure.
//!
//! Reproduces: the empirical CDF of all 100 jobs' achieved utilities for
//! budget ratios 2×, 1.5× and 1×, under RUSH, FIFO, EDF and RRH.
//!
//! Paper's finding: RUSH's CDF sits to the right of every baseline (more
//! jobs at higher utility), most visibly at ratio 1× where the baselines
//! leave > 50 % of jobs at zero utility.
//!
//! Flags: `--jobs N`, `--seed S`, `--interarrival T`, `--quick` (CI mode:
//! a small fleet and the tightest budget ratio only).

use rush_bench::{flag, parse_args, run_comparison_at, CALIBRATED_INTERARRIVAL};
use rush_core::RushConfig;
use rush_metrics::series::{grid, CdfCurve};
use rush_metrics::table::{fmt_f64, Table};

fn main() {
    let args = parse_args();
    let quick = args.contains_key("quick");
    let jobs: usize = flag(&args, "jobs", if quick { 25 } else { 100 });
    let seed: u64 = flag(&args, "seed", 1);
    let interarrival: f64 = flag(&args, "interarrival", CALIBRATED_INTERARRIVAL);
    let ratios: &[f64] = if quick { &[1.0] } else { &[2.0, 1.5, 1.0] };

    println!("Figure 6: CDF of achieved job utilities (all {jobs} jobs)");
    println!("utility range 0..5 (priority W in 1..5)\n");

    let xs = grid(0.0, 5.0, 11);
    for &ratio in ratios {
        let results = run_comparison_at(jobs, ratio, seed, RushConfig::default(), interarrival);
        println!("budget = {ratio}x benchmarked runtime");
        let mut headers = vec!["scheduler".to_owned(), "zero-util".to_owned(), "mean".to_owned()];
        headers.extend(xs.iter().map(|x| format!("F({x:.1})")));
        let mut t = Table::new(headers);
        for (name, result) in &results {
            let utils = result.utility_vector();
            let curve = CdfCurve::from_samples(name.clone(), &utils, &xs);
            let mean = utils.iter().sum::<f64>() / utils.len() as f64;
            let mut row = vec![
                name.clone(),
                fmt_f64(result.zero_utility_fraction(1e-3), 2),
                fmt_f64(mean, 2),
            ];
            row.extend(curve.points.iter().map(|&(_, y)| fmt_f64(y, 2)));
            t.row(row);
        }
        println!("{}", t.render());
    }
    println!("Paper shape: RUSH's F(x) is lowest at small x (fewest low-utility");
    println!("jobs) and its zero-utility fraction stays far below the baselines'.");
}

//! Stage-level breakdown of one CA pass: estimate+WCDE vs onion peel vs
//! continuous mapping, at growing job counts. Used to decide where
//! incrementalization effort pays off (companion to `fig5`).

use rand::Rng;
use rush_bench::{flag, parse_args};
use rush_core::mapping::{map_continuous, MapJob};
use rush_core::onion::{peel, OnionJob, Shifted};
use rush_core::plan::PlanInput;
use rush_core::wcde::worst_case_quantile;
use rush_core::RushConfig;
use rush_estimator::{DistributionEstimator, GaussianEstimator};
use rush_prob::rng::{derive_seed, seeded_rng};
use rush_utility::TimeUtility;
use std::time::Instant;

fn synth_jobs(n: usize, seed: u64) -> Vec<PlanInput<'static>> {
    let mut rng = seeded_rng(derive_seed(seed, n as u64));
    (0..n)
        .map(|_| {
            let observed = rng.gen_range(5..40);
            let remaining = rng.gen_range(5..80);
            let mean: f64 = rng.gen_range(30.0..90.0);
            let samples: Vec<u64> = (0..observed)
                .map(|_| (mean + rng.gen_range(-15.0f64..15.0)).max(1.0) as u64)
                .collect();
            let budget = rng.gen_range(200.0..4000.0);
            PlanInput {
                samples: samples.into(),
                remaining_tasks: remaining,
                running: 0,
                failed_attempts: 0,
                age: rng.gen_range(0.0..200.0),
                utility: TimeUtility::sigmoid(budget, rng.gen_range(1.0..5.0), 10.0 / budget)
                    .expect("valid utility"),
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let reps: usize = flag(&args, "reps", 3);
    let capacity: u32 = flag(&args, "capacity", 48);
    let cfg = RushConfig::default();
    let de = GaussianEstimator::new(cfg.max_bins).with_prior(cfg.cold_prior);

    println!("{:>6} {:>12} {:>12} {:>12}", "jobs", "est+wcde_ms", "peel_ms", "map_ms");
    for &n in &[100usize, 500, 1000] {
        let jobs = synth_jobs(n, 1);
        let (mut t_est, mut t_peel, mut t_map) = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..reps {
            let t0 = Instant::now();
            let mut etas = Vec::with_capacity(n);
            let mut task_lens = Vec::with_capacity(n);
            for j in &jobs {
                let est = de.estimate(&j.samples, j.remaining_tasks).unwrap();
                let eta = worst_case_quantile(&est.pmf, cfg.theta, cfg.delta).unwrap().eta;
                etas.push(eta);
                task_lens.push(est.mean_task_runtime.ceil().max(1.0) as u64);
            }
            t_est += t0.elapsed().as_secs_f64();

            let t1 = Instant::now();
            let shifted: Vec<Shifted<'_>> =
                jobs.iter().map(|j| Shifted::new(&j.utility, j.age)).collect();
            let onion_jobs: Vec<OnionJob<'_>> = shifted
                .iter()
                .zip(&etas)
                .map(|(u, &eta)| OnionJob { demand: eta, utility: u })
                .collect();
            let targets = peel(&onion_jobs, capacity, cfg.tolerance, cfg.horizon).unwrap();
            t_peel += t1.elapsed().as_secs_f64();

            let t2 = Instant::now();
            let mut target_of = vec![0.0f64; n];
            let mut lax_of = vec![false; n];
            for t in &targets {
                target_of[t.job] = t.deadline;
                lax_of[t.job] = t.lax;
            }
            let map_jobs: Vec<MapJob> = jobs
                .iter()
                .enumerate()
                .map(|(i, job)| {
                    let nt = job.remaining_tasks as u64;
                    let r = if nt > 0 { etas[i].div_ceil(nt).max(task_lens[i]) } else { task_lens[i] };
                    MapJob { tasks: nt, task_len: r, target: target_of[i].max(1.0) as u64, lax: lax_of[i] }
                })
                .collect();
            let _ = map_continuous(&map_jobs, capacity).unwrap();
            t_map += t2.elapsed().as_secs_f64();
        }
        let r = reps as f64;
        println!(
            "{n:>6} {:>12.2} {:>12.2} {:>12.2}",
            t_est * 1e3 / r,
            t_peel * 1e3 / r,
            t_map * 1e3 / r
        );
    }
}

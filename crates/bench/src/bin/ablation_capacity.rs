//! Ablation A5 — spot revocation: the δ-ball vs deterministic planning.
//!
//! Sweeps the spot-market scenarios of `rush_workload::spot` (revocation
//! duty cycle 0 → 0.7 on half the cluster) against a δ sweep of the RUSH
//! planner, with FIFO and EDF as scheduler baselines. Budgets are
//! calibrated on the *nominal* 48-container cluster, so every revocation
//! eats directly into the planning margin: a deterministic planner (δ = 0,
//! which trusts the reference distribution exactly) keeps admitting and
//! ordering as if the capacity were still there, while the δ-ball's
//! inflated demand η absorbs the shock.
//!
//! The headline metric is the deadline-hit rate among completion-time
//! critical and sensitive jobs (latency ≤ 0). Results are written to
//! `BENCH_ablation_capacity.json` (override with `--out PATH`); the
//! `gate` object is what `cargo xtask bench-gate --capacity` checks: at
//! the sweep's highest revocation rate, RUSH at the default δ must meet
//! at least as many deadlines as the deterministic δ = 0 planner.
//!
//! Flags: `--jobs N`, `--seed N`, `--ratio X`, `--out PATH`, `--quick`.

use rush_bench::{flag, parse_args, paper_experiment, CALIBRATED_INTERARRIVAL};
use rush_core::RushConfig;
use rush_metrics::table::{fmt_f64, Table};
use rush_planner::RushScheduler;
use rush_sched::{Edf, Fifo};
use rush_sim::outcome::SimResult;
use rush_workload::{generate, spot_scenarios, Experiment, WorkloadConfig};

/// One measured cell of the sweep.
struct Point {
    scenario: &'static str,
    revocation_rate: f64,
    scheduler: String,
    /// RUSH's ambiguity radius; `None` for the non-RUSH baselines.
    delta: Option<f64>,
    met: usize,
    total: usize,
    mean_utility: f64,
    zero_utility_fraction: f64,
}

impl Point {
    fn hit_rate(&self) -> f64 {
        if self.total == 0 { 1.0 } else { self.met as f64 / self.total as f64 }
    }
}

fn measure(
    scenario: &'static str,
    rate: f64,
    name: String,
    delta: Option<f64>,
    result: &SimResult,
) -> Point {
    let lat: Vec<f64> = result.time_aware_outcomes().filter_map(|o| o.latency()).collect();
    let utils = result.utility_vector();
    Point {
        scenario,
        revocation_rate: rate,
        scheduler: name,
        delta,
        met: lat.iter().filter(|&&l| l <= 0.0).count(),
        total: lat.len(),
        mean_utility: utils.iter().sum::<f64>() / utils.len().max(1) as f64,
        zero_utility_fraction: result.zero_utility_fraction(1e-3),
    }
}

fn main() {
    let args = parse_args();
    let quick = args.contains_key("quick");
    let jobs: usize = flag(&args, "jobs", if quick { 24 } else { 60 });
    let seed: u64 = flag(&args, "seed", 1);
    let ratio: f64 = flag(&args, "ratio", 2.0);
    // Lighter than the paper's ~80 % contention point: the sweep measures
    // how much *capacity shock* each planner absorbs, so the calm scenario
    // must start comfortably feasible.
    let interarrival: f64 = flag(&args, "interarrival", 2.0 * CALIBRATED_INTERARRIVAL);
    let out_path: String = flag(&args, "out", "BENCH_ablation_capacity.json".to_owned());

    let default_delta = RushConfig::default().delta;
    let deltas: Vec<f64> =
        if quick { vec![0.0, default_delta] } else { vec![0.0, 0.35, default_delta] };
    let scenarios: Vec<_> = if quick {
        let all = spot_scenarios();
        vec![all[0], all[3]]
    } else {
        spot_scenarios().to_vec()
    };

    println!(
        "Ablation A5: spot revocation x delta (budget {ratio}x, {jobs} jobs, seed {seed})\n"
    );

    // One workload, calibrated once on the calm nominal cluster: every
    // scenario and scheduler replays the same jobs.
    let base = paper_experiment(seed);
    let cfg = WorkloadConfig {
        jobs,
        budget_ratio: ratio,
        mean_interarrival: interarrival,
        seed,
        ..Default::default()
    };
    let workload = generate(&cfg, &base).expect("workload");
    let capacity = base.cluster().capacity();
    let horizon = workload.iter().map(|j| j.arrival()).max().unwrap_or(0) + 20_000;

    let mut t = Table::new([
        "scenario", "rate", "scheduler", "hit_rate", "met", "mean_util", "zero_util",
    ]);
    let mut points: Vec<Point> = Vec::new();
    for s in &scenarios {
        let model = s.cluster_model(capacity, horizon);
        model.validate().expect("scenario model");
        let exp = Experiment::new(base.cluster().clone())
            .with_interference(base.interference().clone())
            .with_sim_seed(seed)
            .with_cluster_model(&model);
        let mut runs: Vec<(String, Option<f64>, SimResult)> = Vec::new();
        for &delta in &deltas {
            let mut rush = RushScheduler::new(RushConfig { delta, ..Default::default() });
            let label = if (delta - default_delta).abs() < 1e-9 {
                "RUSH".to_owned()
            } else {
                format!("RUSH-d{delta}")
            };
            let result = exp.run(workload.clone(), &mut rush).expect("rush run");
            runs.push((label, Some(delta), result));
        }
        let mut fifo = Fifo::new();
        runs.push(("FIFO".to_owned(), None, exp.run(workload.clone(), &mut fifo).expect("fifo")));
        let mut edf = Edf::new();
        runs.push(("EDF".to_owned(), None, exp.run(workload.clone(), &mut edf).expect("edf")));
        for (name, delta, result) in &runs {
            let p = measure(s.name, s.revocation_rate, name.clone(), *delta, result);
            t.row([
                p.scenario.to_owned(),
                fmt_f64(p.revocation_rate, 2),
                p.scheduler.clone(),
                fmt_f64(p.hit_rate(), 3),
                format!("{}/{}", p.met, p.total),
                fmt_f64(p.mean_utility, 3),
                fmt_f64(p.zero_utility_fraction, 3),
            ]);
            points.push(p);
        }
    }
    println!("{}", t.render());

    let top_rate = scenarios.iter().map(|s| s.revocation_rate).fold(0.0f64, f64::max);
    let at_top = |sched: &str| {
        points
            .iter()
            .find(|p| p.revocation_rate == top_rate && p.scheduler == sched)
            .map_or(0.0, Point::hit_rate)
    };
    let rush_top = at_top("RUSH");
    let det_top = at_top("RUSH-d0");
    println!(
        "gate: at rate {top_rate} RUSH (delta {default_delta}) hits {rush_top:.3}, \
         deterministic delta=0 hits {det_top:.3}"
    );

    let json = render_json(&points, jobs, seed, ratio, default_delta, top_rate, quick);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }
}

/// Hand-rolled JSON: the workspace builds offline, without serde.
#[allow(clippy::too_many_arguments)]
fn render_json(
    points: &[Point],
    jobs: usize,
    seed: u64,
    ratio: f64,
    default_delta: f64,
    top_rate: f64,
    quick: bool,
) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"benchmark\": \"ablation_capacity\",");
    let _ = writeln!(s, "  \"unit\": \"deadline_hit_rate\",");
    let _ = writeln!(s, "  \"jobs\": {jobs},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"budget_ratio\": {ratio},");
    let _ = writeln!(s, "  \"default_delta\": {default_delta},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let delta = p.delta.map_or("null".to_owned(), |d| format!("{d}"));
        let _ = writeln!(
            s,
            "    {{\"scenario\": \"{}\", \"revocation_rate\": {}, \"scheduler\": \"{}\", \"delta\": {}, \"hit_rate\": {:.4}, \"met\": {}, \"total\": {}, \"mean_utility\": {:.4}, \"zero_utility_fraction\": {:.4}}}{}",
            p.scenario,
            p.revocation_rate,
            p.scheduler,
            delta,
            p.hit_rate(),
            p.met,
            p.total,
            p.mean_utility,
            p.zero_utility_fraction,
            comma
        );
    }
    let _ = writeln!(s, "  ],");
    let at_top = |sched: &str| {
        points
            .iter()
            .find(|p| p.revocation_rate == top_rate && p.scheduler == sched)
            .map_or(0.0, Point::hit_rate)
    };
    let _ = writeln!(s, "  \"gate\": {{");
    let _ = writeln!(s, "    \"revocation_rate\": {top_rate},");
    let _ = writeln!(s, "    \"rush_hit_rate\": {:.4},", at_top("RUSH"));
    let _ = writeln!(s, "    \"deterministic_hit_rate\": {:.4},", at_top("RUSH-d0"));
    let _ = writeln!(s, "    \"fifo_hit_rate\": {:.4},", at_top("FIFO"));
    let _ = writeln!(s, "    \"edf_hit_rate\": {:.4}", at_top("EDF"));
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

//! Ablation A7 — robust provisioning vs speculative execution.
//!
//! The paper's related work contrasts two ways of taming runtime
//! uncertainty: speculative re-execution of stragglers (Zaharia et al.,
//! OSDI'08) and RUSH's robust provisioning. This experiment pits them
//! against each other on a straggler-heavy cluster — and also combines
//! them, since the mechanisms are orthogonal.

use rush_bench::{flag, parse_args, time_aware_latencies, CALIBRATED_INTERARRIVAL};
use rush_core::RushConfig;
use rush_planner::RushScheduler;
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::stats::FiveNumber;
use rush_sched::{Edf, Speculative};
use rush_sim::cluster::ClusterSpec;
use rush_sim::engine::{SimConfig, Simulation};
use rush_sim::perturb::Interference;
use rush_sim::Scheduler;
use rush_workload::{generate, Experiment, WorkloadConfig};

fn main() {
    let args = parse_args();
    let jobs: usize = flag(&args, "jobs", 60);
    let seed: u64 = flag(&args, "seed", 1);
    let ratio: f64 = flag(&args, "ratio", 1.5);
    let straggler_p: f64 = flag(&args, "straggler-p", 0.15);
    let slowdown: f64 = flag(&args, "slowdown", 6.0);

    let interference = Interference::Straggler { p: straggler_p, slowdown };
    let cluster = ClusterSpec::paper_testbed(8).expect("static cluster");
    let exp = Experiment::new(cluster.clone())
        .with_interference(interference.clone())
        .with_sim_seed(seed);
    let cfg = WorkloadConfig {
        jobs,
        budget_ratio: ratio,
        mean_interarrival: CALIBRATED_INTERARRIVAL,
        seed,
        ..Default::default()
    };
    let workload = generate(&cfg, &exp).expect("workload");

    println!(
        "Ablation A7: stragglers (p={straggler_p}, {slowdown}x) — robustness vs speculation"
    );
    println!("{jobs} jobs, budget {ratio}x\n");

    let run = |sched: &mut dyn Scheduler| {
        let cfg = SimConfig::new(cluster.clone())
            .with_interference(interference.clone())
            .with_seed(seed)
            .with_max_slots(10_000_000);
        Simulation::new(cfg, workload.clone()).expect("sim").run(sched).expect("run")
    };

    let mut t = Table::new([
        "scheduler", "mean_util", "zero_util", "median_lat", "q3_lat", "met", "spec", "killed",
    ]);
    let mut edf = Edf::new();
    let mut spec_edf = Speculative::new(Edf::new(), 1.5);
    let mut rush = RushScheduler::new(RushConfig::default());
    let mut spec_rush = Speculative::new(RushScheduler::new(RushConfig::default()), 1.5);
    let runs: [(&str, &mut dyn Scheduler); 4] = [
        ("EDF", &mut edf),
        ("EDF+spec", &mut spec_edf),
        ("RUSH", &mut rush),
        ("RUSH+spec", &mut spec_rush),
    ];
    for (name, sched) in runs {
        let result = run(sched);
        let utils = result.utility_vector();
        let lat = time_aware_latencies(&result);
        let s = FiveNumber::from_samples(&lat);
        let met = lat.iter().filter(|&&l| l <= 0.0).count();
        t.row([
            name.to_owned(),
            fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
            fmt_f64(result.zero_utility_fraction(1e-3), 3),
            fmt_f64(s.median, 1),
            fmt_f64(s.q3, 1),
            format!("{}/{}", met, lat.len()),
            result.speculative_attempts.to_string(),
            result.killed_attempts.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Reading the result: robust provisioning absorbs stragglers better than");
    println!("speculation bolted onto a deadline scheduler (RUSH's tail metrics lead),");
    println!("while speculation helps the medians of both — at the cost of duplicate");
    println!("work that can eat into the tail under contention. The mechanisms are");
    println!("orthogonal mitigations of the same uncertainty, as the paper's related");
    println!("work frames them.");
}

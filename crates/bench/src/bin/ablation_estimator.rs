//! Ablation A2 — estimator class comparison.
//!
//! Runs the Fig. 3 coverage experiment with the mean, Gaussian and
//! bootstrap-empirical estimators, and the full workload with each class.
//! The mean estimator's impulse reference makes the KL ball degenerate, so
//! its robustness is limited — quantifying why the paper defaults to the
//! Gaussian estimator.

use rush_bench::{flag, parse_args, run_comparison};
use rush_core::config::EstimatorKind;
use rush_core::wcde::worst_case_quantile;
use rush_core::RushConfig;
use rush_estimator::{
    DistributionEstimator, EmpiricalEstimator, GaussianEstimator, MeanEstimator,
};
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::dist::{Continuous, Gaussian};
use rush_prob::rng::{derive_seed, seeded_rng};

fn coverage_with<E: DistributionEstimator>(
    de: &E,
    n_samples: usize,
    total: usize,
    delta: f64,
    theta: f64,
    reps: usize,
    seed: u64,
) -> f64 {
    let truth = Gaussian::new(60.0, 20.0).expect("static");
    let remaining = total - n_samples;
    let rem = Gaussian::new(remaining as f64 * 60.0, (remaining as f64).sqrt() * 20.0)
        .expect("static");
    let mut covered = 0.0;
    for rep in 0..reps {
        let mut rng = seeded_rng(derive_seed(seed, rep as u64));
        let samples: Vec<u64> =
            (0..n_samples).map(|_| truth.sample(&mut rng).round().max(1.0) as u64).collect();
        let est = de.estimate(&samples, remaining).expect("estimate");
        let eta = worst_case_quantile(&est.pmf, theta, delta).expect("wcde").eta;
        covered += rem.cdf(eta as f64);
    }
    covered / reps as f64
}

fn main() {
    let args = parse_args();
    let reps: usize = flag(&args, "reps", 100);
    let jobs: usize = flag(&args, "jobs", 40);
    let seed: u64 = flag(&args, "seed", 1);
    let (theta, delta) = (0.9, 0.7);

    println!("Ablation A2a: coverage P(eta >= v) by estimator class (delta {delta})\n");
    let mean_de = MeanEstimator::new(1024);
    let gauss_de = GaussianEstimator::new(1024);
    let emp_de = EmpiricalEstimator::new(1024, 500);
    let mut t = Table::new(["samples", "mean", "gaussian", "empirical"]);
    for n in [15usize, 25, 35, 55] {
        t.row([
            n.to_string(),
            fmt_f64(coverage_with(&mean_de, n, 101, delta, theta, reps, seed), 3),
            fmt_f64(coverage_with(&gauss_de, n, 101, delta, theta, reps, seed), 3),
            fmt_f64(coverage_with(&emp_de, n, 101, delta, theta, reps, seed), 3),
        ]);
    }
    println!("{}", t.render());

    println!("Ablation A2b: full workload (ratio 1.5x, {jobs} jobs) by estimator\n");
    let mut t = Table::new(["estimator", "mean_util", "zero_util"]);
    for (name, kind) in [
        ("mean", EstimatorKind::Mean),
        ("gaussian", EstimatorKind::Gaussian),
        ("empirical", EstimatorKind::Empirical { resamples: 200 }),
    ] {
        let cfg = RushConfig::default().with_estimator(kind);
        let results = run_comparison(jobs, 1.5, seed, cfg);
        let (_, rush) = results.iter().find(|(n, _)| n == "RUSH").expect("RUSH present");
        let utils = rush.utility_vector();
        t.row([
            name.to_owned(),
            fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
            fmt_f64(rush.zero_utility_fraction(1e-3), 3),
        ]);
    }
    println!("{}", t.render());
    println!("Expectation: the mean estimator's impulse reference caps its coverage;");
    println!("gaussian and empirical reach the theta target with enough samples.");
}

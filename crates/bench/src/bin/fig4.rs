//! Figure 4 — latency of time-sensitive and -critical jobs under budget
//! pressure.
//!
//! Reproduces: boxplots of `latency = runtime − budget` for the
//! completion-time sensitive + critical jobs of the 100-job PUMA-mix
//! workload, with budgets at 2×, 1.5× and 1× the benchmarked runtime,
//! under RUSH, FIFO, EDF and RRH.
//!
//! Paper's finding: RUSH's third quartile stays below 0 at every ratio
//! (≥ 75 % of time-aware jobs meet their budget); FIFO/EDF suffer
//! head-of-line blocking and RRH sacrifices sensitive jobs to critical
//! ones.
//!
//! Flags: `--jobs N`, `--seed S`, `--interarrival T`, `--quick` (CI mode:
//! a small fleet and the tightest budget ratio only).

use rush_bench::{flag, parse_args, run_comparison_at, time_aware_latencies, CALIBRATED_INTERARRIVAL};
use rush_core::RushConfig;
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::stats::FiveNumber;

fn main() {
    let args = parse_args();
    let quick = args.contains_key("quick");
    let jobs: usize = flag(&args, "jobs", if quick { 25 } else { 100 });
    let seed: u64 = flag(&args, "seed", 1);
    let interarrival: f64 = flag(&args, "interarrival", CALIBRATED_INTERARRIVAL);
    let ratios: &[f64] = if quick { &[1.0] } else { &[2.0, 1.5, 1.0] };

    println!("Figure 4: latency (runtime - budget) of sensitive+critical jobs");
    println!(
        "{jobs} jobs, PUMA mix, Poisson({interarrival}) arrivals, paper testbed (48 containers)\n"
    );

    let mut t = Table::new([
        "budget", "scheduler", "whisk_lo", "q1", "median", "q3", "whisk_hi", "outliers",
        "met_budget",
    ]);
    for &ratio in ratios {
        let results = run_comparison_at(jobs, ratio, seed, RushConfig::default(), interarrival);
        for (name, result) in &results {
            let lat = time_aware_latencies(result);
            let met = lat.iter().filter(|&&l| l <= 0.0).count();
            let s = FiveNumber::from_samples(&lat);
            t.row([
                format!("{ratio}x"),
                name.clone(),
                fmt_f64(s.whisker_lo, 1),
                fmt_f64(s.q1, 1),
                fmt_f64(s.median, 1),
                fmt_f64(s.q3, 1),
                fmt_f64(s.whisker_hi, 1),
                s.outliers.len().to_string(),
                format!("{}/{}", met, lat.len()),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Paper shape: RUSH q3 <= 0 at every ratio; baselines' medians blow up");
    println!("as the ratio tightens to 1x.");
}

//! Ablation A3 — percentile θ sweep: conservatism vs utility.
//!
//! θ is the completion-probability target of the robust provision. Low θ
//! under-provisions (jobs miss deadlines when demand lands in the upper
//! tail); θ → 1 over-provisions (capacity reserved for demand that almost
//! never materializes). This sweep quantifies the trade-off on the 1.5×
//! workload.

use rush_bench::{flag, parse_args, run_comparison, time_aware_latencies};
use rush_core::RushConfig;
use rush_metrics::table::{fmt_f64, Table};
use rush_prob::stats::FiveNumber;

fn main() {
    let args = parse_args();
    let jobs: usize = flag(&args, "jobs", 60);
    let seed: u64 = flag(&args, "seed", 1);
    let ratio: f64 = flag(&args, "ratio", 1.5);

    println!("Ablation A3: theta sweep (budget ratio {ratio}x, {jobs} jobs)\n");
    let mut t = Table::new(["theta", "mean_util", "zero_util", "median_lat", "q3_lat", "met"]);
    for theta in [0.5f64, 0.75, 0.9, 0.99] {
        let cfg = RushConfig::default().with_theta(theta);
        let results = run_comparison(jobs, ratio, seed, cfg);
        let (_, rush) = results.iter().find(|(n, _)| n == "RUSH").expect("RUSH present");
        let utils = rush.utility_vector();
        let lat = time_aware_latencies(rush);
        let s = FiveNumber::from_samples(&lat);
        let met = lat.iter().filter(|&&l| l <= 0.0).count();
        t.row([
            fmt_f64(theta, 2),
            fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
            fmt_f64(rush.zero_utility_fraction(1e-3), 3),
            fmt_f64(s.median, 1),
            fmt_f64(s.q3, 1),
            format!("{}/{}", met, lat.len()),
        ]);
    }
    println!("{}", t.render());
    println!("Reading the result: higher theta buys per-job completion confidence at");
    println!("the cost of reserved capacity; under heavy contention the q3 latency");
    println!("grows with theta while mean utility drifts slightly down — the");
    println!("conservatism knob behaves as designed.");
}

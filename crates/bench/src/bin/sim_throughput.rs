//! Simulation-engine throughput: indexed vs naive event processing.
//!
//! Measures raw engine cost — events per second and nanoseconds per event,
//! with scheduler time subtracted — for the indexed engine
//! ([`Simulation::run`]) and the scan-based reference
//! ([`rush_sim::engine::naive::run`]) at 1k/10k/100k jobs. Both engines
//! produce bit-identical results (enforced by
//! `crates/sim/tests/engine_differential.rs` and re-checked here at the
//! smallest size), so any wall-clock gap is pure data-structure cost:
//! lazy-deletion completion heap vs linear scans, bitset free pool vs
//! re-sorted `Vec`, maintained runnable/finished counters vs per-event job
//! and view scans.
//!
//! The workload keeps a 1024-container cluster ~85 % utilized so the
//! active-job set stays bounded while the *total* job count and the
//! running-attempt set grow — exposing both cost classes the indexed
//! engine removes: the naive engine's O(running) scans per completion
//! (`pop_due`, `next_end`, oldest-start refresh) and its O(total jobs)
//! per-event termination scan (the indexed engine uses a completion heap
//! and maintained counters instead).
//!
//! An *event* is anything the engine processes at a slot: a job arrival or
//! completion, a task start or finish. `events = 2·jobs + 2·assignments`
//! (failures and speculation are disabled here; FCFS never speculates).
//!
//! Results are written to `BENCH_sim_throughput.json` (override with
//! `--out PATH`).
//!
//! Flags: `--reps N`, `--out PATH`, `--quick` (CI mode: small sizes, one
//! repetition).

use rush_bench::{flag, parse_args};
use rush_metrics::table::{fmt_f64, Table};
use rush_sim::engine::{naive, SimConfig, Simulation};
use rush_sim::job::{JobSpec, Phase, TaskSpec};
use rush_sim::outcome::SimResult;
use rush_sim::scheduler::fcfs_task_order;
use rush_sim::Slot;
use rush_utility::TimeUtility;
use std::time::Instant;

/// A deterministic fleet of small map jobs arriving at 4 jobs/slot on a
/// 1024-container cluster (~85 % utilization): the steady state holds a
/// bounded set of active jobs and ~900 running attempts while completed
/// jobs accumulate behind them.
fn fleet(n_jobs: usize) -> Vec<JobSpec> {
    (0..n_jobs)
        .map(|i| {
            // 4 arrivals per slot; 4 tasks of 35..74 base slots each.
            let arrival = i as Slot / 4;
            JobSpec::builder(format!("j{i}"))
                .arrival(arrival)
                .tasks((0..4).map(|t| {
                    TaskSpec::new(35.0 + ((i * 13 + t * 7) % 40) as f64, Phase::Map)
                }))
                .utility(TimeUtility::constant(1.0).expect("valid utility"))
                .build()
                .expect("valid job")
        })
        .collect()
}

fn config() -> SimConfig {
    SimConfig::homogeneous(128, 8) // 1024 containers
}

/// Engine-only cost of one run: total events and nanoseconds spent outside
/// the scheduler.
struct Measure {
    events: u64,
    engine_ns: f64,
    result: SimResult,
}

fn measure<F: FnOnce(Simulation) -> SimResult>(jobs: &[JobSpec], run: F) -> Measure {
    let sim = Simulation::new(config(), jobs.to_vec()).expect("valid sim");
    let t0 = Instant::now();
    let result = run(sim);
    let elapsed = t0.elapsed();
    let events = 2 * result.outcomes.len() as u64 + 2 * result.assignments;
    let engine_ns = (elapsed.saturating_sub(result.scheduler_time)).as_nanos() as f64;
    Measure { events, engine_ns, result }
}

struct Point {
    jobs: usize,
    events: u64,
    naive_ns_per_event: f64,
    indexed_ns_per_event: f64,
}

impl Point {
    fn speedup(&self) -> f64 {
        self.naive_ns_per_event / self.indexed_ns_per_event
    }
    fn events_per_sec(&self, ns_per_event: f64) -> f64 {
        1e9 / ns_per_event
    }
}

fn main() {
    let args = parse_args();
    let quick = args.contains_key("quick");
    let reps: usize = flag(&args, "reps", if quick { 1 } else { 3 });
    let out_path: String =
        flag(&args, "out", "BENCH_sim_throughput.json".to_owned());
    let sizes: Vec<usize> = if quick { vec![500, 2000] } else { vec![1_000, 10_000, 100_000] };

    println!(
        "sim_throughput: {} jobs x {} reps (best-of), FCFS, 1024 containers\n",
        sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>().join("/"),
        reps
    );

    let mut t = Table::new(vec![
        "jobs",
        "events",
        "naive ns/ev",
        "indexed ns/ev",
        "naive ev/s",
        "indexed ev/s",
        "speedup",
    ]);
    let mut points = Vec::new();
    for (si, &n) in sizes.iter().enumerate() {
        let jobs = fleet(n);
        let mut naive_best = f64::INFINITY;
        let mut indexed_best = f64::INFINITY;
        let mut events = 0;
        for _ in 0..reps {
            let ix = measure(&jobs, |sim| sim.run(&mut fcfs_task_order()).expect("run"));
            let nv = measure(&jobs, |sim| {
                naive::run(sim, &mut fcfs_task_order()).expect("run")
            });
            assert_eq!(ix.events, nv.events, "engines must process identical event counts");
            if si == 0 {
                // Cheap differential re-check at the smallest size: the
                // benchmark must be comparing engines that agree.
                assert_eq!(ix.result.outcomes, nv.result.outcomes);
                assert_eq!(ix.result.makespan, nv.result.makespan);
            }
            events = ix.events;
            indexed_best = indexed_best.min(ix.engine_ns / ix.events as f64);
            naive_best = naive_best.min(nv.engine_ns / nv.events as f64);
        }
        let p = Point {
            jobs: n,
            events,
            naive_ns_per_event: naive_best,
            indexed_ns_per_event: indexed_best,
        };
        t.row(vec![
            p.jobs.to_string(),
            p.events.to_string(),
            fmt_f64(p.naive_ns_per_event, 0),
            fmt_f64(p.indexed_ns_per_event, 0),
            fmt_f64(p.events_per_sec(p.naive_ns_per_event), 0),
            fmt_f64(p.events_per_sec(p.indexed_ns_per_event), 0),
            fmt_f64(p.speedup(), 1),
        ]);
        points.push(p);
    }
    println!("{}", t.render());

    let json = render_json(&points, reps, quick);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("failed to write {out_path}: {e}"),
    }
}

/// Hand-rolled JSON: the workspace builds offline, without serde.
fn render_json(points: &[Point], reps: usize, quick: bool) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"benchmark\": \"sim_throughput\",");
    let _ = writeln!(s, "  \"unit\": \"ns_per_event\",");
    let _ = writeln!(s, "  \"scheduler\": \"FCFS-task\",");
    let _ = writeln!(s, "  \"containers\": 1024,");
    let _ = writeln!(s, "  \"reps\": {reps},");
    let _ = writeln!(s, "  \"quick\": {quick},");
    let _ = writeln!(s, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"jobs\": {}, \"events\": {}, \"naive_ns_per_event\": {:.0}, \"indexed_ns_per_event\": {:.0}, \"naive_events_per_sec\": {:.0}, \"indexed_events_per_sec\": {:.0}, \"speedup\": {:.2}}}{}",
            p.jobs,
            p.events,
            p.naive_ns_per_event,
            p.indexed_ns_per_event,
            p.events_per_sec(p.naive_ns_per_event),
            p.events_per_sec(p.indexed_ns_per_event),
            p.speedup(),
            comma
        );
    }
    let _ = writeln!(s, "  ],");
    let mid = points.iter().find(|p| p.jobs == 10_000).or(points.last());
    let mid = mid.expect("at least one point");
    let _ = writeln!(s, "  \"speedup_at_{}_jobs\": {:.2}", mid.jobs, mid.speedup());
    let _ = writeln!(s, "}}");
    s
}

//! Ablation A8 — data locality.
//!
//! With HDFS-style data placement and a remote-read penalty, the engine's
//! heartbeat-level locality pick (the substrate mechanism behind the delay
//! scheduling / locality-aware related work the paper cites) recovers most
//! of the penalty. This experiment sweeps the penalty and reports the
//! locality hit rate and the damage to utility per scheduler.

use rush_bench::{flag, parse_args, CALIBRATED_INTERARRIVAL};
use rush_core::RushConfig;
use rush_planner::RushScheduler;
use rush_metrics::table::{fmt_f64, Table};
use rush_sched::Fifo;
use rush_sim::cluster::ClusterSpec;
use rush_sim::engine::{SimConfig, Simulation};
use rush_sim::perturb::Interference;
use rush_sim::Scheduler;
use rush_workload::{generate, Experiment, WorkloadConfig};

fn main() {
    let args = parse_args();
    let jobs: usize = flag(&args, "jobs", 40);
    let seed: u64 = flag(&args, "seed", 1);
    let ratio: f64 = flag(&args, "ratio", 1.5);

    let cluster = ClusterSpec::paper_testbed(8).expect("static cluster");
    let interference = Interference::LogNormal { cv: 0.25 };
    let exp = Experiment::new(cluster.clone())
        .with_interference(interference.clone())
        .with_sim_seed(seed);
    let cfg = WorkloadConfig {
        jobs,
        budget_ratio: ratio,
        mean_interarrival: CALIBRATED_INTERARRIVAL,
        assign_locality: true,
        seed,
        ..Default::default()
    };
    let workload = generate(&cfg, &exp).expect("workload");

    println!("Ablation A8: remote-read penalty sweep ({jobs} jobs, budget {ratio}x)\n");
    let mut t = Table::new(["penalty", "scheduler", "mean_util", "met", "locality"]);
    for penalty in [1.0f64, 1.25, 1.5, 2.0] {
        let run = |sched: &mut dyn Scheduler| {
            let cfg = SimConfig::new(cluster.clone())
                .with_interference(interference.clone())
                .with_remote_penalty(penalty)
                .with_seed(seed)
                .with_max_slots(10_000_000);
            Simulation::new(cfg, workload.clone()).expect("sim").run(sched).expect("run")
        };
        let mut rush = RushScheduler::new(RushConfig::default());
        let mut fifo = Fifo::new();
        for (name, result) in [("RUSH", run(&mut rush)), ("FIFO", run(&mut fifo))] {
            let utils = result.utility_vector();
            let met = result.time_aware_outcomes().filter(|o| o.met_budget()).count();
            let aware = result.time_aware_outcomes().count();
            t.row([
                fmt_f64(penalty, 2),
                name.to_owned(),
                fmt_f64(utils.iter().sum::<f64>() / utils.len() as f64, 3),
                format!("{met}/{aware}"),
                fmt_f64(result.locality_rate(), 2),
            ]);
        }
    }
    println!("{}", t.render());
    println!("The engine's data-local task pick keeps the hit rate well above the");
    println!("1/6 random baseline; residual remote reads tax utilities roughly in");
    println!("proportion to the penalty.");
}

//! Shared harness for regenerating every figure of the RUSH paper.
//!
//! Each `fig*` binary in `src/bin/` reproduces one figure of the paper's
//! evaluation (Sec. V); `ablation_*` binaries probe the design choices
//! DESIGN.md calls out. This library holds the common machinery: the
//! paper-shaped testbed, the scheduler comparison runner, and the Fig. 3
//! coverage experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rush_core::RushConfig;
use rush_planner::RushScheduler;
use rush_estimator::{DistributionEstimator, GaussianEstimator};
use rush_prob::dist::{Continuous, Gaussian};
use rush_sched::{Edf, Fifo, Rrh};
use rush_sim::cluster::ClusterSpec;
use rush_sim::outcome::SimResult;
use rush_sim::perturb::Interference;
use rush_sim::Scheduler;
use rush_workload::{generate, Experiment, WorkloadConfig};
use std::collections::HashMap;

/// Parses `--key value` pairs from `std::env::args`.
///
/// A `--flag` immediately followed by another `--…` token (or by nothing)
/// is a bare switch: it is stored with an empty value rather than
/// swallowing the next flag as its value, so `--quick --out f.json` parses
/// as `{quick: "", out: "f.json"}`.
pub fn parse_args() -> HashMap<String, String> {
    parse_arg_list(std::env::args().skip(1))
}

fn parse_arg_list(args: impl IntoIterator<Item = String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut args = args.into_iter().peekable();
    while let Some(a) = args.next() {
        if let Some(key) = a.strip_prefix("--") {
            let v = match args.peek() {
                Some(next) if !next.starts_with("--") => args.next().unwrap_or_default(),
                _ => String::new(),
            };
            out.insert(key.to_owned(), v);
        }
    }
    out
}

/// Reads a typed flag with a default.
pub fn flag<T: std::str::FromStr>(args: &HashMap<String, String>, key: &str, default: T) -> T {
    args.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The paper's testbed shape: six heterogeneous nodes, 48 containers.
pub fn paper_cluster() -> ClusterSpec {
    ClusterSpec::paper_testbed(8).expect("static cluster is valid")
}

/// Builds the experiment environment used by Figs. 4 and 6: the paper
/// cluster plus mild shared-cloud interference.
pub fn paper_experiment(seed: u64) -> Experiment {
    Experiment::new(paper_cluster())
        .with_interference(Interference::LogNormal { cv: 0.25 })
        .with_sim_seed(seed)
}

/// Runs the paper's workload under RUSH and the three baselines.
///
/// Every scheduler sees the same jobs and the same interference stream.
///
/// # Panics
///
/// Panics on simulator errors — the harness treats these as fatal.
pub fn run_comparison(
    jobs: usize,
    budget_ratio: f64,
    seed: u64,
    rush_config: RushConfig,
) -> Vec<(String, SimResult)> {
    run_comparison_at(jobs, budget_ratio, seed, rush_config, CALIBRATED_INTERARRIVAL)
}

/// Mean inter-arrival (slots) that loads the 48-container testbed to the
/// ~80 % utilization the paper's PUMA-on-Hadoop workload produced. The
/// paper quotes 130 s between arrivals of *real* 1–10 GB Hadoop jobs; our
/// synthetic jobs carry less work per job, so arrivals are compressed to
/// match the *contention level* rather than the literal constant (see
/// DESIGN.md, substitutions).
pub const CALIBRATED_INTERARRIVAL: f64 = 45.0;

/// [`run_comparison`] with an explicit mean inter-arrival time.
///
/// # Panics
///
/// Panics on simulator errors — the harness treats these as fatal.
pub fn run_comparison_at(
    jobs: usize,
    budget_ratio: f64,
    seed: u64,
    rush_config: RushConfig,
    mean_interarrival: f64,
) -> Vec<(String, SimResult)> {
    let exp = paper_experiment(seed);
    let cfg = WorkloadConfig { jobs, budget_ratio, seed, mean_interarrival, ..Default::default() };
    let workload = generate(&cfg, &exp).expect("workload generation");
    let mut rush = RushScheduler::new(rush_config);
    let mut fifo = Fifo::new();
    let mut edf = Edf::new();
    let mut rrh = Rrh::new();
    let mut set: [(&str, &mut dyn Scheduler); 4] = [
        ("RUSH", &mut rush),
        ("FIFO", &mut fifo),
        ("EDF", &mut edf),
        ("RRH", &mut rrh),
    ];
    exp.compare(&workload, &mut set).expect("comparison run")
}

/// One cell of the Fig. 3 sweep: the probability that the DE + WCDE
/// provision `η` covers the true remaining demand, estimated over
/// `repetitions` independent sample draws.
///
/// Ground truth: task runtimes are N(60, 20); with `n_samples` tasks
/// observed out of `total_tasks`, the remaining demand is
/// `N((total−n)·60, √(total−n)·20)`, so coverage is evaluated in closed
/// form instead of re-simulating.
///
/// # Panics
///
/// Panics if estimation fails (cannot happen for `n_samples ≥ 1`).
pub fn fig3_coverage(
    n_samples: usize,
    total_tasks: usize,
    delta: f64,
    theta: f64,
    repetitions: usize,
    seed: u64,
) -> f64 {
    let truth = Gaussian::new(60.0, 20.0).expect("static");
    let remaining = total_tasks.saturating_sub(n_samples);
    if remaining == 0 {
        return 1.0;
    }
    let rem_mean = remaining as f64 * 60.0;
    let rem_std = (remaining as f64).sqrt() * 20.0;
    let rem_total = Gaussian::new(rem_mean, rem_std).expect("static");
    let de = GaussianEstimator::new(1024);
    let mut covered = 0.0;
    for rep in 0..repetitions {
        let mut rng =
            rush_prob::rng::seeded_rng(rush_prob::rng::derive_seed(seed, rep as u64));
        let samples: Vec<u64> =
            (0..n_samples).map(|_| truth.sample(&mut rng).round().max(1.0) as u64).collect();
        let est = de.estimate(&samples, remaining).expect("estimate");
        let eta = rush_core::wcde::worst_case_quantile(&est.pmf, theta, delta)
            .expect("wcde")
            .eta;
        // P(v ≤ η) under the true remaining-demand distribution.
        covered += rem_total.cdf(eta as f64);
    }
    covered / repetitions as f64
}

/// Latencies (runtime − budget) of completion-time sensitive and critical
/// jobs — the Fig. 4 population.
pub fn time_aware_latencies(result: &SimResult) -> Vec<f64> {
    result
        .time_aware_outcomes()
        .filter_map(|o| o.latency())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_coverage_improves_with_samples_and_delta() {
        let lo = fig3_coverage(15, 101, 0.0, 0.9, 10, 1);
        let hi = fig3_coverage(55, 101, 0.7, 0.9, 10, 1);
        assert!(hi > lo, "coverage {hi} should beat {lo}");
        assert!(hi > 0.9);
    }

    #[test]
    fn fig3_coverage_complete_job_is_one() {
        assert_eq!(fig3_coverage(101, 101, 0.7, 0.9, 5, 1), 1.0);
    }

    #[test]
    fn comparison_smoke() {
        let results = run_comparison(6, 2.0, 3, RushConfig::default());
        assert_eq!(results.len(), 4);
        for (name, r) in &results {
            assert_eq!(r.outcomes.len(), 6, "{name}");
        }
    }

    #[test]
    fn flag_parsing() {
        let mut m = HashMap::new();
        m.insert("jobs".to_owned(), "42".to_owned());
        assert_eq!(flag(&m, "jobs", 7usize), 42);
        assert_eq!(flag(&m, "missing", 7usize), 7);
        m.insert("bad".to_owned(), "xx".to_owned());
        assert_eq!(flag(&m, "bad", 3.5f64), 3.5);
    }

    #[test]
    fn bare_switch_does_not_swallow_next_flag() {
        let argv = ["--quick", "--out", "f.json", "--reps", "3", "--verbose"];
        let m = parse_arg_list(argv.iter().map(|s| s.to_string()));
        assert_eq!(m.get("quick").map(String::as_str), Some(""));
        assert_eq!(m.get("out").map(String::as_str), Some("f.json"));
        assert_eq!(flag(&m, "reps", 0usize), 3);
        assert_eq!(m.get("verbose").map(String::as_str), Some(""));
    }
}

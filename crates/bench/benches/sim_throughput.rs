//! Criterion counterpart of `src/bin/sim_throughput.rs`: indexed vs naive
//! engine cost on the same deterministic fleet, at sizes small enough for
//! repeated sampling. The binary remains the source of the committed
//! `BENCH_sim_throughput.json`; this bench is for regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rush_sim::engine::{naive, SimConfig, Simulation};
use rush_sim::job::{JobSpec, Phase, TaskSpec};
use rush_sim::scheduler::fcfs_task_order;
use rush_sim::Slot;
use rush_utility::TimeUtility;

/// Same shape as the binary's fleet: 4 arrivals/slot, 4 map tasks each,
/// ~85 % utilization of a 1024-container cluster.
fn fleet(n_jobs: usize) -> Vec<JobSpec> {
    (0..n_jobs)
        .map(|i| {
            let arrival = i as Slot / 4;
            JobSpec::builder(format!("j{i}"))
                .arrival(arrival)
                .tasks(
                    (0..4).map(|t| TaskSpec::new(35.0 + ((i * 13 + t * 7) % 40) as f64, Phase::Map)),
                )
                .utility(TimeUtility::constant(1.0).expect("valid utility"))
                .build()
                .expect("valid job")
        })
        .collect()
}

fn config() -> SimConfig {
    SimConfig::homogeneous(128, 8) // 1024 containers
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let jobs = fleet(n);
        group.bench_with_input(BenchmarkId::new("indexed", n), &jobs, |b, jobs| {
            b.iter(|| {
                Simulation::new(config(), jobs.clone())
                    .unwrap()
                    .run(&mut fcfs_task_order())
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &jobs, |b, jobs| {
            b.iter(|| {
                naive::run(Simulation::new(config(), jobs.clone()).unwrap(), &mut fcfs_task_order())
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

//! Macro-benchmarks: estimator classes and end-to-end simulation
//! throughput (tasks scheduled per second of wall clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rush_core::RushConfig;
use rush_planner::RushScheduler;
use rush_estimator::{
    DistributionEstimator, EmpiricalEstimator, GaussianEstimator, MeanEstimator,
};
use rush_sched::Fifo;
use rush_sim::cluster::ClusterSpec;
use rush_sim::engine::{SimConfig, Simulation};
use rush_sim::perturb::Interference;
use rush_workload::{generate, Experiment, WorkloadConfig};

fn bench_estimators(c: &mut Criterion) {
    let samples: Vec<u64> = (0..60).map(|i| 40 + (i * 13) % 45).collect();
    let mut group = c.benchmark_group("estimators");
    group.sample_size(20);
    group.bench_function("mean", |b| {
        let de = MeanEstimator::new(512);
        b.iter(|| de.estimate(std::hint::black_box(&samples), 40).unwrap());
    });
    group.bench_function("gaussian", |b| {
        let de = GaussianEstimator::new(512);
        b.iter(|| de.estimate(std::hint::black_box(&samples), 40).unwrap());
    });
    group.bench_function("empirical_500", |b| {
        let de = EmpiricalEstimator::new(512, 500);
        b.iter(|| de.estimate(std::hint::black_box(&samples), 40).unwrap());
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let exp = Experiment::new(ClusterSpec::paper_testbed(8).unwrap())
        .with_interference(Interference::LogNormal { cv: 0.25 });
    let cfg = WorkloadConfig {
        jobs: 20,
        budget_ratio: 1.5,
        mean_interarrival: 45.0,
        max_map_tasks: 48,
        seed: 1,
        ..Default::default()
    };
    let workload = generate(&cfg, &exp).expect("workload");
    let sim_cfg = SimConfig::new(exp.cluster().clone())
        .with_interference(exp.interference().clone());

    let mut group = c.benchmark_group("simulation_20_jobs");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("scheduler", "FIFO"), &workload, |b, w| {
        b.iter(|| {
            let mut s = Fifo::new();
            Simulation::new(sim_cfg.clone(), w.clone()).unwrap().run(&mut s).unwrap()
        });
    });
    group.bench_with_input(BenchmarkId::new("scheduler", "RUSH"), &workload, |b, w| {
        b.iter(|| {
            let mut s = RushScheduler::new(RushConfig::default());
            Simulation::new(sim_cfg.clone(), w.clone()).unwrap().run(&mut s).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_simulation);
criterion_main!(benches);

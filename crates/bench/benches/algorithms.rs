//! Micro-benchmarks of the individual RUSH algorithms: the REM closed
//! form, the WCDE bisection, the onion peel and the continuous mapping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rush_core::mapping::{map_continuous, MapJob};
use rush_core::onion::{peel, OnionJob};
use rush_core::{rem, wcde};
use rush_prob::dist::{Continuous, Gaussian};
use rush_prob::Pmf;
use rush_utility::TimeUtility;

fn reference(bins: usize) -> Pmf {
    Gaussian::new(bins as f64 / 2.0, bins as f64 / 12.0)
        .unwrap()
        .quantize(bins, 1)
        .unwrap()
        .with_support_floor(1e-12)
        .unwrap()
}

fn bench_rem(c: &mut Criterion) {
    let mut group = c.benchmark_group("rem_closed_form");
    group.sample_size(20);
    for bins in [128usize, 512, 2048] {
        let phi = reference(bins);
        group.bench_with_input(BenchmarkId::from_parameter(bins), &phi, |b, phi| {
            b.iter(|| rem::min_kl(std::hint::black_box(phi), bins / 2, 0.9).unwrap());
        });
    }
    group.finish();
}

fn bench_wcde(c: &mut Criterion) {
    let mut group = c.benchmark_group("wcde_bisection");
    group.sample_size(20);
    for bins in [128usize, 512, 2048] {
        let phi = reference(bins);
        group.bench_with_input(BenchmarkId::from_parameter(bins), &phi, |b, phi| {
            b.iter(|| wcde::worst_case_quantile(std::hint::black_box(phi), 0.9, 0.7).unwrap());
        });
    }
    group.finish();
}

fn bench_onion(c: &mut Criterion) {
    let mut group = c.benchmark_group("onion_peel");
    group.sample_size(10);
    for n in [10usize, 50, 200] {
        let utils: Vec<TimeUtility> = (0..n)
            .map(|i| {
                TimeUtility::sigmoid(100.0 + 37.0 * i as f64, 1.0 + (i % 5) as f64, 0.05)
                    .unwrap()
            })
            .collect();
        let jobs: Vec<OnionJob<'_>> = utils
            .iter()
            .enumerate()
            .map(|(i, u)| OnionJob { demand: 100 + 13 * i as u64, utility: u })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| peel(std::hint::black_box(jobs), 48, 0.01, 1e6).unwrap());
        });
    }
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("continuous_mapping");
    group.sample_size(20);
    for n in [10usize, 100, 1000] {
        let jobs: Vec<MapJob> = (0..n)
            .map(|i| MapJob {
                tasks: 5 + (i % 20) as u64,
                task_len: 10 + (i % 7) as u64,
                target: 100 * (1 + i as u64),
                lax: i % 5 == 0,
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| map_continuous(std::hint::black_box(jobs), 48).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rem, bench_wcde, bench_onion, bench_mapping);
criterion_main!(benches);

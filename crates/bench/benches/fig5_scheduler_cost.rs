//! Criterion version of Fig. 5: CA-pass cost at 20–1000 simultaneous jobs.
//!
//! The paper reports 0.32 s → 7.34 s with linear growth; absolute values
//! differ across machines, the linear shape is the claim under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use rush_core::plan::{compute_plan, PlanInput};
use rush_core::RushConfig;
use rush_prob::rng::{derive_seed, seeded_rng};
use rush_utility::TimeUtility;

fn synth_jobs(n: usize, seed: u64) -> Vec<PlanInput<'static>> {
    let mut rng = seeded_rng(derive_seed(seed, n as u64));
    (0..n)
        .map(|_| {
            let observed = rng.gen_range(5..40);
            let remaining = rng.gen_range(5..80);
            let mean: f64 = rng.gen_range(30.0..90.0);
            let samples: Vec<u64> = (0..observed)
                .map(|_| (mean + rng.gen_range(-15.0f64..15.0)).max(1.0) as u64)
                .collect();
            let budget = rng.gen_range(200.0..4000.0);
            PlanInput {
                samples: samples.into(),
                remaining_tasks: remaining,
                running: 0,
                failed_attempts: 0,
                age: rng.gen_range(0.0..200.0),
                utility: TimeUtility::sigmoid(budget, rng.gen_range(1.0..5.0), 10.0 / budget)
                    .expect("valid utility"),
            }
        })
        .collect()
}

fn bench_ca_pass(c: &mut Criterion) {
    let cfg = RushConfig::default();
    let mut group = c.benchmark_group("fig5_ca_pass");
    group.sample_size(10);
    for n in [20usize, 100, 500, 1000] {
        let jobs = synth_jobs(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| compute_plan(&cfg, 48, std::hint::black_box(jobs)).expect("plan"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ca_pass);
criterion_main!(benches);

//! Epoch-close cost for the serving layer: how long one
//! `ServeState::submit_epoch` call takes as the batch size and the number
//! of already-resident jobs grow. This is the daemon's per-epoch planning
//! bill — everything else on the hot path is queue shuffling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rush_core::RushConfig;
use rush_serve::protocol::JobSubmission;
use rush_serve::ServeState;
use rush_utility::TimeUtility;

fn submission(i: usize) -> JobSubmission {
    JobSubmission {
        label: format!("job-{i}"),
        tasks: 20 + (i as u64 * 7) % 30,
        runtime_hint: Some(35.0 + (i as f64 * 11.0) % 40.0),
        utility: TimeUtility::sigmoid(4000.0 + 100.0 * i as f64, 4.0, 0.002).expect("valid"),
        budget: Some(4000 + 100 * i as u64),
        priority: 1 + (i as u32 % 3),
    }
}

/// A state pre-loaded with `resident` planned jobs, plan warm at slot 0.
fn warm_state(resident: usize) -> ServeState {
    let mut state = ServeState::new(RushConfig::default(), 64).expect("state");
    let subs: Vec<JobSubmission> = (0..resident).map(submission).collect();
    state.submit_epoch(subs, 0).expect("seed epoch");
    state
}

fn bench_epoch_close(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_epoch");
    group.sample_size(20);
    for (resident, batch) in [(0usize, 8usize), (32, 1), (32, 8), (128, 8)] {
        let id = format!("resident_{resident}_batch_{batch}");
        group.bench_function(BenchmarkId::new("submit_epoch", id), |b| {
            let state = warm_state(resident);
            let batch_subs: Vec<JobSubmission> =
                (resident..resident + batch).map(submission).collect();
            b.iter(|| {
                // Clone so every iteration closes the *same* epoch rather
                // than growing the job table without bound.
                let mut s = state.clone();
                s.submit_epoch(std::hint::black_box(batch_subs.clone()), 1).expect("epoch")
            });
        });
    }
    group.finish();
}

fn bench_sample_replan(c: &mut Criterion) {
    // The other recurring cost: a task-runtime report invalidates the
    // plan; the next stats/query pays one incremental replan.
    let mut group = c.benchmark_group("serve_epoch");
    group.sample_size(20);
    group.bench_function("report_sample_then_replan_32_jobs", |b| {
        let state = warm_state(32);
        b.iter(|| {
            let mut s = state.clone();
            s.report_sample(0, 41).expect("sample");
            s.stats(2)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_epoch_close, bench_sample_replan);
criterion_main!(benches);

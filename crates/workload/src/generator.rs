//! The randomized workload generator with budget calibration.
//!
//! Reproduces the paper's evaluation workload: jobs drawn round-robin from
//! the eight PUMA templates, dataset sizes uniform in 1–10 GB, Poisson
//! arrivals, priorities `W ∈ 1..5`, a 20/60/20 sensitivity mix, and time
//! budgets set to `budget_ratio ×` each job's benchmarked solo runtime.

use crate::experiment::Experiment;
use crate::templates::{puma_templates, JobTemplate};
use rand::Rng;
use rush_prob::dist::{Continuous, Exponential};
use rush_prob::rng::{derive_seed, seeded_rng};
use rush_sim::job::{JobSpec, Phase, TaskSpec};
use rush_sim::{SimError, Slot};
use rush_utility::Sensitivity;

/// How job arrival times are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival times with the config's
    /// mean (the paper's process).
    Poisson,
    /// Deterministic arrivals exactly `mean_interarrival` apart.
    Uniform,
    /// On/off bursts: `burst` jobs arrive back-to-back (1 slot apart), then
    /// the cluster idles so that the *long-run* mean inter-arrival time
    /// still matches the config — a stress pattern for reservation-based
    /// schedulers.
    Bursty {
        /// Jobs per burst (≥ 1).
        burst: u32,
    },
}

/// Workload-generation parameters (defaults = the paper's setup).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadConfig {
    /// Number of jobs (paper: 100).
    pub jobs: usize,
    /// Mean inter-arrival time in slots (paper: 130 s).
    pub mean_interarrival: f64,
    /// The arrival process shape (paper: Poisson).
    pub arrivals: ArrivalProcess,
    /// Dataset size range in GB, uniform (paper: 1–10).
    pub dataset_gb: (f64, f64),
    /// Priority weight range, inclusive (paper: 1–5).
    pub priority: (u32, u32),
    /// Fraction of completion-time-critical jobs (paper: 0.2).
    pub critical_frac: f64,
    /// Fraction of completion-time-sensitive jobs (paper: 0.6); the
    /// remainder is insensitive.
    pub sensitive_frac: f64,
    /// Time budget as a multiple of the benchmarked runtime (paper: 2,
    /// 1.5, 1).
    pub budget_ratio: f64,
    /// Cap on map tasks per job (keeps simulations tractable).
    pub max_map_tasks: usize,
    /// Assign each map task a random input-data node (HDFS-style
    /// placement), enabling the simulator's remote-execution penalty.
    pub assign_locality: bool,
    /// Master seed for all generation randomness.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            jobs: 100,
            mean_interarrival: 130.0,
            arrivals: ArrivalProcess::Poisson,
            dataset_gb: (1.0, 10.0),
            priority: (1, 5),
            critical_frac: 0.2,
            sensitive_frac: 0.6,
            budget_ratio: 2.0,
            max_map_tasks: 96,
            assign_locality: false,
            seed: 0,
        }
    }
}

impl WorkloadConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for out-of-range fields.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.jobs == 0 {
            return Err(SimError::InvalidConfig { reason: "jobs must be > 0" });
        }
        if !(self.mean_interarrival.is_finite() && self.mean_interarrival > 0.0) {
            return Err(SimError::InvalidConfig { reason: "mean_interarrival must be > 0" });
        }
        if !(self.dataset_gb.0 > 0.0 && self.dataset_gb.1 >= self.dataset_gb.0) {
            return Err(SimError::InvalidConfig { reason: "dataset_gb range invalid" });
        }
        if self.priority.0 == 0 || self.priority.1 < self.priority.0 {
            return Err(SimError::InvalidConfig { reason: "priority range invalid" });
        }
        if !(0.0..=1.0).contains(&self.critical_frac)
            || !(0.0..=1.0).contains(&self.sensitive_frac)
            || self.critical_frac + self.sensitive_frac > 1.0
        {
            return Err(SimError::InvalidConfig { reason: "sensitivity mix invalid" });
        }
        if !(self.budget_ratio.is_finite() && self.budget_ratio > 0.0) {
            return Err(SimError::InvalidConfig { reason: "budget_ratio must be > 0" });
        }
        if self.max_map_tasks == 0 {
            return Err(SimError::InvalidConfig { reason: "max_map_tasks must be > 0" });
        }
        if let ArrivalProcess::Bursty { burst } = self.arrivals {
            if burst == 0 {
                return Err(SimError::InvalidConfig { reason: "burst must be >= 1" });
            }
        }
        Ok(())
    }
}

/// Draws the task list of one job instance from its template.
fn draw_tasks<R: Rng + ?Sized>(
    template: &JobTemplate,
    gb: f64,
    max_maps: usize,
    rng: &mut R,
) -> Vec<TaskSpec> {
    let maps = template.map_tasks(gb, max_maps);
    let reduces = template.reduce_tasks(gb);
    let mut tasks = Vec::with_capacity(maps + reduces);
    for _ in 0..maps {
        tasks.push(TaskSpec::new(template.map_runtime.sample(rng), Phase::Map));
    }
    for _ in 0..reduces {
        tasks.push(TaskSpec::new(template.reduce_runtime.sample(rng), Phase::Reduce));
    }
    tasks
}

/// Generates the paper's evaluation workload on the experiment's cluster.
///
/// Each job is benchmarked solo on the cluster (with the experiment's
/// interference model) to fix its time budget at
/// `budget_ratio × benchmarked runtime`; its utility follows its
/// sensitivity class.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] for invalid parameters; simulator errors
/// from the benchmark runs.
pub fn generate(cfg: &WorkloadConfig, exp: &Experiment) -> Result<Vec<JobSpec>, SimError> {
    cfg.validate()?;
    let templates = puma_templates();
    let mut rng = seeded_rng(derive_seed(cfg.seed, 0xA11));
    let interarrival = Exponential::from_mean(cfg.mean_interarrival)
        .expect("validated mean_interarrival");

    // Sensitivity mix assigned deterministically by quota, then shuffled by
    // arrival randomness (the i-th job's class depends only on cfg).
    let n_crit = (cfg.jobs as f64 * cfg.critical_frac).round() as usize;
    let n_sens = (cfg.jobs as f64 * cfg.sensitive_frac).round() as usize;
    let mut classes: Vec<Sensitivity> = Vec::with_capacity(cfg.jobs);
    for i in 0..cfg.jobs {
        classes.push(if i < n_crit {
            Sensitivity::Critical
        } else if i < n_crit + n_sens {
            Sensitivity::Sensitive
        } else {
            Sensitivity::Insensitive
        });
    }
    // Fisher–Yates with the workload RNG.
    for i in (1..classes.len()).rev() {
        let j = rng.gen_range(0..=i);
        classes.swap(i, j);
    }

    let mut jobs = Vec::with_capacity(cfg.jobs);
    let mut arrival = 0f64;
    for i in 0..cfg.jobs {
        let template = &templates[i % templates.len()];
        let gb = rng.gen_range(cfg.dataset_gb.0..=cfg.dataset_gb.1);
        let mut tasks = draw_tasks(template, gb, cfg.max_map_tasks, &mut rng);
        if cfg.assign_locality {
            let nodes = exp.cluster().nodes().len() as u32;
            for t in tasks.iter_mut() {
                if t.phase() == Phase::Map {
                    *t = t.with_preference(rush_sim::NodeId(rng.gen_range(0..nodes)));
                }
            }
        }
        let priority = rng.gen_range(cfg.priority.0..=cfg.priority.1);
        arrival += match cfg.arrivals {
            ArrivalProcess::Poisson => interarrival.sample(&mut rng),
            ArrivalProcess::Uniform => cfg.mean_interarrival,
            ArrivalProcess::Bursty { burst } => {
                // Last job of each burst waits out the idle period that
                // restores the long-run mean.
                if (i as u32 + 1).is_multiple_of(burst) {
                    (cfg.mean_interarrival - 1.0) * burst as f64 + 1.0
                } else {
                    1.0
                }
            }
        };
        let arrival_slot = arrival.round() as Slot;

        // Benchmark pass: solo runtime on the full cluster.
        let probe = JobSpec::builder(template.name)
            .tasks(tasks.iter().copied())
            .utility(rush_utility::TimeUtility::constant(1.0).expect("static utility"))
            .build()?;
        let bench = exp.benchmark(&probe, derive_seed(cfg.seed, 0xBE000 + i as u64))?;
        let budget = ((bench as f64 * cfg.budget_ratio).round() as Slot).max(1);

        let sensitivity = classes[i];
        let utility = sensitivity
            .utility_for(budget as f64, priority as f64)
            .map_err(|_| SimError::InvalidConfig { reason: "utility construction failed" })?;
        jobs.push(
            JobSpec::builder(template.name)
                .arrival(arrival_slot)
                .tasks(tasks)
                .utility(utility)
                .priority(priority)
                .sensitivity(sensitivity)
                .budget(budget)
                .build()?,
        );
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_sim::cluster::ClusterSpec;

    fn small_cfg(jobs: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig { jobs, max_map_tasks: 24, seed, ..Default::default() }
    }

    fn exp() -> Experiment {
        Experiment::new(ClusterSpec::homogeneous(2, 8).unwrap())
    }

    #[test]
    fn generates_requested_count_with_mix() {
        let cfg = small_cfg(40, 3);
        let jobs = generate(&cfg, &exp()).unwrap();
        assert_eq!(jobs.len(), 40);
        let crit = jobs.iter().filter(|j| j.sensitivity() == Sensitivity::Critical).count();
        let sens = jobs.iter().filter(|j| j.sensitivity() == Sensitivity::Sensitive).count();
        let insens =
            jobs.iter().filter(|j| j.sensitivity() == Sensitivity::Insensitive).count();
        assert_eq!(crit, 8);
        assert_eq!(sens, 24);
        assert_eq!(insens, 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = small_cfg(10, 42);
        let a = generate(&cfg, &exp()).unwrap();
        let b = generate(&cfg, &exp()).unwrap();
        assert_eq!(a, b);
        let c = generate(&small_cfg(10, 43), &exp()).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn budgets_scale_with_ratio() {
        let mut cfg = small_cfg(8, 7);
        cfg.budget_ratio = 1.0;
        let tight = generate(&cfg, &exp()).unwrap();
        cfg.budget_ratio = 2.0;
        let loose = generate(&cfg, &exp()).unwrap();
        for (t, l) in tight.iter().zip(loose.iter()) {
            let bt = t.budget().unwrap();
            let bl = l.budget().unwrap();
            assert!(
                (bl as f64 - 2.0 * bt as f64).abs() <= 2.0,
                "budget {bl} should be ~2x {bt}"
            );
        }
    }

    #[test]
    fn arrivals_are_increasing_and_poisson_scaled() {
        let cfg = WorkloadConfig { jobs: 60, max_map_tasks: 16, seed: 9, ..Default::default() };
        let jobs = generate(&cfg, &exp()).unwrap();
        let arrivals: Vec<u64> = jobs.iter().map(|j| j.arrival()).collect();
        for w in arrivals.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let span = *arrivals.last().unwrap() as f64;
        let mean_gap = span / (jobs.len() - 1) as f64;
        assert!(
            (mean_gap - 130.0).abs() < 60.0,
            "mean inter-arrival {mean_gap} should be near 130"
        );
    }

    #[test]
    fn priorities_within_range() {
        let jobs = generate(&small_cfg(30, 11), &exp()).unwrap();
        assert!(jobs.iter().all(|j| (1..=5).contains(&j.priority())));
    }

    #[test]
    fn templates_rotate() {
        let jobs = generate(&small_cfg(16, 1), &exp()).unwrap();
        let mut labels: Vec<&str> = jobs.iter().map(|j| j.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 8, "all eight templates used");
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let exp = exp();
        for cfg in [
            WorkloadConfig { jobs: 0, ..Default::default() },
            WorkloadConfig { mean_interarrival: 0.0, ..Default::default() },
            WorkloadConfig { dataset_gb: (0.0, 5.0), ..Default::default() },
            WorkloadConfig { dataset_gb: (5.0, 1.0), ..Default::default() },
            WorkloadConfig { priority: (0, 5), ..Default::default() },
            WorkloadConfig { priority: (3, 2), ..Default::default() },
            WorkloadConfig { critical_frac: 0.9, sensitive_frac: 0.9, ..Default::default() },
            WorkloadConfig { budget_ratio: 0.0, ..Default::default() },
            WorkloadConfig { max_map_tasks: 0, ..Default::default() },
        ] {
            assert!(generate(&cfg, &exp).is_err(), "{cfg:?} must be rejected");
        }
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let cfg = WorkloadConfig {
            jobs: 10,
            arrivals: ArrivalProcess::Uniform,
            mean_interarrival: 50.0,
            max_map_tasks: 8,
            seed: 2,
            ..Default::default()
        };
        let jobs = generate(&cfg, &exp()).unwrap();
        let arrivals: Vec<u64> = jobs.iter().map(|j| j.arrival()).collect();
        for w in arrivals.windows(2) {
            assert_eq!(w[1] - w[0], 50);
        }
    }

    #[test]
    fn bursty_arrivals_cluster_and_keep_long_run_mean() {
        let cfg = WorkloadConfig {
            jobs: 20,
            arrivals: ArrivalProcess::Bursty { burst: 5 },
            mean_interarrival: 40.0,
            max_map_tasks: 8,
            seed: 2,
            ..Default::default()
        };
        let jobs = generate(&cfg, &exp()).unwrap();
        let arrivals: Vec<u64> = jobs.iter().map(|j| j.arrival()).collect();
        // Within a burst: 1-slot gaps.
        assert_eq!(arrivals[1] - arrivals[0], 1);
        assert_eq!(arrivals[2] - arrivals[1], 1);
        // Long-run rate matches the mean within rounding.
        let span = (arrivals[19] - arrivals[0]) as f64;
        let mean_gap = span / 19.0;
        assert!((mean_gap - 40.0).abs() < 12.0, "mean gap {mean_gap}");
        assert!(generate(
            &WorkloadConfig {
                arrivals: ArrivalProcess::Bursty { burst: 0 },
                ..Default::default()
            },
            &exp()
        )
        .is_err());
    }

    #[test]
    fn locality_assignment_covers_maps_only() {
        let cfg = WorkloadConfig {
            jobs: 6,
            assign_locality: true,
            max_map_tasks: 12,
            seed: 13,
            ..Default::default()
        };
        let jobs = generate(&cfg, &exp()).unwrap();
        for j in &jobs {
            for t in j.tasks() {
                match t.phase() {
                    rush_sim::job::Phase::Map => assert!(t.preferred_node().is_some()),
                    rush_sim::job::Phase::Reduce => assert!(t.preferred_node().is_none()),
                }
            }
        }
        // Without the flag, nothing is assigned.
        let plain = generate(
            &WorkloadConfig { jobs: 2, max_map_tasks: 8, seed: 13, ..Default::default() },
            &exp(),
        )
        .unwrap();
        assert!(plain.iter().all(|j| j.tasks().iter().all(|t| t.preferred_node().is_none())));
    }

    #[test]
    fn budgets_are_positive_and_plausible() {
        let jobs = generate(&small_cfg(12, 21), &exp()).unwrap();
        for j in jobs {
            let b = j.budget().unwrap();
            assert!(b >= 1);
            // The solo benchmark can't beat the longest single task; with
            // ratio 2 the budget must exceed the mean task runtime.
            assert!(b as f64 > 30.0, "budget {b} suspiciously small");
        }
    }
}

//! Spot-scenario workload templates: named cluster trajectories that pair
//! the PUMA job mix with a tiered, churning container supply.
//!
//! A [`SpotScenario`] is to the cluster what a
//! [`JobTemplate`](crate::templates::JobTemplate) is to a job: a named,
//! parameterized shape. Each scenario splits a nominal capacity into a
//! reserved core and a spot-market remainder, then schedules periodic bulk
//! revocations of the spot tier — the recurring price-spike reclamations
//! described in the spot-instance literature (see PAPERS.md). The
//! `revocation_rate` is the outage duty cycle: the fraction of each churn
//! period the spot tier spends revoked, which is also the expected
//! fractional capacity loss on that tier.

use rush_core::cluster::ClusterModel;
use rush_sim::cluster::CapacityEvent as SimCapacityEvent;
use rush_sim::Slot;

/// A named spot-market scenario: how much of the supply is reserved, and
/// how violently the remainder churns.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpotScenario {
    /// Scenario name (stable; used in bench tables and JSON artifacts).
    pub name: &'static str,
    /// Fraction of nominal capacity bought as reserved instances
    /// (`0 < reserved_frac ≤ 1`); the rest is spot.
    pub reserved_frac: f64,
    /// Outage duty cycle of the spot tier, `0 ≤ rate < 1`: each churn
    /// period, the whole spot tier is revoked for `rate × period` slots.
    pub revocation_rate: f64,
    /// Churn period in slots (one revoke/restock cycle per period).
    pub period: Slot,
}

impl SpotScenario {
    /// An anonymous sweep point at `revocation_rate` with the default
    /// half-reserved split and a 400-slot churn period.
    pub fn with_rate(revocation_rate: f64) -> Self {
        SpotScenario { name: "sweep", reserved_frac: 0.5, revocation_rate, period: 400 }
    }

    /// Splits `capacity` into `(reserved, spot)` counts. The reserved core
    /// is rounded up and never empty, so revoking the whole spot tier can
    /// never revoke the whole cluster.
    pub fn split(&self, capacity: u32) -> (u32, u32) {
        let reserved =
            ((f64::from(capacity) * self.reserved_frac).ceil() as u32).clamp(1, capacity);
        (reserved, capacity - reserved)
    }

    /// Builds the scenario's [`ClusterModel`] at nominal `capacity`, with
    /// churn cycles covering `horizon` slots.
    ///
    /// The model always validates: outages are clamped strictly inside the
    /// period (no overlapping revocations) and the reserved core survives
    /// every revocation. A zero rate, a zero horizon, or an all-reserved
    /// split yields a calm tiered model with no events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0, `reserved_frac` is not in `(0, 1]`, or
    /// `revocation_rate` is not in `[0, 1)` — scenario tables are static
    /// data, so malformed entries are programmer error.
    pub fn cluster_model(&self, capacity: u32, horizon: Slot) -> ClusterModel {
        assert!(capacity > 0, "scenario needs capacity");
        assert!(
            self.reserved_frac > 0.0 && self.reserved_frac <= 1.0,
            "reserved_frac must be in (0, 1]"
        );
        assert!(
            (0.0..1.0).contains(&self.revocation_rate),
            "revocation_rate must be in [0, 1)"
        );
        let (reserved, spot) = self.split(capacity);
        let model = ClusterModel::tiered(reserved, 0, spot);
        let outage = (self.revocation_rate * self.period as f64).round() as Slot;
        if spot == 0 || outage == 0 || horizon == 0 {
            return model;
        }
        let outage = outage.min(self.period - 1);
        // Class 1 is the spot class: `tiered` omits the zero-count
        // on-demand class, and reserved ≥ 1 keeps index 0.
        let cycles = (horizon / self.period + 1) as u32;
        model.with_spot_churn(1, self.period / 2, self.period, outage, spot, cycles)
    }

    /// The scenario's trajectory lowered onto the simulator's class-free
    /// capacity events (see [`ClusterModel::sim_events`]).
    pub fn sim_events(&self, capacity: u32, horizon: Slot) -> Vec<SimCapacityEvent> {
        self.cluster_model(capacity, horizon).sim_events()
    }

    /// Mean effective capacity over a full churn cycle, as a fraction of
    /// nominal: `1 − revocation_rate × spot/capacity`.
    pub fn mean_capacity_frac(&self, capacity: u32) -> f64 {
        let (_, spot) = self.split(capacity);
        1.0 - self.revocation_rate * f64::from(spot) / f64::from(capacity)
    }
}

/// The four named scenarios bench binaries sweep: a calm control, two
/// intermediate churn levels, and a spot-storm where the spot half of the
/// cluster is gone most of the time.
pub fn spot_scenarios() -> [SpotScenario; 4] {
    [
        SpotScenario { name: "calm", reserved_frac: 0.5, revocation_rate: 0.0, period: 400 },
        SpotScenario {
            name: "light-churn",
            reserved_frac: 0.5,
            revocation_rate: 0.2,
            period: 400,
        },
        SpotScenario {
            name: "heavy-churn",
            reserved_frac: 0.5,
            revocation_rate: 0.45,
            period: 400,
        },
        SpotScenario {
            name: "spot-storm",
            reserved_frac: 0.5,
            revocation_rate: 0.7,
            period: 400,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_core::cluster::ReliabilityTier;
    use rush_sim::cluster::validate_capacity_events;

    #[test]
    fn named_scenarios_build_valid_models() {
        for s in spot_scenarios() {
            let model = s.cluster_model(48, 10_000);
            model.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(model.total_capacity(), 48, "{}", s.name);
            validate_capacity_events(48, &s.sim_events(48, 10_000))
                .unwrap_or_else(|e| panic!("{}: {e:?}", s.name));
        }
    }

    #[test]
    fn calm_scenario_has_no_events_and_full_mean_capacity() {
        let calm = spot_scenarios()[0];
        assert!(calm.sim_events(48, 10_000).is_empty());
        assert_eq!(calm.mean_capacity_frac(48), 1.0);
    }

    #[test]
    fn churn_scales_with_rate() {
        let light = SpotScenario::with_rate(0.2);
        let heavy = SpotScenario::with_rate(0.6);
        assert!(heavy.mean_capacity_frac(48) < light.mean_capacity_frac(48));
        // Same cycle count, longer outages.
        let ev_l = light.sim_events(48, 4_000);
        let ev_h = heavy.sim_events(48, 4_000);
        assert_eq!(ev_l.len(), ev_h.len());
        assert!(!ev_l.is_empty());
    }

    #[test]
    fn reserved_core_survives_every_revocation() {
        let storm = spot_scenarios()[3];
        let model = storm.cluster_model(48, 100_000);
        let (reserved, spot) = storm.split(48);
        assert_eq!(reserved, 24);
        assert_eq!(spot, 24);
        assert_eq!(model.classes[0].tier, ReliabilityTier::Reserved);
        // Low-water mark across the whole trajectory never dips below the
        // reserved core.
        let mut cap = model.total_capacity();
        let mut low = cap;
        for e in &model.events {
            match e.change {
                rush_core::cluster::CapacityChange::Revoke { n, .. } => cap -= n,
                rush_core::cluster::CapacityChange::Restock { n, .. } => cap += n,
            }
            low = low.min(cap);
        }
        assert_eq!(low, reserved);
    }

    #[test]
    fn tiny_clusters_and_extreme_fracs_stay_sane() {
        let s = SpotScenario { name: "t", reserved_frac: 0.01, revocation_rate: 0.5, period: 10 };
        let (reserved, spot) = s.split(1);
        assert_eq!((reserved, spot), (1, 0));
        assert!(s.sim_events(1, 1_000).is_empty(), "no spot tier, no churn");
        let all_reserved =
            SpotScenario { name: "r", reserved_frac: 1.0, revocation_rate: 0.9, period: 10 };
        assert!(all_reserved.sim_events(48, 1_000).is_empty());
    }

    #[test]
    #[should_panic(expected = "revocation_rate")]
    fn full_revocation_rate_is_rejected() {
        SpotScenario::with_rate(1.0).cluster_model(48, 100);
    }
}

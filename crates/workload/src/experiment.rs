//! The experiment driver: replay one workload under several schedulers
//! with identical randomness.

use rush_core::cluster::ClusterModel;
use rush_sim::cluster::{CapacityEvent, ClusterSpec};
use rush_sim::engine::{SimConfig, Simulation};
use rush_sim::job::JobSpec;
use rush_sim::outcome::SimResult;
use rush_sim::perturb::Interference;
use rush_sim::{Scheduler, SimError};

/// A reusable experiment environment: cluster topology + interference
/// model + simulation seed.
///
/// Running the *same* jobs under different schedulers reuses the same
/// seed, so every scheduler faces an identically perturbed cluster — the
/// comparisons in Figs. 4 and 6 are paired.
#[derive(Debug, Clone)]
pub struct Experiment {
    cluster: ClusterSpec,
    interference: Interference,
    capacity_events: Vec<CapacityEvent>,
    sim_seed: u64,
    max_slots: u64,
}

impl Experiment {
    /// Creates an experiment on `cluster` with the default mild
    /// interference (log-normal, CV 0.2) and seed 0.
    pub fn new(cluster: ClusterSpec) -> Self {
        Experiment {
            cluster,
            interference: Interference::default(),
            capacity_events: Vec::new(),
            sim_seed: 0,
            max_slots: 10_000_000,
        }
    }

    /// Sets the interference model.
    pub fn with_interference(mut self, interference: Interference) -> Self {
        self.interference = interference;
        self
    }

    /// Schedules a capacity trajectory (spot revocations, failure bursts)
    /// applied to every [`Experiment::run`]. Budget calibration via
    /// [`Experiment::benchmark`] deliberately ignores it: the paper
    /// benchmarks each job on the *nominal* cluster, so churn erodes the
    /// margin instead of inflating the budgets.
    pub fn with_capacity_events(mut self, events: Vec<CapacityEvent>) -> Self {
        self.capacity_events = events;
        self
    }

    /// [`Experiment::with_capacity_events`] from a typed
    /// [`ClusterModel`]'s event stream.
    pub fn with_cluster_model(self, model: &ClusterModel) -> Self {
        self.with_capacity_events(model.sim_events())
    }

    /// Sets the simulation seed (interference draws).
    pub fn with_sim_seed(mut self, seed: u64) -> Self {
        self.sim_seed = seed;
        self
    }

    /// Sets the safety horizon.
    pub fn with_max_slots(mut self, max_slots: u64) -> Self {
        self.max_slots = max_slots;
        self
    }

    /// The cluster topology.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The interference model.
    pub fn interference(&self) -> &Interference {
        &self.interference
    }

    /// Runs `jobs` to completion under `scheduler`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`SimError`]).
    pub fn run<S: Scheduler + ?Sized>(
        &self,
        jobs: Vec<JobSpec>,
        scheduler: &mut S,
    ) -> Result<SimResult, SimError> {
        let cfg = SimConfig::new(self.cluster.clone())
            .with_interference(self.interference.clone())
            .with_capacity_events(self.capacity_events.clone())
            .with_seed(self.sim_seed)
            .with_max_slots(self.max_slots);
        Simulation::new(cfg, jobs)?.run(scheduler)
    }

    /// Runs the same jobs under every named scheduler, returning
    /// `(name, result)` pairs.
    ///
    /// # Errors
    ///
    /// Fails on the first scheduler whose run fails.
    pub fn compare(
        &self,
        jobs: &[JobSpec],
        schedulers: &mut [(&str, &mut dyn Scheduler)],
    ) -> Result<Vec<(String, SimResult)>, SimError> {
        let mut out = Vec::with_capacity(schedulers.len());
        for (name, sched) in schedulers.iter_mut() {
            let result = self.run(jobs.to_vec(), *sched)?;
            out.push(((*name).to_owned(), result));
        }
        Ok(out)
    }

    /// Benchmarks one job: its runtime when run **alone** on the full
    /// cluster (the paper's budget-calibration measurement), with
    /// benchmark-specific interference randomness.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn benchmark(&self, job: &JobSpec, bench_seed: u64) -> Result<u64, SimError> {
        let solo = JobSpec::builder(job.label())
            .arrival(0)
            .tasks(job.tasks().iter().copied())
            .utility(*job.utility())
            .build()?;
        let cfg = SimConfig::new(self.cluster.clone())
            .with_interference(self.interference.clone())
            .with_seed(bench_seed)
            .with_max_slots(self.max_slots);
        let mut fifo = rush_sim::scheduler::FcfsTaskOrder;
        let result = Simulation::new(cfg, vec![solo])?.run(&mut fifo)?;
        Ok(result.outcomes[0].runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_sim::job::{Phase, TaskSpec};
    use rush_utility::TimeUtility;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(2, 4).unwrap()
    }

    fn job(label: &str, arrival: u64, tasks: usize) -> JobSpec {
        JobSpec::builder(label)
            .arrival(arrival)
            .tasks((0..tasks).map(|_| TaskSpec::new(20.0, Phase::Map)))
            .utility(TimeUtility::constant(1.0).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn run_and_compare_are_paired() {
        let exp = Experiment::new(cluster()).with_sim_seed(5);
        let jobs = vec![job("a", 0, 6), job("b", 10, 6)];
        let mut f1 = rush_sched::Fifo::new();
        let mut f2 = rush_sched::Fifo::new();
        let mut pair: [(&str, &mut dyn Scheduler); 2] =
            [("fifo1", &mut f1), ("fifo2", &mut f2)];
        let results = exp.compare(&jobs, &mut pair).unwrap();
        assert_eq!(results.len(), 2);
        // Identical scheduler + identical seed ⇒ identical outcomes.
        assert_eq!(results[0].1.makespan, results[1].1.makespan);
        assert_eq!(
            results[0].1.utility_vector(),
            results[1].1.utility_vector()
        );
    }

    #[test]
    fn benchmark_measures_solo_runtime() {
        let exp = Experiment::new(cluster())
            .with_interference(Interference::None);
        // 8 tasks of 20 slots on 8 containers: one wave.
        let rt = exp.benchmark(&job("solo", 500, 8), 1).unwrap();
        assert_eq!(rt, 20);
        // 16 tasks: two waves.
        let rt = exp.benchmark(&job("solo", 500, 16), 1).unwrap();
        assert_eq!(rt, 40);
    }

    #[test]
    fn interference_changes_benchmark() {
        let exp_noisy = Experiment::new(cluster())
            .with_interference(Interference::LogNormal { cv: 0.6 });
        let a = exp_noisy.benchmark(&job("x", 0, 8), 1).unwrap();
        let b = exp_noisy.benchmark(&job("x", 0, 8), 2).unwrap();
        assert_ne!(a, b, "different benchmark seeds should differ under noise");
    }

    #[test]
    fn capacity_events_apply_to_runs_but_not_benchmarks() {
        use rush_sim::cluster::{CapacityChange, CapacityEvent};
        let events = vec![
            CapacityEvent { at: 0, change: CapacityChange::Revoke { n: 6 } },
            CapacityEvent { at: 120, change: CapacityChange::Restock { n: 6 } },
        ];
        let calm = Experiment::new(cluster()).with_interference(Interference::None);
        let churned = calm.clone().with_capacity_events(events);
        let jobs = vec![job("a", 0, 16), job("b", 0, 16)];
        let mut f1 = rush_sched::Fifo::new();
        let mut f2 = rush_sched::Fifo::new();
        let full = calm.run(jobs.clone(), &mut f1).unwrap();
        let starved = churned.run(jobs.clone(), &mut f2).unwrap();
        assert!(
            starved.makespan > full.makespan,
            "revocation must slow the run: {} vs {}",
            starved.makespan,
            full.makespan
        );
        // Budget calibration sees the nominal cluster either way.
        let a = calm.benchmark(&jobs[0], 1).unwrap();
        let b = churned.benchmark(&jobs[0], 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_model_trajectory_lowers_onto_runs() {
        use rush_core::cluster::ClusterModel;
        let model = ClusterModel::tiered(4, 0, 4).with_spot_churn(1, 0, 100, 60, 4, 3);
        let exp = Experiment::new(cluster())
            .with_interference(Interference::None)
            .with_cluster_model(&model);
        let jobs = vec![job("a", 0, 16)];
        let mut fifo = rush_sched::Fifo::new();
        let calm = Experiment::new(cluster())
            .with_interference(Interference::None)
            .run(jobs.clone(), &mut rush_sched::Fifo::new())
            .unwrap();
        let churned = exp.run(jobs, &mut fifo).unwrap();
        assert!(churned.makespan > calm.makespan);
    }

    #[test]
    fn accessors() {
        let exp = Experiment::new(cluster());
        assert_eq!(exp.cluster().capacity(), 8);
        assert_eq!(*exp.interference(), Interference::default());
    }
}

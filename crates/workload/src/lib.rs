//! Synthetic MapReduce workloads modelled on the PUMA benchmark suite.
//!
//! The paper's evaluation (Sec. V-B) submits 100 jobs drawn from an equal
//! mix of eight heterogeneous Hadoop templates over 1–10 GB datasets, with
//! Poisson arrivals (mean 130 s), priorities `W ∈ 1..5`, a
//! 20 % / 60 % / 20 % critical / sensitive / insensitive mix, and time
//! budgets set to {2, 1.5, 1}× each job's *benchmarked* runtime (the job
//! alone on the whole cluster). This crate reproduces that pipeline:
//!
//! * [`templates`] — eight parameterized job templates with heterogeneous
//!   task-count and task-runtime distributions;
//! * [`spot`] — named spot-market cluster scenarios (tiered supply with a
//!   periodic revocation trajectory) that pair with any job mix;
//! * [`generator`] — the randomized workload builder, including the
//!   benchmark-calibration pass that sets budgets;
//! * [`experiment`] — a driver that replays one workload under several
//!   schedulers with identical interference randomness.
//!
//! # Example
//!
//! ```no_run
//! use rush_workload::generator::{generate, WorkloadConfig};
//! use rush_workload::experiment::Experiment;
//! use rush_sched::Fifo;
//! use rush_sim::cluster::ClusterSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = ClusterSpec::paper_testbed(8)?;
//! let cfg = WorkloadConfig { jobs: 20, budget_ratio: 1.5, seed: 7, ..Default::default() };
//! let exp = Experiment::new(cluster);
//! let jobs = generate(&cfg, &exp)?;
//! let result = exp.run(jobs, &mut Fifo::new())?;
//! println!("zero-utility fraction: {}", result.zero_utility_fraction(1e-9));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod generator;
pub mod persist;
pub mod spot;
pub mod templates;

pub use experiment::Experiment;
pub use generator::{generate, ArrivalProcess, WorkloadConfig};
pub use spot::{spot_scenarios, SpotScenario};
pub use templates::{puma_templates, JobTemplate, RuntimeDist};

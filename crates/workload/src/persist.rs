//! Plain-text workload persistence.
//!
//! Generated workloads (with their calibrated budgets) can be saved and
//! re-loaded so that an experiment is reproducible without re-running the
//! benchmark-calibration pass — and shareable across machines without any
//! serde dependency. The format is line-based:
//!
//! ```text
//! # rush workload v1
//! job WordCount arrival=130 priority=3 sensitivity=Sensitive budget=412 utility=sigmoid:412,3,0.024
//! task map 58.3
//! task reduce 41.0
//! ```

use rush_sim::job::{JobSpec, Phase, TaskSpec};
use rush_sim::Slot;
use rush_utility::{Sensitivity, TimeUtility};
use std::error::Error;
use std::fmt;

/// The format header line.
const HEADER: &str = "# rush workload v1";

/// Errors from parsing a workload file.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PersistError {
    /// Missing or wrong header line.
    BadHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A `task` line appeared before any `job` line.
    TaskBeforeJob {
        /// 1-based line number.
        line: usize,
    },
    /// A job failed validation when rebuilt.
    InvalidJob {
        /// The job's label.
        label: String,
        /// The underlying message.
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "missing '{HEADER}' header"),
            PersistError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            PersistError::TaskBeforeJob { line } => {
                write!(f, "line {line}: task before any job")
            }
            PersistError::InvalidJob { label, reason } => {
                write!(f, "job {label} invalid: {reason}")
            }
        }
    }
}

impl Error for PersistError {}

/// Renders a utility in the compact `kind:args` text form used by the v1
/// workload format *and* the `rush-serve` wire protocol (e.g.
/// `sigmoid:412,3,0.024`). Round-trips exactly through
/// [`utility_from_text`]: parameters print in Rust's shortest-round-trip
/// `f64` notation.
pub fn utility_to_text(u: &TimeUtility) -> String {
    match *u {
        TimeUtility::Linear { budget, weight, beta } => format!("linear:{budget},{weight},{beta}"),
        TimeUtility::Sigmoid { budget, weight, beta } => {
            format!("sigmoid:{budget},{weight},{beta}")
        }
        TimeUtility::Constant { weight } => format!("constant:{weight}"),
        TimeUtility::Step { budget, weight } => format!("step:{budget},{weight}"),
    }
}

/// Parses the compact `kind:args` utility form (see [`utility_to_text`]).
///
/// # Errors
///
/// A human-readable message naming the offending class or parameter
/// count; constructor validation errors pass through.
pub fn utility_from_text(s: &str) -> Result<TimeUtility, String> {
    let (kind, args) = s.split_once(':').unwrap_or((s, ""));
    let nums: Result<Vec<f64>, _> = if args.is_empty() {
        Ok(Vec::new())
    } else {
        args.split(',').map(|a| a.trim().parse::<f64>()).collect()
    };
    let nums = nums.map_err(|e| format!("bad utility number: {e}"))?;
    let got = nums.len();
    let need = |n: usize| -> Result<(), String> {
        if got == n {
            Ok(())
        } else {
            Err(format!("{kind} needs {n} parameters, got {got}"))
        }
    };
    match kind {
        "linear" => {
            need(3)?;
            TimeUtility::linear(nums[0], nums[1], nums[2]).map_err(|e| e.to_string())
        }
        "sigmoid" => {
            need(3)?;
            TimeUtility::sigmoid(nums[0], nums[1], nums[2]).map_err(|e| e.to_string())
        }
        "constant" => {
            need(1)?;
            TimeUtility::constant(nums[0]).map_err(|e| e.to_string())
        }
        "step" => {
            need(2)?;
            TimeUtility::step(nums[0], nums[1]).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown utility class {other}")),
    }
}

/// Serializes a workload to the v1 text format.
pub fn to_text(jobs: &[JobSpec]) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for job in jobs {
        let budget = job.budget().map_or("-".to_owned(), |b| b.to_string());
        out.push_str(&format!(
            "job {} arrival={} priority={} sensitivity={:?} budget={} utility={}\n",
            job.label(),
            job.arrival(),
            job.priority(),
            job.sensitivity(),
            budget,
            utility_to_text(job.utility()),
        ));
        for t in job.tasks() {
            let phase = match t.phase() {
                Phase::Map => "map",
                Phase::Reduce => "reduce",
            };
            match t.preferred_node() {
                Some(node) => out.push_str(&format!(
                    "task {phase} {} node={}\n",
                    t.base_runtime(),
                    node.0
                )),
                None => out.push_str(&format!("task {phase} {}\n", t.base_runtime())),
            }
        }
    }
    out
}

/// Parses a workload from the v1 text format.
///
/// # Errors
///
/// [`PersistError`] describing the first offending line.
pub fn from_text(text: &str) -> Result<Vec<JobSpec>, PersistError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(PersistError::BadHeader),
    }

    struct Pending {
        label: String,
        arrival: Slot,
        priority: u32,
        sensitivity: Sensitivity,
        budget: Option<Slot>,
        utility: TimeUtility,
        tasks: Vec<TaskSpec>,
    }
    let mut pending: Option<Pending> = None;
    let mut jobs = Vec::new();
    let finish = |p: Pending| -> Result<JobSpec, PersistError> {
        let mut b = JobSpec::builder(p.label.clone())
            .arrival(p.arrival)
            .priority(p.priority)
            .sensitivity(p.sensitivity)
            .utility(p.utility)
            .tasks(p.tasks);
        if let Some(budget) = p.budget {
            b = b.budget(budget);
        }
        b.build().map_err(|e| PersistError::InvalidJob { label: p.label, reason: e.to_string() })
    };

    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |reason: &str| PersistError::BadLine { line: line_no, reason: reason.into() };
        if let Some(rest) = line.strip_prefix("job ") {
            if let Some(p) = pending.take() {
                jobs.push(finish(p)?);
            }
            let mut parts = rest.split_whitespace();
            let label = parts.next().ok_or_else(|| bad("job needs a label"))?.to_owned();
            let mut arrival = 0;
            let mut priority = 1;
            let mut sensitivity = Sensitivity::Sensitive;
            let mut budget = None;
            let mut utility = None;
            for kv in parts {
                let (k, v) = kv.split_once('=').ok_or_else(|| bad("expected key=value"))?;
                match k {
                    "arrival" => {
                        arrival = v.parse().map_err(|_| bad("bad arrival"))?;
                    }
                    "priority" => {
                        priority = v.parse().map_err(|_| bad("bad priority"))?;
                    }
                    "sensitivity" => {
                        sensitivity = match v {
                            "Critical" => Sensitivity::Critical,
                            "Sensitive" => Sensitivity::Sensitive,
                            "Insensitive" => Sensitivity::Insensitive,
                            _ => return Err(bad("unknown sensitivity")),
                        };
                    }
                    "budget" => {
                        budget = if v == "-" {
                            None
                        } else {
                            Some(v.parse().map_err(|_| bad("bad budget"))?)
                        };
                    }
                    "utility" => {
                        utility = Some(
                            utility_from_text(v)
                                .map_err(|e| bad(&format!("bad utility: {e}")))?,
                        );
                    }
                    other => return Err(bad(&format!("unknown key {other}"))),
                }
            }
            let utility = utility.ok_or_else(|| bad("job needs utility="))?;
            pending =
                Some(Pending { label, arrival, priority, sensitivity, budget, utility, tasks: Vec::new() });
        } else if let Some(rest) = line.strip_prefix("task ") {
            let p = pending.as_mut().ok_or(PersistError::TaskBeforeJob { line: line_no })?;
            let mut parts = rest.split_whitespace();
            let phase = match parts.next() {
                Some("map") => Phase::Map,
                Some("reduce") => Phase::Reduce,
                _ => return Err(bad("task phase must be map|reduce")),
            };
            let runtime: f64 = parts
                .next()
                .ok_or_else(|| bad("task needs a runtime"))?
                .parse()
                .map_err(|_| bad("bad task runtime"))?;
            let mut spec = TaskSpec::new(runtime, phase);
            if let Some(extra) = parts.next() {
                let node = extra
                    .strip_prefix("node=")
                    .ok_or_else(|| bad("unexpected task token"))?
                    .parse::<u32>()
                    .map_err(|_| bad("bad node index"))?;
                spec = spec.with_preference(rush_sim::NodeId(node));
            }
            p.tasks.push(spec);
        } else {
            return Err(bad("expected 'job ...' or 'task ...'"));
        }
    }
    if let Some(p) = pending.take() {
        jobs.push(finish(p)?);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::generator::{generate, WorkloadConfig};
    use rush_sim::cluster::ClusterSpec;

    fn sample_jobs() -> Vec<JobSpec> {
        let exp = Experiment::new(ClusterSpec::homogeneous(2, 4).unwrap());
        let cfg = WorkloadConfig { jobs: 6, max_map_tasks: 8, seed: 5, ..Default::default() };
        generate(&cfg, &exp).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let jobs = sample_jobs();
        let text = to_text(&jobs);
        let back = from_text(&text).unwrap();
        assert_eq!(jobs.len(), back.len());
        for (a, b) in jobs.iter().zip(back.iter()) {
            assert_eq!(a.label(), b.label());
            assert_eq!(a.arrival(), b.arrival());
            assert_eq!(a.priority(), b.priority());
            assert_eq!(a.sensitivity(), b.sensitivity());
            assert_eq!(a.budget(), b.budget());
            assert_eq!(a.utility(), b.utility());
            assert_eq!(a.tasks().len(), b.tasks().len());
            for (ta, tb) in a.tasks().iter().zip(b.tasks().iter()) {
                assert_eq!(ta.phase(), tb.phase());
                assert!((ta.base_runtime() - tb.base_runtime()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn node_preferences_round_trip() {
        let job = JobSpec::builder("loc")
            .task(TaskSpec::new(5.0, Phase::Map).with_preference(rush_sim::NodeId(3)))
            .task(TaskSpec::new(7.0, Phase::Reduce))
            .utility(TimeUtility::constant(1.0).unwrap())
            .build()
            .unwrap();
        let text = to_text(std::slice::from_ref(&job));
        assert!(text.contains("node=3"));
        let back = from_text(&text).unwrap();
        assert_eq!(back[0].tasks()[0].preferred_node(), Some(rush_sim::NodeId(3)));
        assert_eq!(back[0].tasks()[1].preferred_node(), None);
        // Malformed extra token is rejected.
        let bad = format!("{HEADER}\njob x utility=constant:1\ntask map 5 rack=3\n");
        assert!(matches!(from_text(&bad), Err(PersistError::BadLine { .. })));
    }

    #[test]
    fn all_utility_classes_round_trip() {
        for u in [
            TimeUtility::linear(100.0, 5.0, 0.5).unwrap(),
            TimeUtility::sigmoid(100.0, 5.0, 0.5).unwrap(),
            TimeUtility::constant(3.0).unwrap(),
            TimeUtility::step(50.0, 2.0).unwrap(),
        ] {
            let text = utility_to_text(&u);
            let back = utility_from_text(&text).unwrap();
            assert_eq!(u, back, "{text}");
        }
    }

    #[test]
    fn header_required() {
        assert_eq!(from_text("job x utility=constant:1\n"), Err(PersistError::BadHeader));
        assert_eq!(from_text(""), Err(PersistError::BadHeader));
    }

    #[test]
    fn task_before_job_rejected() {
        let text = format!("{HEADER}\ntask map 10\n");
        assert!(matches!(from_text(&text), Err(PersistError::TaskBeforeJob { line: 2 })));
    }

    #[test]
    fn bad_lines_are_located() {
        let text = format!("{HEADER}\njob x utility=constant:1\ntask map ten\n");
        match from_text(&text) {
            Err(PersistError::BadLine { line: 3, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        let text = format!("{HEADER}\nnonsense\n");
        assert!(matches!(from_text(&text), Err(PersistError::BadLine { line: 2, .. })));
        let text = format!("{HEADER}\njob x utility=warp:1\ntask map 5\n");
        assert!(matches!(from_text(&text), Err(PersistError::BadLine { line: 2, .. })));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = format!(
            "{HEADER}\n\n# a comment\njob x utility=constant:2\ntask map 5\n\ntask reduce 3\n"
        );
        let jobs = from_text(&text).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].tasks().len(), 2);
        assert_eq!(jobs[0].reduce_tasks(), 1);
    }

    #[test]
    fn empty_job_reported_with_label() {
        let text = format!("{HEADER}\njob lonely utility=constant:1\n");
        match from_text(&text) {
            Err(PersistError::InvalidJob { label, .. }) => assert_eq!(label, "lonely"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        for e in [
            PersistError::BadHeader,
            PersistError::BadLine { line: 3, reason: "x".into() },
            PersistError::TaskBeforeJob { line: 2 },
            PersistError::InvalidJob { label: "l".into(), reason: "r".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

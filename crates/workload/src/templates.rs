//! The eight PUMA-like job templates.
//!
//! PUMA (Purdue MapReduce Benchmarks) spans CPU-bound counting jobs,
//! shuffle-heavy sorts and skewed join/classification workloads. We model
//! each template by its input-split size (which sets the map-task count for
//! a dataset), its reduce-task scaling, and per-phase task-runtime
//! distributions. Values are synthetic but preserve the heterogeneity the
//! paper relies on: task means spanning ~35–90 slots, symmetric and
//! right-skewed shapes, and different map/reduce balances.

use rand::Rng;
use rush_prob::dist::{Continuous, Gaussian, LogNormal};

/// The runtime distribution family of one task phase.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RuntimeDist {
    /// Symmetric Gaussian runtimes (CPU-bound phases).
    Gaussian {
        /// Mean runtime in slots.
        mean: f64,
        /// Standard deviation in slots.
        std: f64,
    },
    /// Right-skewed log-normal runtimes (I/O- or shuffle-bound phases,
    /// prone to stragglers).
    LogNormal {
        /// Mean runtime in slots.
        mean: f64,
        /// Standard deviation in slots.
        std: f64,
    },
}

impl RuntimeDist {
    /// Draws one task runtime (slots, ≥ 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match *self {
            RuntimeDist::Gaussian { mean, std } => {
                Gaussian::new(mean, std).expect("template params valid").sample(rng)
            }
            RuntimeDist::LogNormal { mean, std } => {
                LogNormal::from_mean_std(mean, std).expect("template params valid").sample(rng)
            }
        };
        v.max(1.0)
    }

    /// The distribution's mean runtime.
    pub fn mean(&self) -> f64 {
        match *self {
            RuntimeDist::Gaussian { mean, .. } | RuntimeDist::LogNormal { mean, .. } => mean,
        }
    }
}

/// One job template.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobTemplate {
    /// Template name (PUMA workload).
    pub name: &'static str,
    /// Input-split size: one map task per `split_mb` of dataset.
    pub split_mb: u32,
    /// Map-task runtime distribution.
    pub map_runtime: RuntimeDist,
    /// Reduce-task runtime distribution.
    pub reduce_runtime: RuntimeDist,
    /// Reduce tasks per 10 GB of input (minimum 1).
    pub reduces_per_10gb: u32,
}

impl JobTemplate {
    /// Number of map tasks for a dataset of `gb` gigabytes, capped at
    /// `max_maps`.
    pub fn map_tasks(&self, gb: f64, max_maps: usize) -> usize {
        let maps = (gb * 1024.0 / self.split_mb as f64).ceil() as usize;
        maps.clamp(1, max_maps.max(1))
    }

    /// Number of reduce tasks for a dataset of `gb` gigabytes.
    pub fn reduce_tasks(&self, gb: f64) -> usize {
        ((self.reduces_per_10gb as f64 * gb / 10.0).round() as usize).max(1)
    }
}

/// The eight templates of the paper's evaluation mix.
pub fn puma_templates() -> [JobTemplate; 8] {
    [
        JobTemplate {
            name: "WordCount",
            split_mb: 128,
            map_runtime: RuntimeDist::Gaussian { mean: 55.0, std: 15.0 },
            reduce_runtime: RuntimeDist::Gaussian { mean: 40.0, std: 10.0 },
            reduces_per_10gb: 4,
        },
        JobTemplate {
            name: "TeraSort",
            split_mb: 128,
            map_runtime: RuntimeDist::Gaussian { mean: 45.0, std: 10.0 },
            reduce_runtime: RuntimeDist::LogNormal { mean: 90.0, std: 45.0 },
            reduces_per_10gb: 8,
        },
        JobTemplate {
            name: "InvertedIndex",
            split_mb: 128,
            map_runtime: RuntimeDist::Gaussian { mean: 70.0, std: 20.0 },
            reduce_runtime: RuntimeDist::Gaussian { mean: 60.0, std: 20.0 },
            reduces_per_10gb: 4,
        },
        JobTemplate {
            name: "SelfJoin",
            split_mb: 256,
            map_runtime: RuntimeDist::LogNormal { mean: 60.0, std: 30.0 },
            reduce_runtime: RuntimeDist::LogNormal { mean: 75.0, std: 35.0 },
            reduces_per_10gb: 4,
        },
        JobTemplate {
            name: "SequenceCount",
            split_mb: 128,
            map_runtime: RuntimeDist::Gaussian { mean: 65.0, std: 18.0 },
            reduce_runtime: RuntimeDist::Gaussian { mean: 50.0, std: 15.0 },
            reduces_per_10gb: 4,
        },
        JobTemplate {
            name: "HistogramMovies",
            split_mb: 256,
            map_runtime: RuntimeDist::Gaussian { mean: 35.0, std: 8.0 },
            reduce_runtime: RuntimeDist::Gaussian { mean: 30.0, std: 8.0 },
            reduces_per_10gb: 1,
        },
        JobTemplate {
            name: "HistogramRatings",
            split_mb: 256,
            map_runtime: RuntimeDist::Gaussian { mean: 38.0, std: 9.0 },
            reduce_runtime: RuntimeDist::Gaussian { mean: 32.0, std: 9.0 },
            reduces_per_10gb: 1,
        },
        JobTemplate {
            name: "MovieClassification",
            split_mb: 256,
            map_runtime: RuntimeDist::LogNormal { mean: 80.0, std: 40.0 },
            reduce_runtime: RuntimeDist::Gaussian { mean: 55.0, std: 15.0 },
            reduces_per_10gb: 2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_prob::rng::seeded_rng;

    #[test]
    fn eight_distinct_templates() {
        let ts = puma_templates();
        let mut names: Vec<&str> = ts.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn map_task_counts_scale_with_dataset() {
        let wc = puma_templates()[0];
        assert_eq!(wc.map_tasks(1.0, 1000), 8); // 1024/128
        assert_eq!(wc.map_tasks(10.0, 1000), 80);
        assert_eq!(wc.map_tasks(10.0, 48), 48); // cap
        assert_eq!(wc.map_tasks(0.01, 1000), 1); // floor
    }

    #[test]
    fn reduce_task_counts() {
        let ts = puma_templates();
        let terasort = ts[1];
        assert_eq!(terasort.reduce_tasks(10.0), 8);
        assert_eq!(terasort.reduce_tasks(1.0), 1); // floor at 1
        let hist = ts[5];
        assert_eq!(hist.reduce_tasks(10.0), 1);
    }

    #[test]
    fn runtime_samples_positive_and_near_mean() {
        let mut rng = seeded_rng(3);
        for t in puma_templates() {
            let n = 4000;
            let mean: f64 =
                (0..n).map(|_| t.map_runtime.sample(&mut rng)).sum::<f64>() / n as f64;
            let expected = t.map_runtime.mean();
            assert!(
                (mean - expected).abs() / expected < 0.06,
                "{}: sampled {mean} vs {expected}",
                t.name
            );
        }
    }

    #[test]
    fn lognormal_templates_are_right_skewed() {
        let mut rng = seeded_rng(4);
        let sj = puma_templates()[3];
        let mut samples: Vec<f64> = (0..4000).map(|_| sj.map_runtime.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[2000];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(median < mean, "median {median} < mean {mean}");
    }

    #[test]
    fn samples_are_at_least_one_slot() {
        let mut rng = seeded_rng(5);
        let d = RuntimeDist::Gaussian { mean: 2.0, std: 10.0 };
        for _ in 0..500 {
            assert!(d.sample(&mut rng) >= 1.0);
        }
    }
}

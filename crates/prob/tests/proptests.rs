//! Property-based tests for the probability substrate.

use proptest::prelude::*;
use rush_prob::dist::{Continuous, Exponential, Gaussian, LogNormal, Uniform};
use rush_prob::stats::{percentile, Ecdf, FiveNumber};
use rush_prob::Pmf;

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, 1..64).prop_filter("non-zero mass", |ws| {
        ws.iter().sum::<f64>() > 1e-6
    })
}

proptest! {
    #[test]
    fn pmf_always_normalized(ws in weights_strategy()) {
        let p = Pmf::from_weights(ws, 1).unwrap();
        prop_assert!(p.is_normalized());
    }

    #[test]
    fn pmf_cdf_monotone(ws in weights_strategy()) {
        let p = Pmf::from_weights(ws, 1).unwrap();
        let mut prev = 0.0;
        for l in 0..p.bins() {
            let c = p.cdf(l);
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
        prop_assert!((p.cdf(p.bins() - 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_quantile_inverts_cdf(ws in weights_strategy(), theta in 0.01f64..0.99) {
        let p = Pmf::from_weights(ws, 1).unwrap();
        let l = p.quantile_bin(theta);
        // CDF at quantile covers theta...
        prop_assert!(p.cdf(l) + 1e-9 >= theta);
        // ...and is the smallest such bin.
        if l > 0 {
            prop_assert!(p.cdf(l - 1) < theta + 1e-9);
        }
    }

    #[test]
    fn kl_divergence_nonnegative(
        ws1 in weights_strategy(),
        ws2 in weights_strategy(),
    ) {
        let n = ws1.len().min(ws2.len());
        let p = Pmf::from_weights(ws1[..n].to_vec(), 1);
        let q = Pmf::from_weights(ws2[..n].to_vec(), 1);
        if let (Ok(p), Ok(q)) = (p, q) {
            let q = q.with_support_floor(1e-12).unwrap();
            let d = p.kl_divergence(&q).unwrap();
            prop_assert!(d >= 0.0);
        }
    }

    #[test]
    fn kl_self_divergence_zero(ws in weights_strategy()) {
        let p = Pmf::from_weights(ws, 1).unwrap();
        prop_assert!(p.kl_divergence(&p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn rebin_preserves_total_mass(ws in weights_strategy(), factor in 1u64..8) {
        let p = Pmf::from_weights(ws, 1).unwrap();
        let bins = (p.bins() as u64 / factor + 1) as usize;
        let q = p.rebin(bins, factor).unwrap();
        prop_assert!(q.is_normalized());
        // Mean is preserved up to one new-bin width of quantization error.
        prop_assert!((q.mean() - p.mean()).abs() <= factor as f64 + 1e-9);
    }

    #[test]
    fn gaussian_quantize_mass_sums_to_one(
        mean in 1.0f64..500.0,
        std in 0.5f64..100.0,
    ) {
        let g = Gaussian::new(mean, std).unwrap();
        let pmf = g.quantize(1024, 1).unwrap();
        prop_assert!(pmf.is_normalized());
    }

    #[test]
    fn continuous_cdfs_monotone(
        x1 in -100.0f64..100.0,
        x2 in -100.0f64..100.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let g = Gaussian::new(10.0, 5.0).unwrap();
        prop_assert!(g.cdf(lo) <= g.cdf(hi) + 1e-12);
        let u = Uniform::new(-50.0, 50.0).unwrap();
        prop_assert!(u.cdf(lo) <= u.cdf(hi) + 1e-12);
        let e = Exponential::new(0.1).unwrap();
        prop_assert!(e.cdf(lo) <= e.cdf(hi) + 1e-12);
        let ln = LogNormal::new(1.0, 0.5).unwrap();
        prop_assert!(ln.cdf(lo) <= ln.cdf(hi) + 1e-12);
    }

    #[test]
    fn percentile_is_within_range(xs in prop::collection::vec(-1e6f64..1e6, 1..128), q in 0.0f64..1.0) {
        let p = percentile(&xs, q);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
    }

    #[test]
    fn five_number_ordering(xs in prop::collection::vec(-1e4f64..1e4, 2..128)) {
        let s = FiveNumber::from_samples(&xs);
        prop_assert!(s.whisker_lo <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.whisker_hi + 1e-9);
    }

    #[test]
    fn ecdf_monotone_and_bounded(xs in prop::collection::vec(-1e4f64..1e4, 0..64)) {
        let e = Ecdf::from_samples(&xs);
        let mut prev = 0.0;
        for x in [-2e4, -1e4, 0.0, 1e4, 2e4] {
            let v = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v + 1e-12 >= prev);
            prev = v;
        }
    }

    #[test]
    fn lognormal_mean_std_round_trip(mean in 1.0f64..1e4, cv in 0.05f64..2.0) {
        let std = mean * cv;
        let ln = LogNormal::from_mean_std(mean, std).unwrap();
        prop_assert!((ln.mean() - mean).abs() / mean < 1e-9);
        prop_assert!((ln.variance().sqrt() - std).abs() / std < 1e-6);
    }
}

/// Oracle for the cached CDF: the naive left-to-right partial sum over
/// `probs()`, the computation the cache replaced. Summation order matches
/// `prefix_sums`, so equality below is exact (`to_bits`), not approximate.
fn check_cdf_cache(p: &Pmf) -> Result<(), TestCaseError> {
    let mut acc = 0.0f64;
    for l in 0..p.bins() {
        acc += p.probs()[l];
        prop_assert_eq!(
            p.head_mass(l).to_bits(),
            acc.to_bits(),
            "head_mass({}) diverged from naive prefix sum",
            l
        );
        let expect_cdf = if l + 1 >= p.bins() { 1.0 } else { acc.min(1.0) };
        prop_assert_eq!(p.cdf(l).to_bits(), expect_cdf.to_bits(), "cdf({}) diverged", l);
    }
    // Past-the-end queries saturate.
    prop_assert_eq!(p.cdf(p.bins() + 7), 1.0);
    prop_assert_eq!(p.head_mass(p.bins() + 7).to_bits(), acc.to_bits());
    Ok(())
}

proptest! {
    #[test]
    fn cdf_cache_matches_naive_from_weights(ws in weights_strategy(), bw in 1u64..16) {
        check_cdf_cache(&Pmf::from_weights(ws, bw).unwrap())?;
    }

    #[test]
    fn cdf_cache_matches_naive_after_support_floor(
        ws in weights_strategy(),
        floor in 1e-12f64..1e-3,
    ) {
        let p = Pmf::from_weights(ws, 1).unwrap().with_support_floor(floor).unwrap();
        check_cdf_cache(&p)?;
    }

    #[test]
    fn cdf_cache_matches_naive_after_rebin(
        ws in weights_strategy(),
        bins in 1usize..96,
        bw in 1u64..8,
    ) {
        let p = Pmf::from_weights(ws, 1).unwrap();
        check_cdf_cache(&p.rebin(bins, bw).unwrap())?;
    }

    #[test]
    fn cdf_cache_matches_naive_from_samples(
        samples in prop::collection::vec(1u64..500, 1..64),
        min_bins in 1usize..64,
        bw in 1u64..8,
    ) {
        check_cdf_cache(&Pmf::from_samples(&samples, min_bins, bw).unwrap())?;
    }

    #[test]
    fn cdf_cache_matches_naive_impulse_and_uniform(bins in 1usize..64, bin in 0usize..64) {
        check_cdf_cache(&Pmf::uniform(bins, 1).unwrap())?;
        if bin < bins {
            check_cdf_cache(&Pmf::impulse(bins, bin, 1).unwrap())?;
        }
    }
}

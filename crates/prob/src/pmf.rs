//! Quantized probability mass functions over demand bins.
//!
//! A [`Pmf`] describes the distribution of a job's total demand `v` in
//! *container time slots*. Bin `l` carries the probability that `v` falls in
//! `[l·w, (l+1)·w)` where `w` is the [bin width](Pmf::bin_width). The RUSH
//! algorithms (Algorithms 1–2 of the paper) operate directly on this
//! representation: the REM closed form re-normalizes bin groups and the WCDE
//! bisection searches over bin indices.

use crate::ProbError;

/// Tolerance used when checking that probabilities sum to one.
pub const NORMALIZATION_EPS: f64 = 1e-9;

/// A quantized probability mass function over `0..bins()` demand bins.
///
/// Invariants (enforced by every constructor):
/// * at least one bin;
/// * every probability is finite and non-negative;
/// * probabilities sum to 1 within [`NORMALIZATION_EPS`] after construction.
///
/// # Example
///
/// ```
/// use rush_prob::Pmf;
///
/// # fn main() -> Result<(), rush_prob::ProbError> {
/// let pmf = Pmf::from_weights(vec![0.0, 1.0, 3.0], 1)?;
/// assert_eq!(pmf.bins(), 3);
/// assert!((pmf.prob(2) - 0.75).abs() < 1e-12);
/// assert_eq!(pmf.quantile(0.5), 2);
/// # Ok(())
/// # }
/// ```
/// Invariant: `cdf[l]` is the running left-to-right prefix sum of
/// `probs[0..=l]`, recomputed by every constructor. Caching it here turns
/// the REM head-mass query into O(1) and quantile search into O(log bins),
/// which is what keeps the WCDE bisection at O(log bins) per solve (the
/// Fig. 5 scheduling-cost hot path).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pmf {
    probs: Vec<f64>,
    cdf: Vec<f64>,
    bin_width: u64,
}

/// Left-to-right running prefix sums of `probs` — the same summation order
/// as `probs[..=l].iter().sum()`, so cached values are bit-identical to
/// naive on-demand sums.
fn prefix_sums(probs: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    probs
        .iter()
        .map(|&p| {
            acc += p;
            acc
        })
        .collect()
}

impl Pmf {
    /// Builds a PMF from non-negative weights, normalizing them to sum to 1.
    ///
    /// `bin_width` is the demand (container·slots) covered by each bin and
    /// must be at least 1.
    ///
    /// # Errors
    ///
    /// * [`ProbError::EmptyPmf`] if `weights` is empty.
    /// * [`ProbError::InvalidWeight`] if any weight is negative or non-finite.
    /// * [`ProbError::ZeroMass`] if all weights are zero.
    /// * [`ProbError::InvalidParameter`] if `bin_width == 0`.
    pub fn from_weights(weights: Vec<f64>, bin_width: u64) -> Result<Self, ProbError> {
        if weights.is_empty() {
            return Err(ProbError::EmptyPmf);
        }
        if bin_width == 0 {
            return Err(ProbError::InvalidParameter { name: "bin_width", value: 0.0 });
        }
        for (bin, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(ProbError::InvalidWeight { bin, value: w });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ProbError::ZeroMass);
        }
        let probs: Vec<f64> = weights.into_iter().map(|w| w / total).collect();
        let cdf = prefix_sums(&probs);
        let out = Pmf { probs, cdf, bin_width };
        out.debug_check_invariants();
        Ok(out)
    }

    /// Builds an impulse (degenerate) PMF placing all mass on one bin.
    ///
    /// The mean-time estimator of the paper reports exactly this shape: an
    /// impulse at `mean task runtime × pending tasks`.
    ///
    /// # Errors
    ///
    /// [`ProbError::EmptyPmf`] if `bins == 0`, [`ProbError::InvalidParameter`]
    /// if `bin_width == 0` or `bin >= bins`.
    pub fn impulse(bins: usize, bin: usize, bin_width: u64) -> Result<Self, ProbError> {
        if bins == 0 {
            return Err(ProbError::EmptyPmf);
        }
        if bin >= bins {
            return Err(ProbError::InvalidParameter { name: "bin", value: bin as f64 });
        }
        if bin_width == 0 {
            return Err(ProbError::InvalidParameter { name: "bin_width", value: 0.0 });
        }
        let mut probs = vec![0.0; bins];
        probs[bin] = 1.0;
        let cdf = prefix_sums(&probs);
        let out = Pmf { probs, cdf, bin_width };
        out.debug_check_invariants();
        Ok(out)
    }

    /// Builds the uniform PMF over `bins` bins.
    ///
    /// # Errors
    ///
    /// [`ProbError::EmptyPmf`] if `bins == 0`, [`ProbError::InvalidParameter`]
    /// if `bin_width == 0`.
    pub fn uniform(bins: usize, bin_width: u64) -> Result<Self, ProbError> {
        Self::from_weights(vec![1.0; bins.max(if bins == 0 { 0 } else { bins })], bin_width)
            .map_err(|e| if bins == 0 { ProbError::EmptyPmf } else { e })
    }

    /// Builds a PMF by histogramming integer demand samples into unit bins,
    /// padding the support up to `min_bins` bins.
    ///
    /// # Errors
    ///
    /// [`ProbError::ZeroMass`] if `samples` is empty and `min_bins == 0`;
    /// otherwise an empty sample set yields an impulse at bin 0.
    pub fn from_samples(samples: &[u64], min_bins: usize, bin_width: u64) -> Result<Self, ProbError> {
        if bin_width == 0 {
            return Err(ProbError::InvalidParameter { name: "bin_width", value: 0.0 });
        }
        if samples.is_empty() {
            if min_bins == 0 {
                return Err(ProbError::ZeroMass);
            }
            return Self::impulse(min_bins, 0, bin_width);
        }
        let max_bin = samples.iter().map(|&s| (s / bin_width) as usize).max().unwrap_or(0);
        let bins = (max_bin + 1).max(min_bins.max(1));
        let mut weights = vec![0.0; bins];
        for &s in samples {
            weights[(s / bin_width) as usize] += 1.0;
        }
        Self::from_weights(weights, bin_width)
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.probs.len()
    }

    /// Demand (container·slots) covered by one bin.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Largest representable demand value, `bins() · bin_width()`.
    pub fn max_value(&self) -> u64 {
        self.probs.len() as u64 * self.bin_width
    }

    /// Probability mass at bin `l` (0 if out of range).
    pub fn prob(&self, l: usize) -> f64 {
        self.probs.get(l).copied().unwrap_or(0.0)
    }

    /// Borrow the underlying probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Iterates over `(bin, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.probs.iter().copied().enumerate()
    }

    /// Cumulative probability `P(bin ≤ l)`, the quantized CDF `Φ(l)`.
    ///
    /// Returns 1 for `l ≥ bins() − 1`. O(1): reads the cached prefix sums.
    pub fn cdf(&self, l: usize) -> f64 {
        if l + 1 >= self.cdf.len() {
            return 1.0;
        }
        self.cdf[l].min(1.0)
    }

    /// Head mass `Σ_{i≤l} p_i` as the raw cached prefix sum, uncapped.
    ///
    /// Unlike [`Pmf::cdf`] this is exactly the left-to-right partial sum —
    /// the quantity the REM closed form divides by — so callers replacing a
    /// manual `probs().iter().take(l + 1).sum()` get bit-identical values
    /// in O(1).
    pub fn head_mass(&self, l: usize) -> f64 {
        match self.cdf.get(l) {
            Some(&c) => c,
            None => *self.cdf.last().expect("Pmf has at least one bin"),
        }
    }

    /// The `θ`-quantile bin index `Φ⁻¹(θ)`: the smallest `l` with
    /// `P(bin ≤ l) ≥ θ` (within [`NORMALIZATION_EPS`]).
    ///
    /// Out-of-range `θ` is clamped to `[0, 1]`. O(log bins): binary search
    /// over the cached prefix sums (non-decreasing, so the predicate is
    /// monotone and the result matches the former linear scan exactly).
    pub fn quantile_bin(&self, theta: f64) -> usize {
        let theta = theta.clamp(0.0, 1.0);
        let l = self.cdf.partition_point(|&c| c + NORMALIZATION_EPS < theta);
        l.min(self.cdf.len() - 1)
    }

    /// The `θ`-quantile in demand units (container·slots):
    /// `quantile_bin(θ) · bin_width()`.
    pub fn quantile(&self, theta: f64) -> u64 {
        self.quantile_bin(theta) as u64 * self.bin_width
    }

    /// Mean demand in container·slots.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(l, &p)| p * (l as f64) * self.bin_width as f64)
            .sum()
    }

    /// Variance of the demand in (container·slots)².
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.probs
            .iter()
            .enumerate()
            .map(|(l, &p)| {
                let v = (l as f64) * self.bin_width as f64;
                p * (v - mean) * (v - mean)
            })
            .sum()
    }

    /// Kullback–Leibler divergence `D(self ‖ reference)` in nats:
    /// `Σ_l p_l · ln(p_l / φ_l)` with the conventions `0·ln(0/φ) = 0` and
    /// `p·ln(p/0) = +∞` for `p > 0`.
    ///
    /// This is the "relative entropy" distance bounding the ambiguity set in
    /// constraint (5) of the paper.
    ///
    /// # Errors
    ///
    /// [`ProbError::ShapeMismatch`] if bin counts or widths differ.
    pub fn kl_divergence(&self, reference: &Pmf) -> Result<f64, ProbError> {
        if self.probs.len() != reference.probs.len() || self.bin_width != reference.bin_width {
            return Err(ProbError::ShapeMismatch {
                left: self.probs.len(),
                right: reference.probs.len(),
            });
        }
        let mut d = 0.0;
        for (p, q) in self.probs.iter().zip(reference.probs.iter()) {
            if *p > 0.0 {
                if *q <= 0.0 {
                    return Ok(f64::INFINITY);
                }
                d += p * (p / q).ln();
            }
        }
        // Floating-point rounding can produce a tiny negative value for
        // nearly identical distributions; KL divergence is non-negative.
        Ok(d.max(0.0))
    }

    /// Returns a copy with every zero bin replaced by `floor` mass and
    /// re-normalized.
    ///
    /// The WCDE machinery needs reference PMFs with full support: a zero bin
    /// makes the KL ball degenerate there (any worst case avoiding the bin is
    /// "free"). Estimators call this before handing a reference distribution
    /// to the optimizer.
    ///
    /// # Errors
    ///
    /// [`ProbError::InvalidParameter`] if `floor` is not a positive finite
    /// number.
    pub fn with_support_floor(&self, floor: f64) -> Result<Self, ProbError> {
        if !floor.is_finite() || floor <= 0.0 {
            return Err(ProbError::InvalidParameter { name: "floor", value: floor });
        }
        let weights = self.probs.iter().map(|&p| p.max(floor)).collect();
        Self::from_weights(weights, self.bin_width)
    }

    /// Re-bins this PMF onto `bins` bins of width `bin_width`, aggregating or
    /// padding mass as needed. Mass beyond the new range accumulates in the
    /// last bin.
    ///
    /// # Errors
    ///
    /// [`ProbError::EmptyPmf`] if `bins == 0`; [`ProbError::InvalidParameter`]
    /// if `bin_width == 0`.
    pub fn rebin(&self, bins: usize, bin_width: u64) -> Result<Self, ProbError> {
        if bins == 0 {
            return Err(ProbError::EmptyPmf);
        }
        if bin_width == 0 {
            return Err(ProbError::InvalidParameter { name: "bin_width", value: 0.0 });
        }
        let mut weights = vec![0.0; bins];
        for (l, &p) in self.probs.iter().enumerate() {
            let value = l as u64 * self.bin_width;
            let new_bin = ((value / bin_width) as usize).min(bins - 1);
            weights[new_bin] += p;
        }
        Self::from_weights(weights, bin_width)
    }

    /// Total mass in bins `0..=l` is at most `theta` (used as the REM
    /// feasibility predicate, constraint (10) of the paper).
    pub fn head_mass_at_most(&self, l: usize, theta: f64) -> bool {
        self.cdf(l) <= theta + NORMALIZATION_EPS
    }

    /// Verifies the normalization invariant; `true` for every valid [`Pmf`].
    pub fn is_normalized(&self) -> bool {
        (self.probs.iter().sum::<f64>() - 1.0).abs() < 1e-6
    }

    /// Contract checks behind the `strict-invariants` feature: mass ≈ 1 and
    /// the cached CDF is a monotone non-decreasing prefix sum reaching the
    /// total mass. `debug_assert!`-backed, so even with the feature enabled
    /// release builds compile this to nothing.
    #[cfg(feature = "strict-invariants")]
    fn debug_check_invariants(&self) {
        debug_assert!(!self.probs.is_empty(), "Pmf must have at least one bin");
        debug_assert!(self.bin_width >= 1, "Pmf bin width must be positive");
        debug_assert!(
            self.probs.iter().all(|p| p.is_finite() && *p >= 0.0),
            "Pmf probabilities must be finite and non-negative"
        );
        debug_assert!(self.is_normalized(), "Pmf mass must be ~1");
        debug_assert_eq!(self.probs.len(), self.cdf.len(), "Pmf CDF cache length mismatch");
        debug_assert!(
            // bound: windows(2) yields exactly two elements
            self.cdf.windows(2).all(|w| w[0] <= w[1]),
            "Pmf CDF must be monotone non-decreasing"
        );
        debug_assert!(
            (self.cdf.last().copied().unwrap_or(0.0) - 1.0).abs() < 1e-6,
            "Pmf CDF must reach total mass ~1"
        );
    }

    #[cfg(not(feature = "strict-invariants"))]
    #[inline(always)]
    fn debug_check_invariants(&self) {}
}

impl AsRef<[f64]> for Pmf {
    fn as_ref(&self) -> &[f64] {
        &self.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pmf(ws: &[f64]) -> Pmf {
        Pmf::from_weights(ws.to_vec(), 1).unwrap()
    }

    #[test]
    fn from_weights_normalizes() {
        let p = pmf(&[1.0, 1.0, 2.0]);
        assert!(p.is_normalized());
        assert!((p.prob(0) - 0.25).abs() < 1e-12);
        assert!((p.prob(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_weights_rejects_empty() {
        assert_eq!(Pmf::from_weights(vec![], 1), Err(ProbError::EmptyPmf));
    }

    #[test]
    fn from_weights_rejects_negative() {
        let err = Pmf::from_weights(vec![1.0, -0.5], 1).unwrap_err();
        assert!(matches!(err, ProbError::InvalidWeight { bin: 1, .. }));
    }

    #[test]
    fn from_weights_rejects_nan() {
        let err = Pmf::from_weights(vec![f64::NAN], 1).unwrap_err();
        assert!(matches!(err, ProbError::InvalidWeight { bin: 0, .. }));
    }

    #[test]
    fn from_weights_rejects_zero_mass() {
        assert_eq!(Pmf::from_weights(vec![0.0, 0.0], 1), Err(ProbError::ZeroMass));
    }

    #[test]
    fn from_weights_rejects_zero_width() {
        let err = Pmf::from_weights(vec![1.0], 0).unwrap_err();
        assert!(matches!(err, ProbError::InvalidParameter { name: "bin_width", .. }));
    }

    #[test]
    fn impulse_places_all_mass() {
        let p = Pmf::impulse(10, 7, 1).unwrap();
        assert_eq!(p.prob(7), 1.0);
        assert_eq!(p.quantile_bin(0.5), 7);
        assert_eq!(p.quantile_bin(0.999), 7);
        assert_eq!(p.mean(), 7.0);
        assert_eq!(p.variance(), 0.0);
    }

    #[test]
    fn impulse_rejects_out_of_range_bin() {
        assert!(Pmf::impulse(5, 5, 1).is_err());
        assert!(Pmf::impulse(0, 0, 1).is_err());
    }

    #[test]
    fn uniform_has_equal_mass() {
        let p = Pmf::uniform(4, 1).unwrap();
        for l in 0..4 {
            assert!((p.prob(l) - 0.25).abs() < 1e-12);
        }
        assert!(Pmf::uniform(0, 1).is_err());
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let p = pmf(&[1.0, 2.0, 3.0, 4.0]);
        let mut prev = 0.0;
        for l in 0..p.bins() {
            let c = p.cdf(l);
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(p.cdf(3), 1.0);
        assert_eq!(p.cdf(100), 1.0);
    }

    #[test]
    fn quantile_matches_cdf() {
        let p = pmf(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(p.quantile_bin(0.05), 0);
        assert_eq!(p.quantile_bin(0.1), 0);
        assert_eq!(p.quantile_bin(0.11), 1);
        assert_eq!(p.quantile_bin(0.3), 1);
        assert_eq!(p.quantile_bin(0.6), 2);
        assert_eq!(p.quantile_bin(1.0), 3);
    }

    #[test]
    fn quantile_scales_by_bin_width() {
        let p = Pmf::from_weights(vec![0.5, 0.5], 30).unwrap();
        assert_eq!(p.quantile(0.9), 30);
        assert_eq!(p.quantile(0.4), 0);
    }

    #[test]
    fn quantile_clamps_theta() {
        let p = pmf(&[0.5, 0.5]);
        assert_eq!(p.quantile_bin(-3.0), 0);
        assert_eq!(p.quantile_bin(7.0), 1);
    }

    #[test]
    fn mean_and_variance_of_known_pmf() {
        // P(0)=0.5, P(2)=0.5 → mean 1, var 1.
        let p = pmf(&[1.0, 0.0, 1.0]);
        assert!((p.mean() - 1.0).abs() < 1e-12);
        assert!((p.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_of_identical_is_zero() {
        let p = pmf(&[1.0, 2.0, 3.0]);
        assert_eq!(p.kl_divergence(&p).unwrap(), 0.0);
    }

    #[test]
    fn kl_divergence_is_positive_for_different() {
        let p = pmf(&[3.0, 1.0]);
        let q = pmf(&[1.0, 3.0]);
        let d = p.kl_divergence(&q).unwrap();
        assert!(d > 0.0);
        // KL(p||q) for p=(0.75,0.25), q=(0.25,0.75):
        let expect = 0.75 * (3.0f64).ln() + 0.25 * (1.0f64 / 3.0).ln();
        assert!((d - expect).abs() < 1e-12);
    }

    #[test]
    fn kl_divergence_infinite_when_reference_lacks_support() {
        let p = pmf(&[0.5, 0.5]);
        let q = pmf(&[1.0, 0.0]);
        assert_eq!(p.kl_divergence(&q).unwrap(), f64::INFINITY);
        // but the reverse is finite: q has no mass where p lacks support.
        assert!(q.kl_divergence(&p).unwrap().is_finite());
    }

    #[test]
    fn kl_divergence_rejects_shape_mismatch() {
        let p = pmf(&[1.0, 1.0]);
        let q = pmf(&[1.0, 1.0, 1.0]);
        assert!(matches!(p.kl_divergence(&q), Err(ProbError::ShapeMismatch { .. })));
        let r = Pmf::from_weights(vec![1.0, 1.0], 2).unwrap();
        assert!(matches!(p.kl_divergence(&r), Err(ProbError::ShapeMismatch { .. })));
    }

    #[test]
    fn support_floor_fills_zeros() {
        let p = pmf(&[1.0, 0.0, 1.0]);
        let q = p.with_support_floor(1e-9).unwrap();
        assert!(q.prob(1) > 0.0);
        assert!(q.is_normalized());
        assert!(p.with_support_floor(0.0).is_err());
        assert!(p.with_support_floor(f64::NAN).is_err());
    }

    #[test]
    fn from_samples_histograms() {
        let p = Pmf::from_samples(&[1, 1, 2, 5], 0, 1).unwrap();
        assert_eq!(p.bins(), 6);
        assert!((p.prob(1) - 0.5).abs() < 1e-12);
        assert!((p.prob(5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_samples_respects_min_bins_and_width() {
        let p = Pmf::from_samples(&[10], 20, 2).unwrap();
        assert_eq!(p.bins(), 20);
        assert_eq!(p.prob(5), 1.0); // 10 / width 2 = bin 5
    }

    #[test]
    fn from_samples_empty_with_min_bins_is_impulse_at_zero() {
        let p = Pmf::from_samples(&[], 4, 1).unwrap();
        assert_eq!(p.prob(0), 1.0);
        assert!(Pmf::from_samples(&[], 0, 1).is_err());
    }

    #[test]
    fn rebin_preserves_mass() {
        let p = pmf(&[1.0, 1.0, 1.0, 1.0]);
        let q = p.rebin(2, 2).unwrap();
        assert_eq!(q.bins(), 2);
        assert!((q.prob(0) - 0.5).abs() < 1e-12);
        assert!(q.is_normalized());
    }

    #[test]
    fn rebin_clamps_overflow_to_last_bin() {
        let p = pmf(&[0.0, 0.0, 0.0, 1.0]); // mass at value 3
        let q = p.rebin(2, 1).unwrap(); // only values 0..2 representable
        assert_eq!(q.prob(1), 1.0);
    }

    #[test]
    fn head_mass_predicate() {
        let p = pmf(&[0.2, 0.2, 0.6]);
        assert!(p.head_mass_at_most(0, 0.2));
        assert!(p.head_mass_at_most(1, 0.4));
        assert!(!p.head_mass_at_most(1, 0.3));
    }

    #[test]
    fn as_ref_exposes_probs() {
        let p = pmf(&[1.0, 3.0]);
        let s: &[f64] = p.as_ref();
        assert_eq!(s.len(), 2);
    }
}

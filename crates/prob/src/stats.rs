//! Descriptive statistics used by the evaluation harness.
//!
//! The paper's figures are boxplots (Fig. 4), empirical CDFs (Fig. 6) and
//! averaged series (Figs. 3 and 5); this module provides the five-number
//! summaries, percentiles and empirical CDFs behind them.

/// Sample mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (`n − 1` denominator); 0 for fewer than two
/// samples.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// The `q`-th percentile (`q ∈ [0, 1]`) with linear interpolation between
/// order statistics (the "R-7" definition used by NumPy's default).
///
/// # Panics
///
/// Panics if `xs` is empty or contains NaN, or `q` is outside `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "percentile q must be in [0,1], got {q}");
    assert!(xs.iter().all(|x| !x.is_nan()), "percentile of NaN sample");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Five-number summary with Tukey outliers, as rendered by a boxplot.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FiveNumber {
    /// Lower whisker: smallest sample ≥ `q1 − 1.5·IQR`.
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker: largest sample ≤ `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Samples outside the whiskers.
    pub outliers: Vec<f64>,
}

impl FiveNumber {
    /// Computes the summary.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn from_samples(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "boxplot of empty sample");
        let q1 = percentile(xs, 0.25);
        let median = percentile(xs, 0.5);
        let q3 = percentile(xs, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let mut whisker_lo = f64::INFINITY;
        let mut whisker_hi = f64::NEG_INFINITY;
        let mut outliers = Vec::new();
        for &x in xs {
            if x < lo_fence || x > hi_fence {
                outliers.push(x);
            } else {
                whisker_lo = whisker_lo.min(x);
                whisker_hi = whisker_hi.max(x);
            }
        }
        // All points can be outliers only when xs has extreme spread with
        // tiny IQR; fall back to min/max in that case.
        if !whisker_lo.is_finite() {
            whisker_lo = percentile(xs, 0.0);
            whisker_hi = percentile(xs, 1.0);
        }
        // Interpolated quartiles can cross the nearest in-fence sample when
        // an outlier took part in the interpolation; clamp the whiskers to
        // the box so the five numbers stay ordered.
        whisker_lo = whisker_lo.min(q1);
        whisker_hi = whisker_hi.max(q3);
        outliers.sort_by(|a, b| a.total_cmp(b));
        FiveNumber { whisker_lo, q1, median, q3, whisker_hi, outliers }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// An empirical cumulative distribution function over a finite sample.
///
/// # Example
///
/// ```
/// use rush_prob::stats::Ecdf;
/// let ecdf = Ecdf::from_samples(&[1.0, 2.0, 2.0, 4.0]);
/// assert_eq!(ecdf.eval(2.0), 0.75);
/// assert_eq!(ecdf.eval(0.0), 0.0);
/// assert_eq!(ecdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from samples (NaNs are rejected by panic).
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(xs: &[f64]) -> Self {
        assert!(xs.iter().all(|x| !x.is_nan()), "Ecdf sample contains NaN");
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted }
    }

    /// Fraction of samples ≤ `x`; 0 for an empty ECDF.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when no samples were provided.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates the ECDF at `points`, returning `(x, F(x))` pairs — the
    /// series plotted in the paper's Fig. 6.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.eval(x))).collect()
    }

    /// The sorted sample values (the ECDF's jump locations).
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_and_variance_reference() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // population var is 4; sample var = 32/7
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((sample_std(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_of_singleton_is_zero() {
        assert_eq!(sample_variance(&[5.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert_eq!(percentile(&xs, 0.5), 2.5);
        assert!((percentile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_panics_on_empty() {
        percentile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "q must be in")]
    fn percentile_panics_on_bad_q() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn five_number_summary_basic() {
        let xs: Vec<f64> = (1..=11).map(|i| i as f64).collect();
        let s = FiveNumber::from_samples(&xs);
        assert_eq!(s.median, 6.0);
        assert_eq!(s.q1, 3.5);
        assert_eq!(s.q3, 8.5);
        assert_eq!(s.whisker_lo, 1.0);
        assert_eq!(s.whisker_hi, 11.0);
        assert!(s.outliers.is_empty());
        assert_eq!(s.iqr(), 5.0);
    }

    #[test]
    fn five_number_detects_outliers() {
        let mut xs: Vec<f64> = (1..=11).map(|i| i as f64).collect();
        xs.push(100.0);
        let s = FiveNumber::from_samples(&xs);
        assert_eq!(s.outliers, vec![100.0]);
        assert!(s.whisker_hi <= 11.0);
    }

    #[test]
    fn five_number_constant_sample() {
        let s = FiveNumber::from_samples(&[3.0; 10]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.whisker_lo, 3.0);
        assert_eq!(s.whisker_hi, 3.0);
        assert!(s.outliers.is_empty());
    }

    #[test]
    fn ecdf_step_values() {
        let e = Ecdf::from_samples(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::from_samples(&[]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
    }

    #[test]
    fn ecdf_series() {
        let e = Ecdf::from_samples(&[1.0, 2.0]);
        let s = e.series(&[0.0, 1.5, 3.0]);
        assert_eq!(s, vec![(0.0, 0.0), (1.5, 0.5), (3.0, 1.0)]);
    }
}

//! Deterministic random-number helpers.
//!
//! Every stochastic component of the reproduction takes an explicit `u64`
//! seed, and experiments derive per-stream sub-seeds with [`derive_seed`] so
//! that adding a new consumer of randomness never perturbs existing streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Creates a deterministic [`SmallRng`] from a `u64` seed.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = rush_prob::rng::seeded_rng(1);
/// let mut b = rush_prob::rng::seeded_rng(1);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives an independent sub-seed from a base seed and a stream index using
/// the SplitMix64 finalizer, which is a bijection on `u64` with strong
/// avalanche behaviour.
///
/// # Example
///
/// ```
/// let a = rush_prob::rng::derive_seed(42, 0);
/// let b = rush_prob::rng::derive_seed(42, 1);
/// assert_ne!(a, b);
/// ```
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_streams_are_distinct() {
        let seeds: Vec<u64> = (0..100).map(|s| derive_seed(7, s)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "derived seeds must be unique");
    }

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
        assert_ne!(derive_seed(42, 3), derive_seed(43, 3));
    }
}

//! Continuous reference distributions with deterministic sampling.
//!
//! The simulator draws *true* task runtimes from these distributions, while
//! estimators reconstruct them from samples. Gaussian sampling uses the
//! Box–Muller transform so the crate stays free of `rand_distr`.

use crate::{Pmf, ProbError};
use rand::Rng;

/// A continuous, non-negative-support distribution of demand or runtime.
///
/// Implementors provide the density, CDF and moments; [`Continuous::sample`]
/// must be deterministic given a deterministic [`Rng`].
pub trait Continuous {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Expected value.
    fn mean(&self) -> f64;

    /// Variance.
    fn variance(&self) -> f64;

    /// Draws one sample. Negative draws are clamped to 0 because demands and
    /// runtimes are non-negative.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// Quantizes this distribution into a [`Pmf`] of `bins` bins of width
    /// `bin_width`, assigning bin `l` the mass
    /// `P(l·w ≤ X < (l+1)·w)`, with all upper-tail mass folded into the last
    /// bin.
    ///
    /// # Errors
    ///
    /// Propagates [`Pmf::from_weights`] errors (e.g. `bins == 0`), and
    /// [`ProbError::ZeroMass`] if the distribution has no mass below
    /// `bins · bin_width`.
    fn quantize(&self, bins: usize, bin_width: u64) -> Result<Pmf, ProbError> {
        if bins == 0 {
            return Err(ProbError::EmptyPmf);
        }
        if bin_width == 0 {
            return Err(ProbError::InvalidParameter { name: "bin_width", value: 0.0 });
        }
        let w = bin_width as f64;
        // Evaluate the CDF just below each upper bin boundary so that a point
        // mass sitting exactly on a boundary lands in the bin that *starts*
        // there, matching `Pmf::from_samples`'s `value / bin_width` rule.
        let boundary_eps = w * 1e-9;
        let mut weights = Vec::with_capacity(bins);
        let mut prev = 0.0; // CDF at 0 for non-negative support
        for l in 0..bins {
            let hi =
                if l + 1 == bins { 1.0 } else { self.cdf((l + 1) as f64 * w - boundary_eps) };
            weights.push((hi - prev).max(0.0));
            prev = hi;
        }
        Pmf::from_weights(weights, bin_width)
    }
}

/// The Gaussian (normal) distribution `N(mean, std²)`.
///
/// Used by the paper's experiments both as the ground-truth task-runtime
/// distribution (Fig. 3: N(60 s, 20 s)) and as the shape reported by the
/// Gaussian/CLT estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gaussian {
    mean: f64,
    std: f64,
}

impl Gaussian {
    /// Creates `N(mean, std²)`.
    ///
    /// # Errors
    ///
    /// [`ProbError::InvalidParameter`] if `mean` is non-finite or `std` is
    /// not a positive finite number.
    pub fn new(mean: f64, std: f64) -> Result<Self, ProbError> {
        if !mean.is_finite() {
            return Err(ProbError::InvalidParameter { name: "mean", value: mean });
        }
        if !std.is_finite() || std <= 0.0 {
            return Err(ProbError::InvalidParameter { name: "std", value: std });
        }
        Ok(Gaussian { mean, std })
    }

    /// Standard deviation.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Standard normal CDF via the Abramowitz–Stegun erf approximation
    /// (absolute error < 1.5e-7, ample for demand quantization).
    fn std_normal_cdf(z: f64) -> f64 {
        0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Draws a standard normal variate via Box–Muller.
pub fn sample_std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Continuous for Gaussian {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        Self::std_normal_cdf((x - self.mean) / self.std)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std * self.std
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mean + self.std * sample_std_normal(rng)).max(0.0)
    }
}

/// The log-normal distribution: `ln X ~ N(mu, sigma²)`.
///
/// Models the right-skewed, straggler-prone task runtimes typical of I/O
/// heavy MapReduce stages (e.g. the sort and join workload templates).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-space mean `mu` and log-space standard
    /// deviation `sigma`.
    ///
    /// # Errors
    ///
    /// [`ProbError::InvalidParameter`] if parameters are non-finite or
    /// `sigma ≤ 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ProbError> {
        if !mu.is_finite() {
            return Err(ProbError::InvalidParameter { name: "mu", value: mu });
        }
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(ProbError::InvalidParameter { name: "sigma", value: sigma });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a log-normal with the given *linear-space* mean and standard
    /// deviation, solving for `(mu, sigma)`.
    ///
    /// # Errors
    ///
    /// [`ProbError::InvalidParameter`] if `mean ≤ 0` or `std ≤ 0`.
    pub fn from_mean_std(mean: f64, std: f64) -> Result<Self, ProbError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(ProbError::InvalidParameter { name: "mean", value: mean });
        }
        if !std.is_finite() || std <= 0.0 {
            return Err(ProbError::InvalidParameter { name: "std", value: std });
        }
        let cv2 = (std / mean) * (std / mean);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }
}

impl Continuous for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        Gaussian::std_normal_cdf((x.ln() - self.mu) / self.sigma)
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * sample_std_normal(rng)).exp()
    }
}

/// The continuous uniform distribution on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// [`ProbError::InvalidParameter`] if bounds are non-finite or
    /// `lo ≥ hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, ProbError> {
        if !lo.is_finite() {
            return Err(ProbError::InvalidParameter { name: "lo", value: lo });
        }
        if !hi.is_finite() || hi <= lo {
            return Err(ProbError::InvalidParameter { name: "hi", value: hi });
        }
        Ok(Uniform { lo, hi })
    }
}

impl Continuous for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            0.0
        } else {
            1.0 / (self.hi - self.lo)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    fn variance(&self) -> f64 {
        let span = self.hi - self.lo;
        span * span / 12.0
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.lo + rng.gen::<f64>() * (self.hi - self.lo)).max(0.0)
    }
}

/// The exponential distribution with the given rate `λ`.
///
/// Drives the Poisson job-arrival process of the paper's evaluation
/// (inter-arrival times ~ Exp(1/130 s)).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `λ = rate`.
    ///
    /// # Errors
    ///
    /// [`ProbError::InvalidParameter`] if `rate` is not a positive finite
    /// number.
    pub fn new(rate: f64) -> Result<Self, ProbError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(ProbError::InvalidParameter { name: "rate", value: rate });
        }
        Ok(Exponential { rate })
    }

    /// Creates an exponential distribution with the given mean (`1/λ`).
    ///
    /// # Errors
    ///
    /// [`ProbError::InvalidParameter`] if `mean` is not a positive finite
    /// number.
    pub fn from_mean(mean: f64) -> Result<Self, ProbError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(ProbError::InvalidParameter { name: "mean", value: mean });
        }
        Exponential::new(1.0 / mean)
    }
}

impl Continuous for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }
}

/// The Weibull distribution with shape `k` and scale `λ`.
///
/// With `k < 1` it models heavy-tailed straggler runtimes; with `k > 1`,
/// wear-out-style distributions. Included for users modelling task
/// runtimes beyond the paper's Gaussian/log-normal templates.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull with shape `k > 0` and scale `λ > 0`.
    ///
    /// # Errors
    ///
    /// [`ProbError::InvalidParameter`] for non-positive or non-finite
    /// parameters.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ProbError> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(ProbError::InvalidParameter { name: "shape", value: shape });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(ProbError::InvalidParameter { name: "scale", value: scale });
        }
        Ok(Weibull { shape, scale })
    }

    /// Γ(1 + x) via the Lanczos approximation (sufficient accuracy for
    /// moment computation).
    #[allow(clippy::inconsistent_digit_grouping, clippy::excessive_precision)] // literal table
    fn gamma_1p(x: f64) -> f64 {
        // Lanczos g=7, n=9 coefficients.
        const G: f64 = 7.0;
        const C: [f64; 9] = [
            0.999_999_999_999_809_93,
            676.520_368_121_885_1,
            -1259.139_216_722_402_8,
            771.323_428_777_653_1,
            -176.615_029_162_140_6,
            12.507_343_278_686_905,
            -0.138_571_095_265_720_12,
            9.984_369_578_019_572e-6,
            1.505_632_735_149_311_6e-7,
        ];
        // gamma(z) for z = 1 + x, x >= 0.
        let z = x; // gamma(1+x) = x! ; use gamma(z+1) with z = x
        // bound: C is a fixed-size coefficient table
        let mut acc = C[0];
        for (i, &c) in C.iter().enumerate().skip(1) {
            acc += c / (z + i as f64);
        }
        let t = z + G + 0.5;
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(z + 0.5) * (-t).exp() * acc
    }
}

impl Continuous for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        1.0 - (-(x / self.scale).powf(self.shape)).exp()
    }

    fn mean(&self) -> f64 {
        self.scale * Self::gamma_1p(1.0 / self.shape)
    }

    fn variance(&self) -> f64 {
        let g2 = Self::gamma_1p(2.0 / self.shape);
        let g1 = Self::gamma_1p(1.0 / self.shape);
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF sampling: λ·(−ln U)^{1/k}.
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

/// A degenerate distribution placing all mass at one point.
///
/// The mean-time estimator of the paper reports exactly this shape.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Impulse {
    at: f64,
}

impl Impulse {
    /// Creates an impulse at `at ≥ 0`.
    ///
    /// # Errors
    ///
    /// [`ProbError::InvalidParameter`] if `at` is negative or non-finite.
    pub fn new(at: f64) -> Result<Self, ProbError> {
        if !at.is_finite() || at < 0.0 {
            return Err(ProbError::InvalidParameter { name: "at", value: at });
        }
        Ok(Impulse { at })
    }
}

impl Continuous for Impulse {
    fn pdf(&self, x: f64) -> f64 {
        if (x - self.at).abs() < f64::EPSILON {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x >= self.at {
            1.0
        } else {
            0.0
        }
    }

    fn mean(&self) -> f64 {
        self.at
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn sample<R: Rng + ?Sized>(&self, _rng: &mut R) -> f64 {
        self.at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn gaussian_rejects_bad_params() {
        assert!(Gaussian::new(f64::NAN, 1.0).is_err());
        assert!(Gaussian::new(0.0, 0.0).is_err());
        assert!(Gaussian::new(0.0, -1.0).is_err());
    }

    #[test]
    fn gaussian_cdf_symmetry() {
        let g = Gaussian::new(0.0, 1.0).unwrap();
        assert!((g.cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((g.cdf(1.0) + g.cdf(-1.0) - 1.0).abs() < 1e-6);
        assert!((g.cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn gaussian_pdf_peak_at_mean() {
        let g = Gaussian::new(5.0, 2.0).unwrap();
        assert!(g.pdf(5.0) > g.pdf(4.0));
        assert!(g.pdf(5.0) > g.pdf(6.0));
        assert!((g.pdf(4.0) - g.pdf(6.0)).abs() < 1e-12);
    }

    #[test]
    fn gaussian_sampling_matches_moments() {
        let g = Gaussian::new(60.0, 20.0).unwrap();
        let mut rng = seeded_rng(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 60.0).abs() < 1.0, "mean={mean}");
        assert!((var.sqrt() - 20.0).abs() < 1.0, "std={}", var.sqrt());
    }

    #[test]
    fn gaussian_samples_are_clamped_nonnegative() {
        let g = Gaussian::new(0.1, 10.0).unwrap();
        let mut rng = seeded_rng(7);
        for _ in 0..1000 {
            assert!(g.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn quantize_preserves_mean_roughly() {
        let g = Gaussian::new(100.0, 10.0).unwrap();
        let pmf = g.quantize(200, 1).unwrap();
        assert!(pmf.is_normalized());
        assert!((pmf.mean() - 100.0).abs() < 1.5);
    }

    #[test]
    fn quantize_folds_tail_into_last_bin() {
        let g = Gaussian::new(100.0, 10.0).unwrap();
        let pmf = g.quantize(50, 1).unwrap(); // support cut at 50 << mean
        assert!(pmf.prob(49) > 0.99);
    }

    #[test]
    fn quantize_rejects_degenerate_args() {
        let g = Gaussian::new(10.0, 1.0).unwrap();
        assert!(g.quantize(0, 1).is_err());
        assert!(g.quantize(10, 0).is_err());
    }

    #[test]
    fn lognormal_from_mean_std_round_trips_moments() {
        let ln = LogNormal::from_mean_std(120.0, 40.0).unwrap();
        assert!((ln.mean() - 120.0).abs() < 1e-9);
        assert!((ln.variance().sqrt() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_cdf_monotone_and_zero_below_zero() {
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(ln.cdf(-1.0), 0.0);
        assert_eq!(ln.pdf(-1.0), 0.0);
        assert!(ln.cdf(1.0) < ln.cdf(2.0));
        assert!((ln.cdf(1.0) - 0.5).abs() < 1e-6); // median = e^mu = 1
    }

    #[test]
    fn lognormal_sampling_is_positive_and_skewed() {
        let ln = LogNormal::from_mean_std(60.0, 30.0).unwrap();
        let mut rng = seeded_rng(11);
        let samples: Vec<f64> = (0..10_000).map(|_| ln.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 60.0).abs() < 2.0, "mean={mean}");
        let median = {
            let mut s = samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(median < mean, "right-skew: median {median} < mean {mean}");
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::from_mean_std(-1.0, 1.0).is_err());
        assert!(LogNormal::from_mean_std(1.0, 0.0).is_err());
    }

    #[test]
    fn uniform_moments_and_bounds() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(u.mean(), 4.0);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-12);
        assert_eq!(u.cdf(1.0), 0.0);
        assert_eq!(u.cdf(7.0), 1.0);
        assert_eq!(u.pdf(3.0), 0.25);
        assert_eq!(u.pdf(1.0), 0.0);
        let mut rng = seeded_rng(3);
        for _ in 0..1000 {
            let s = u.sample(&mut rng);
            assert!((2.0..=6.0).contains(&s));
        }
    }

    #[test]
    fn uniform_rejects_inverted_bounds() {
        assert!(Uniform::new(5.0, 5.0).is_err());
        assert!(Uniform::new(5.0, 4.0).is_err());
    }

    #[test]
    fn exponential_mean_and_memoryless_shape() {
        let e = Exponential::from_mean(130.0).unwrap();
        assert!((e.mean() - 130.0).abs() < 1e-12);
        assert!((e.cdf(130.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        let mut rng = seeded_rng(5);
        let n = 20_000;
        let mean = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 130.0).abs() < 3.0, "mean={mean}");
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::from_mean(-1.0).is_err());
    }

    #[test]
    fn impulse_behaves_degenerately() {
        let i = Impulse::new(42.0).unwrap();
        assert_eq!(i.mean(), 42.0);
        assert_eq!(i.variance(), 0.0);
        assert_eq!(i.cdf(41.9), 0.0);
        assert_eq!(i.cdf(42.0), 1.0);
        let mut rng = seeded_rng(1);
        assert_eq!(i.sample(&mut rng), 42.0);
        assert!(Impulse::new(-1.0).is_err());
    }

    #[test]
    fn impulse_quantizes_to_pmf_impulse() {
        let i = Impulse::new(10.0).unwrap();
        let pmf = i.quantize(20, 1).unwrap();
        // mass of P(10 ≤ X < 11) lands in bin 10
        assert_eq!(pmf.prob(10), 1.0);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 50.0).unwrap();
        let e = Exponential::from_mean(50.0).unwrap();
        for x in [0.0, 10.0, 50.0, 200.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-9, "x={x}");
        }
        assert!((w.mean() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn weibull_moments_and_sampling() {
        let w = Weibull::new(2.0, 100.0).unwrap();
        // mean = 100·Γ(1.5) = 100·(√π/2) ≈ 88.62
        assert!((w.mean() - 88.6227).abs() < 0.01, "mean {}", w.mean());
        let mut rng = seeded_rng(8);
        let n = 20_000;
        let mean = (0..n).map(|_| w.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - w.mean()).abs() < 1.5, "sampled {mean}");
        assert_eq!(w.cdf(-1.0), 0.0);
        assert_eq!(w.pdf(-1.0), 0.0);
        assert!(w.variance() > 0.0);
    }

    #[test]
    fn weibull_heavy_tail_shape_below_one() {
        let w = Weibull::new(0.5, 10.0).unwrap();
        let mut rng = seeded_rng(9);
        let samples: Vec<f64> = (0..10_000).map(|_| w.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[5000];
        assert!(median < mean / 2.0, "heavy tail: median {median} << mean {mean}");
    }

    #[test]
    fn weibull_rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((erf(3.0) - 0.9999779).abs() < 1e-5);
    }
}

//! Probability substrate for the RUSH scheduler reproduction.
//!
//! The RUSH paper (ICDCS 2016) models each job's total resource demand as a
//! random variable `v_i` measured in *container time slots*, and its robust
//! scheduling pipeline manipulates **quantized probability mass functions**
//! over demand bins: the Distribution Estimator produces a reference PMF
//! `φ_i`, the WCDE sub-problem searches over a Kullback–Leibler ball around
//! `φ_i`, and the scheduler provisions the `θ`-quantile of the worst-case
//! distribution.
//!
//! This crate provides exactly those primitives, with no third-party
//! dependencies beyond [`rand`]:
//!
//! * [`Pmf`] — a quantized PMF over demand bins with CDF/quantile queries,
//!   moments, and [KL divergence](Pmf::kl_divergence).
//! * [`dist`] — continuous reference distributions (Gaussian, log-normal,
//!   uniform, exponential, impulse) with deterministic sampling (Box–Muller,
//!   no `rand_distr` dependency) and quantization into [`Pmf`]s.
//! * [`stats`] — descriptive statistics (quartiles, five-number summaries,
//!   empirical CDFs) used by the evaluation harness.
//! * [`rng`] — deterministic seed-derivation helpers so that every experiment
//!   in the reproduction is replayable bit-for-bit.
//!
//! # Example
//!
//! Build a reference distribution for a job of 100 tasks whose runtimes are
//! roughly Gaussian, then ask for a robust demand quantile:
//!
//! ```
//! use rush_prob::dist::{Continuous, Gaussian};
//! use rush_prob::Pmf;
//!
//! # fn main() -> Result<(), rush_prob::ProbError> {
//! // Total demand of 100 tasks, each ~N(60 s, 20 s): N(6000, 200) by CLT.
//! let total = Gaussian::new(6000.0, 200.0)?;
//! let phi: Pmf = total.quantize(8000, 1)?;
//! let eta = phi.quantile(0.9);
//! assert!(eta >= 6000 && eta <= 6700);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod pmf;
pub mod rng;
pub mod stats;

pub use pmf::Pmf;

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or manipulating probability objects.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProbError {
    /// A PMF was constructed from an empty weight vector.
    EmptyPmf,
    /// A weight/probability was negative or non-finite.
    InvalidWeight {
        /// Bin index of the offending weight.
        bin: usize,
        /// The offending value.
        value: f64,
    },
    /// All weights were zero, so the PMF cannot be normalized.
    ZeroMass,
    /// A distribution parameter was out of its valid domain.
    InvalidParameter {
        /// Human-readable parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A probability argument was outside `[0, 1]`.
    InvalidProbability(f64),
    /// Two PMFs with mismatched bin counts or widths were combined.
    ShapeMismatch {
        /// Bin count of the left operand.
        left: usize,
        /// Bin count of the right operand.
        right: usize,
    },
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::EmptyPmf => write!(f, "cannot build a PMF with zero bins"),
            ProbError::InvalidWeight { bin, value } => {
                write!(f, "weight at bin {bin} is invalid: {value}")
            }
            ProbError::ZeroMass => write!(f, "all weights are zero; nothing to normalize"),
            ProbError::InvalidParameter { name, value } => {
                write!(f, "invalid distribution parameter {name}: {value}")
            }
            ProbError::InvalidProbability(p) => {
                write!(f, "probability must lie in [0, 1], got {p}")
            }
            ProbError::ShapeMismatch { left, right } => {
                write!(f, "PMF shapes differ: {left} bins vs {right} bins")
            }
        }
    }
}

impl Error for ProbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            ProbError::EmptyPmf,
            ProbError::InvalidWeight { bin: 3, value: -1.0 },
            ProbError::ZeroMass,
            ProbError::InvalidParameter { name: "std", value: -2.0 },
            ProbError::InvalidProbability(1.5),
            ProbError::ShapeMismatch { left: 4, right: 8 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProbError>();
    }
}

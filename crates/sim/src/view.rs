//! The scheduler-visible state of the cluster.
//!
//! Schedulers observe exactly what a YARN resource manager would expose:
//! job metadata (utility, priority, arrival), task counts per lifecycle
//! stage, and runtime samples of **completed** tasks. The true runtimes of
//! pending and running tasks are hidden — this information asymmetry is
//! what makes completion-time-aware scheduling in a shared cloud hard, and
//! it is preserved faithfully by the simulator.

use crate::{JobId, Slot, TaskId};
use rush_utility::{Sensitivity, TimeUtility};

/// Scheduler-visible state of one active (arrived, incomplete) job.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobView {
    /// Job identifier.
    pub id: JobId,
    /// Human-readable label (template name).
    pub label: String,
    /// Arrival slot.
    pub arrival: Slot,
    /// Client utility of the job's completion time (measured from arrival).
    pub utility: TimeUtility,
    /// Client priority weight.
    pub priority: u32,
    /// Completion-time sensitivity class.
    pub sensitivity: Sensitivity,
    /// Declared time budget in slots, if any.
    pub budget: Option<Slot>,
    /// Total number of tasks in the job.
    pub total_tasks: usize,
    /// Tasks not yet started (either phase).
    pub pending_tasks: usize,
    /// Tasks not yet started whose phase is eligible to run *now*
    /// (maps always; reduces only after the map barrier clears).
    pub runnable_tasks: usize,
    /// Tasks currently occupying containers.
    pub running_tasks: usize,
    /// Tasks finished.
    pub completed_tasks: usize,
    /// Failed task attempts so far (each failed attempt was re-queued).
    pub failed_attempts: usize,
    /// Start slot of the job's longest-running attempt, if any — the
    /// signal straggler-detection (speculative execution) heuristics need.
    pub oldest_running_start: Option<Slot>,
    /// Observed runtimes (slots) of completed tasks, in completion order —
    /// the telemetry stream feeding distribution estimators.
    pub samples: Vec<Slot>,
}

impl JobView {
    /// Tasks not yet finished (pending + running) — the remaining workload
    /// that a distribution estimator must provision for.
    pub fn remaining_tasks(&self) -> usize {
        self.total_tasks - self.completed_tasks
    }

    /// Elapsed slots since the job arrived.
    pub fn age(&self, now: Slot) -> Slot {
        now.saturating_sub(self.arrival)
    }

    /// Mean of the observed task-runtime samples, if any exist.
    pub fn mean_sample(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<Slot>() as f64 / self.samples.len() as f64)
        }
    }
}

/// A completed task's observed runtime, reported to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskSample {
    /// Owning job.
    pub job: JobId,
    /// The task.
    pub task: TaskId,
    /// Observed wall-clock runtime in slots.
    pub runtime: Slot,
    /// Slot at which the task finished.
    pub finished_at: Slot,
}

/// A read-only snapshot of the cluster handed to schedulers on every
/// decision point.
#[derive(Debug)]
pub struct ClusterView<'a> {
    /// Current slot.
    pub now: Slot,
    /// Container capacity `C` currently in service (total capacity minus
    /// containers revoked by capacity events).
    pub capacity: u32,
    /// Containers currently free.
    pub free_containers: u32,
    /// All active jobs, in arrival order.
    pub jobs: &'a [JobView],
}

impl<'a> ClusterView<'a> {
    /// Looks up a job view by id.
    pub fn job(&self, id: JobId) -> Option<&JobView> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Total number of runnable (phase-eligible, unstarted) tasks across all
    /// active jobs.
    pub fn total_runnable(&self) -> usize {
        self.jobs.iter().map(|j| j.runnable_tasks).sum()
    }

    /// Jobs with at least one runnable task, in arrival order — the
    /// candidate set every assignment policy filters down to.
    pub fn runnable_jobs(&self) -> impl Iterator<Item = &JobView> {
        self.jobs.iter().filter(|j| j.runnable_tasks > 0)
    }

    /// Containers currently occupied.
    pub fn busy_containers(&self) -> u32 {
        self.capacity - self.free_containers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_utility::TimeUtility;

    fn view(id: u32, runnable: usize) -> JobView {
        JobView {
            id: JobId(id),
            label: format!("j{id}"),
            arrival: 10,
            utility: TimeUtility::constant(1.0).unwrap(),
            priority: 1,
            sensitivity: Sensitivity::Sensitive,
            budget: None,
            total_tasks: 10,
            pending_tasks: runnable,
            runnable_tasks: runnable,
            running_tasks: 2,
            completed_tasks: 3,
            failed_attempts: 0,
            oldest_running_start: Some(8),
            samples: vec![5, 7],
        }
    }

    #[test]
    fn job_view_derived_quantities() {
        let j = view(1, 5);
        assert_eq!(j.remaining_tasks(), 7);
        assert_eq!(j.age(25), 15);
        assert_eq!(j.age(5), 0); // saturates before arrival
        assert_eq!(j.mean_sample(), Some(6.0));
    }

    #[test]
    fn mean_sample_none_when_empty() {
        let mut j = view(1, 5);
        j.samples.clear();
        assert_eq!(j.mean_sample(), None);
    }

    #[test]
    fn cluster_view_lookup_and_totals() {
        let jobs = vec![view(1, 4), view(2, 6)];
        let cv = ClusterView { now: 30, capacity: 16, free_containers: 5, jobs: &jobs };
        assert_eq!(cv.job(JobId(2)).unwrap().id, JobId(2));
        assert!(cv.job(JobId(9)).is_none());
        assert_eq!(cv.total_runnable(), 10);
        assert_eq!(cv.busy_containers(), 11);
    }

    #[test]
    fn runnable_jobs_filters_and_preserves_order() {
        let jobs = vec![view(1, 0), view(2, 6), view(3, 0), view(4, 2)];
        let cv = ClusterView { now: 30, capacity: 16, free_containers: 5, jobs: &jobs };
        let ids: Vec<JobId> = cv.runnable_jobs().map(|j| j.id).collect();
        assert_eq!(ids, vec![JobId(2), JobId(4)]);
    }
}

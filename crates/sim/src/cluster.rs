//! Cluster topology: heterogeneous nodes hosting homogeneous containers.
//!
//! The paper's testbed mixes Dell R320 (2.7 GHz), T320 (2.3 GHz) and
//! Optiplex (3.2 GHz) machines; a task's wall-clock runtime therefore
//! depends on where its container lands. We model each [`Node`] with a
//! *speed factor* (relative runtime multiplier: 1.0 = baseline, < 1.0 =
//! faster) and a number of container slots.

use crate::{NodeId, SimError, Slot};

/// One step of a deterministic capacity-event stream: the provider takes
/// containers away or hands them back.
///
/// The sim works in the flat container index space and does not know about
/// container classes or prices — `rush_core::cluster::ClusterModel` lowers
/// its class-tagged event stream onto these totals. Revocation always claims
/// the *highest*-indexed in-service containers and restock returns the
/// *lowest*-indexed revoked ones, so the event stream alone determines the
/// exact container set deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CapacityChange {
    /// The provider reclaims `n` containers (spot revocation or a
    /// correlated node-failure burst).
    Revoke {
        /// Containers taken out of service.
        n: u32,
    },
    /// `n` previously revoked containers return to service.
    Restock {
        /// Containers returned to service.
        n: u32,
    },
}

/// A [`CapacityChange`] scheduled at an absolute simulation slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CapacityEvent {
    /// Slot at which the change takes effect.
    pub at: Slot,
    /// What happens.
    pub change: CapacityChange,
}

/// Validates a capacity-event stream against a starting capacity: events
/// must be sorted by slot, zero-sized changes are rejected, a revocation
/// may never leave fewer than one container in service, and a restock may
/// never return more containers than are currently revoked.
///
/// # Errors
///
/// [`SimError::InvalidConfig`] describing the first violation.
pub fn validate_capacity_events(
    capacity: u32,
    events: &[CapacityEvent],
) -> Result<(), SimError> {
    let mut in_service = capacity;
    let mut last_at = 0;
    for ev in events {
        if ev.at < last_at {
            return Err(SimError::InvalidConfig {
                reason: "capacity events must be sorted by slot",
            });
        }
        last_at = ev.at;
        match ev.change {
            CapacityChange::Revoke { n } => {
                if n == 0 {
                    return Err(SimError::InvalidConfig {
                        reason: "capacity event must change at least one container",
                    });
                }
                if n >= in_service {
                    return Err(SimError::InvalidConfig {
                        reason: "revocation would leave the cluster without containers",
                    });
                }
                in_service -= n;
            }
            CapacityChange::Restock { n } => {
                if n == 0 {
                    return Err(SimError::InvalidConfig {
                        reason: "capacity event must change at least one container",
                    });
                }
                if in_service + n > capacity {
                    return Err(SimError::InvalidConfig {
                        reason: "restock exceeds the revoked container count",
                    });
                }
                in_service += n;
            }
        }
    }
    Ok(())
}

/// One machine in the cluster.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    id: NodeId,
    speed_factor: f64,
    containers: u32,
}

impl Node {
    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Runtime multiplier for tasks on this node (1.0 = baseline speed,
    /// 0.8 = 25 % faster, 1.2 = 20 % slower).
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Number of containers hosted by this node.
    pub fn containers(&self) -> u32 {
        self.containers
    }
}

/// The cluster topology handed to the simulator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterSpec {
    nodes: Vec<Node>,
}

impl ClusterSpec {
    /// Builds a cluster from `(speed_factor, containers)` pairs.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyCluster`] if the total container count is zero.
    /// * [`SimError::InvalidConfig`] if any speed factor is non-positive or
    ///   non-finite.
    pub fn new(nodes: impl IntoIterator<Item = (f64, u32)>) -> Result<Self, SimError> {
        let mut out = Vec::new();
        for (i, (speed_factor, containers)) in nodes.into_iter().enumerate() {
            if !speed_factor.is_finite() || speed_factor <= 0.0 {
                return Err(SimError::InvalidConfig { reason: "node speed factor must be > 0" });
            }
            out.push(Node { id: NodeId(i as u32), speed_factor, containers });
        }
        let spec = ClusterSpec { nodes: out };
        if spec.capacity() == 0 {
            return Err(SimError::EmptyCluster);
        }
        Ok(spec)
    }

    /// A homogeneous cluster: `nodes` identical unit-speed machines with
    /// `containers_per_node` containers each.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyCluster`] if the total capacity is zero.
    pub fn homogeneous(nodes: u32, containers_per_node: u32) -> Result<Self, SimError> {
        Self::new((0..nodes).map(|_| (1.0, containers_per_node)))
    }

    /// A heterogeneous cluster shaped like the paper's testbed: six nodes of
    /// three speed grades (two fast desktops, two mid servers, two slower
    /// servers) with `containers_per_node` containers each (8 gives the
    /// paper's 48-container capacity).
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyCluster`] if `containers_per_node == 0`.
    pub fn paper_testbed(containers_per_node: u32) -> Result<Self, SimError> {
        Self::new(vec![
            (0.85, containers_per_node), // Optiplex i5-3470 @3.2GHz
            (0.85, containers_per_node),
            (1.0, containers_per_node), // R320 E5-2470v2 @2.7GHz
            (1.0, containers_per_node),
            (1.15, containers_per_node), // T320 E5-2470 @2.3GHz
            (1.15, containers_per_node),
        ])
    }

    /// The nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Total container capacity `C`.
    pub fn capacity(&self) -> u32 {
        self.nodes.iter().map(|n| n.containers).sum()
    }

    /// Maps a flat container index (`0..capacity()`) to its hosting node.
    ///
    /// This walks the node list; hot paths should precompute
    /// [`container_node_map`](Self::container_node_map) instead.
    ///
    /// # Panics
    ///
    /// Panics if `container >= capacity()`.
    pub fn node_of_container(&self, container: u32) -> &Node {
        let mut remaining = container;
        for node in &self.nodes {
            if remaining < node.containers {
                return node;
            }
            remaining -= node.containers;
        }
        // rush-lint: allow(RUSH-L003): caller contract — container < capacity()
        panic!("container index {container} out of range (capacity {})", self.capacity());
    }

    /// Precomputes the container → node-index map, one entry per container,
    /// so per-event lookups cost one array read instead of a node walk.
    pub fn container_node_map(&self) -> Vec<u32> {
        let mut map = Vec::with_capacity(self.capacity() as usize);
        for (i, node) in self.nodes.iter().enumerate() {
            map.extend(std::iter::repeat_n(i as u32, node.containers as usize));
        }
        map
    }

    /// The half-open container-index range `[start, end)` hosted by each
    /// node, in node order.
    pub fn node_container_ranges(&self) -> Vec<(u32, u32)> {
        let mut ranges = Vec::with_capacity(self.nodes.len());
        let mut start = 0;
        for node in &self.nodes {
            ranges.push((start, start + node.containers));
            start += node.containers;
        }
        ranges
    }
}

/// An ordered pool of free containers over a [`ClusterSpec`]'s flat
/// container index space.
///
/// The simulation engine acquires the lowest free container on every task
/// start and releases one on every completion; with a sorted `Vec` those
/// operations cost a re-sort per completion (the seed engine's
/// `sort_unstable_by_key` after every push). `FreePool` keeps the free set
/// as a two-level bitset — one bit per container plus a summary bit per
/// 64-container word — so acquire, release and membership are O(1) word
/// operations (O(capacity/4096) in the worst case for the summary scan),
/// and the lowest free container *on a given node* is answerable directly
/// for locality-aware placement.
#[derive(Debug, Clone)]
pub struct FreePool {
    /// Bit `c % 64` of `words[c / 64]` is set iff container `c` is free.
    words: Vec<u64>,
    /// Bit `w % 64` of `summary[w / 64]` is set iff `words[w] != 0`.
    summary: Vec<u64>,
    /// Bit `c % 64` of `revoked[c / 64]` is set iff container `c` has been
    /// revoked (taken out of service by a capacity event). A revoked
    /// container is never free; the index space itself never shrinks.
    revoked: Vec<u64>,
    /// Per-node container ranges `[start, end)`, in node order.
    node_ranges: Vec<(u32, u32)>,
    free: u32,
    revoked_count: u32,
    capacity: u32,
}

impl FreePool {
    /// Creates a pool over `spec`'s containers with every container free.
    pub fn new(spec: &ClusterSpec) -> Self {
        let capacity = spec.capacity();
        let n_words = (capacity as usize).div_ceil(64);
        let mut words = vec![u64::MAX; n_words];
        // Mask off the bits past `capacity` in the last word.
        let tail = capacity as usize % 64;
        if tail != 0 {
            words[n_words - 1] = (1u64 << tail) - 1;
        }
        let summary = (0..n_words.div_ceil(64))
            .map(|s| {
                let mut bits = 0u64;
                for b in 0..64.min(n_words - s * 64) {
                    if words[s * 64 + b] != 0 {
                        bits |= 1 << b;
                    }
                }
                bits
            })
            .collect();
        FreePool {
            words,
            summary,
            revoked: vec![0; n_words],
            node_ranges: spec.node_container_ranges(),
            free: capacity,
            revoked_count: 0,
            capacity,
        }
    }

    /// Number of free containers.
    pub fn len(&self) -> u32 {
        self.free
    }

    /// Whether no container is free.
    pub fn is_empty(&self) -> bool {
        self.free == 0
    }

    /// Total container capacity — the fixed index space, including
    /// containers currently revoked.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Containers currently in service: `capacity() - revoked`.
    pub fn effective_capacity(&self) -> u32 {
        self.capacity - self.revoked_count
    }

    /// Containers currently revoked (out of service).
    pub fn revoked_count(&self) -> u32 {
        self.revoked_count
    }

    /// Whether container `c` is currently revoked.
    pub fn is_revoked(&self, c: u32) -> bool {
        c < self.capacity && self.revoked[(c / 64) as usize] & (1 << (c % 64)) != 0
    }

    /// Takes container `c` out of service. Returns `true` if it was free
    /// (and has been removed from the pool); `false` if it was busy — the
    /// caller owns killing whatever runs on it.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or already revoked.
    pub fn revoke(&mut self, c: u32) -> bool {
        assert!(c < self.capacity, "container {c} out of range (capacity {})", self.capacity);
        assert!(!self.is_revoked(c), "container {c} revoked twice");
        self.revoked[(c / 64) as usize] |= 1 << (c % 64);
        self.revoked_count += 1;
        let was_free = self.contains(c);
        if was_free {
            self.clear(c);
        }
        was_free
    }

    /// Returns a revoked container to service (and to the free set).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or not currently revoked.
    pub fn restore(&mut self, c: u32) {
        assert!(c < self.capacity, "container {c} out of range (capacity {})", self.capacity);
        assert!(self.is_revoked(c), "restore of in-service container {c}");
        self.revoked[(c / 64) as usize] &= !(1 << (c % 64));
        self.revoked_count -= 1;
        self.release(c);
    }

    /// The highest-indexed in-service container (free or busy) — the next
    /// victim of a deterministic revocation sweep.
    pub fn highest_in_service(&self) -> Option<u32> {
        (0..self.capacity).rev().find(|&c| !self.is_revoked(c))
    }

    /// The lowest-indexed revoked container — the next container a
    /// deterministic restock returns to service.
    pub fn lowest_revoked(&self) -> Option<u32> {
        (0..self.capacity).find(|&c| self.is_revoked(c))
    }

    /// Whether container `c` is currently free.
    pub fn contains(&self, c: u32) -> bool {
        c < self.capacity && self.words[(c / 64) as usize] & (1 << (c % 64)) != 0
    }

    /// Acquires (removes and returns) the lowest-indexed free container.
    pub fn acquire_lowest(&mut self) -> Option<u32> {
        let si = self.summary.iter().position(|&s| s != 0)?;
        let w = si * 64 + self.summary[si].trailing_zeros() as usize;
        let c = w as u32 * 64 + self.words[w].trailing_zeros();
        self.clear(c);
        Some(c)
    }

    /// Acquires a specific container; returns `false` if it was not free.
    pub fn acquire(&mut self, c: u32) -> bool {
        if !self.contains(c) {
            return false;
        }
        self.clear(c);
        true
    }

    /// Returns container `c` to the pool.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range; debug-asserts it was not already free.
    pub fn release(&mut self, c: u32) {
        assert!(c < self.capacity, "container {c} out of range (capacity {})", self.capacity);
        let w = (c / 64) as usize;
        debug_assert!(!self.is_revoked(c), "release of revoked container {c}");
        debug_assert!(self.words[w] & (1 << (c % 64)) == 0, "double release of container {c}");
        self.words[w] |= 1 << (c % 64);
        self.summary[w / 64] |= 1 << (w % 64);
        self.free += 1;
    }

    /// The lowest free container hosted by `node`, if any — the query a
    /// data-locality-aware placement needs, answered without scanning the
    /// whole pool.
    pub fn lowest_free_on_node(&self, node: NodeId) -> Option<u32> {
        let &(start, end) = self.node_ranges.get(node.0 as usize)?;
        if start == end {
            return None;
        }
        let (first_w, last_w) = ((start / 64) as usize, ((end - 1) / 64) as usize);
        for w in first_w..=last_w {
            let mut bits = self.words[w];
            if w == first_w {
                bits &= u64::MAX << (start % 64);
            }
            if w == last_w && end % 64 != 0 {
                bits &= (1u64 << (end % 64)) - 1;
            }
            if bits != 0 {
                return Some(w as u32 * 64 + bits.trailing_zeros());
            }
        }
        None
    }

    fn clear(&mut self, c: u32) {
        let w = (c / 64) as usize;
        self.words[w] &= !(1 << (c % 64));
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1 << (w % 64));
        }
        self.free -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_capacity() {
        let c = ClusterSpec::homogeneous(3, 4).unwrap();
        assert_eq!(c.capacity(), 12);
        assert_eq!(c.nodes().len(), 3);
        assert!(c.nodes().iter().all(|n| n.speed_factor() == 1.0));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(ClusterSpec::homogeneous(0, 4), Err(SimError::EmptyCluster));
        assert_eq!(ClusterSpec::homogeneous(4, 0), Err(SimError::EmptyCluster));
    }

    #[test]
    fn rejects_bad_speed() {
        assert!(matches!(
            ClusterSpec::new(vec![(0.0, 1)]),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ClusterSpec::new(vec![(f64::NAN, 1)]),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn paper_testbed_shape() {
        let c = ClusterSpec::paper_testbed(8).unwrap();
        assert_eq!(c.capacity(), 48);
        assert_eq!(c.nodes().len(), 6);
        let speeds: Vec<f64> = c.nodes().iter().map(|n| n.speed_factor()).collect();
        assert!(speeds.contains(&0.85) && speeds.contains(&1.0) && speeds.contains(&1.15));
    }

    #[test]
    fn container_to_node_mapping() {
        let c = ClusterSpec::new(vec![(1.0, 2), (2.0, 1)]).unwrap();
        assert_eq!(c.node_of_container(0).id(), NodeId(0));
        assert_eq!(c.node_of_container(1).id(), NodeId(0));
        assert_eq!(c.node_of_container(2).id(), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn container_out_of_range_panics() {
        let c = ClusterSpec::homogeneous(1, 1).unwrap();
        c.node_of_container(1);
    }

    #[test]
    fn container_node_map_matches_walk() {
        let c = ClusterSpec::new(vec![(1.0, 3), (2.0, 1), (0.5, 2)]).unwrap();
        let map = c.container_node_map();
        assert_eq!(map.len(), 6);
        for (container, &ni) in map.iter().enumerate() {
            assert_eq!(c.nodes()[ni as usize].id(), c.node_of_container(container as u32).id());
        }
        assert_eq!(c.node_container_ranges(), vec![(0, 3), (3, 4), (4, 6)]);
    }

    #[test]
    fn free_pool_acquires_lowest_first() {
        let spec = ClusterSpec::homogeneous(2, 3).unwrap();
        let mut pool = FreePool::new(&spec);
        assert_eq!(pool.len(), 6);
        assert_eq!(pool.capacity(), 6);
        assert_eq!(pool.acquire_lowest(), Some(0));
        assert_eq!(pool.acquire_lowest(), Some(1));
        pool.release(0);
        assert_eq!(pool.acquire_lowest(), Some(0)); // released slot comes back first
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn free_pool_drains_and_refills() {
        let spec = ClusterSpec::homogeneous(1, 130).unwrap(); // spans 3 words
        let mut pool = FreePool::new(&spec);
        let mut order = Vec::new();
        while let Some(c) = pool.acquire_lowest() {
            order.push(c);
        }
        assert_eq!(order, (0..130).collect::<Vec<_>>());
        assert!(pool.is_empty());
        for c in (0..130).rev() {
            pool.release(c);
        }
        assert_eq!(pool.len(), 130);
        assert_eq!(pool.acquire_lowest(), Some(0));
    }

    #[test]
    fn free_pool_specific_acquire_and_membership() {
        let spec = ClusterSpec::homogeneous(1, 8).unwrap();
        let mut pool = FreePool::new(&spec);
        assert!(pool.contains(5));
        assert!(pool.acquire(5));
        assert!(!pool.contains(5));
        assert!(!pool.acquire(5)); // already taken
        assert!(!pool.acquire(99)); // out of range is just "not free"
        assert_eq!(pool.acquire_lowest(), Some(0));
        assert_eq!(pool.len(), 6);
    }

    #[test]
    fn free_pool_lowest_free_on_node() {
        // Node 0: containers 0..3, node 1: 3..4, node 2: 4..6.
        let spec = ClusterSpec::new(vec![(1.0, 3), (1.0, 1), (1.0, 2)]).unwrap();
        let mut pool = FreePool::new(&spec);
        assert_eq!(pool.lowest_free_on_node(NodeId(0)), Some(0));
        assert_eq!(pool.lowest_free_on_node(NodeId(2)), Some(4));
        assert!(pool.acquire(4));
        assert_eq!(pool.lowest_free_on_node(NodeId(2)), Some(5));
        assert!(pool.acquire(3));
        assert_eq!(pool.lowest_free_on_node(NodeId(1)), None);
        assert_eq!(pool.lowest_free_on_node(NodeId(9)), None); // unknown node
    }

    #[test]
    fn free_pool_node_query_across_word_boundaries() {
        // Two nodes of 70 containers each: node 1 spans the 64-bit word seam.
        let spec = ClusterSpec::new(vec![(1.0, 70), (1.0, 70)]).unwrap();
        let mut pool = FreePool::new(&spec);
        assert_eq!(pool.lowest_free_on_node(NodeId(1)), Some(70));
        for c in 70..128 {
            assert!(pool.acquire(c));
        }
        assert_eq!(pool.lowest_free_on_node(NodeId(1)), Some(128));
        for c in 128..140 {
            assert!(pool.acquire(c));
        }
        assert_eq!(pool.lowest_free_on_node(NodeId(1)), None);
        assert_eq!(pool.lowest_free_on_node(NodeId(0)), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn free_pool_release_out_of_range_panics() {
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        FreePool::new(&spec).release(4);
    }

    #[test]
    fn free_pool_revoke_and_restore() {
        let spec = ClusterSpec::homogeneous(1, 6).unwrap();
        let mut pool = FreePool::new(&spec);
        assert_eq!(pool.effective_capacity(), 6);
        assert_eq!(pool.highest_in_service(), Some(5));
        // Revoking a free container removes it from the pool.
        assert!(pool.revoke(5));
        assert_eq!(pool.len(), 5);
        assert_eq!(pool.effective_capacity(), 5);
        assert!(!pool.contains(5));
        assert!(pool.is_revoked(5));
        assert_eq!(pool.highest_in_service(), Some(4));
        assert_eq!(pool.lowest_revoked(), Some(5));
        // Revoking a busy container leaves the free count alone.
        assert!(pool.acquire(4));
        assert!(!pool.revoke(4));
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.effective_capacity(), 4);
        assert_eq!(pool.revoked_count(), 2);
        assert_eq!(pool.lowest_revoked(), Some(4));
        // Restock returns the lowest revoked container to the free set.
        pool.restore(4);
        assert!(pool.contains(4));
        assert_eq!(pool.effective_capacity(), 5);
        pool.restore(5);
        assert_eq!(pool.len(), 6);
        assert_eq!(pool.revoked_count(), 0);
        assert_eq!(pool.lowest_revoked(), None);
    }

    #[test]
    #[should_panic(expected = "revoked twice")]
    fn free_pool_double_revoke_panics() {
        let spec = ClusterSpec::homogeneous(1, 4).unwrap();
        let mut pool = FreePool::new(&spec);
        pool.revoke(3);
        pool.revoke(3);
    }

    #[test]
    fn capacity_event_validation() {
        let ok = vec![
            CapacityEvent { at: 10, change: CapacityChange::Revoke { n: 3 } },
            CapacityEvent { at: 20, change: CapacityChange::Restock { n: 2 } },
            CapacityEvent { at: 20, change: CapacityChange::Revoke { n: 1 } },
        ];
        assert!(validate_capacity_events(4, &ok).is_ok());
        // Out of order.
        let bad = vec![
            CapacityEvent { at: 20, change: CapacityChange::Revoke { n: 1 } },
            CapacityEvent { at: 10, change: CapacityChange::Revoke { n: 1 } },
        ];
        assert!(validate_capacity_events(4, &bad).is_err());
        // Revokes the whole cluster.
        let bad = vec![CapacityEvent { at: 0, change: CapacityChange::Revoke { n: 4 } }];
        assert!(validate_capacity_events(4, &bad).is_err());
        // Restocks more than was revoked.
        let bad = vec![
            CapacityEvent { at: 0, change: CapacityChange::Revoke { n: 1 } },
            CapacityEvent { at: 5, change: CapacityChange::Restock { n: 2 } },
        ];
        assert!(validate_capacity_events(4, &bad).is_err());
        // Zero-sized change.
        let bad = vec![CapacityEvent { at: 0, change: CapacityChange::Revoke { n: 0 } }];
        assert!(validate_capacity_events(4, &bad).is_err());
    }
}

//! Cluster topology: heterogeneous nodes hosting homogeneous containers.
//!
//! The paper's testbed mixes Dell R320 (2.7 GHz), T320 (2.3 GHz) and
//! Optiplex (3.2 GHz) machines; a task's wall-clock runtime therefore
//! depends on where its container lands. We model each [`Node`] with a
//! *speed factor* (relative runtime multiplier: 1.0 = baseline, < 1.0 =
//! faster) and a number of container slots.

use crate::{NodeId, SimError};

/// One machine in the cluster.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    id: NodeId,
    speed_factor: f64,
    containers: u32,
}

impl Node {
    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Runtime multiplier for tasks on this node (1.0 = baseline speed,
    /// 0.8 = 25 % faster, 1.2 = 20 % slower).
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Number of containers hosted by this node.
    pub fn containers(&self) -> u32 {
        self.containers
    }
}

/// The cluster topology handed to the simulator.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterSpec {
    nodes: Vec<Node>,
}

impl ClusterSpec {
    /// Builds a cluster from `(speed_factor, containers)` pairs.
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyCluster`] if the total container count is zero.
    /// * [`SimError::InvalidConfig`] if any speed factor is non-positive or
    ///   non-finite.
    pub fn new(nodes: impl IntoIterator<Item = (f64, u32)>) -> Result<Self, SimError> {
        let mut out = Vec::new();
        for (i, (speed_factor, containers)) in nodes.into_iter().enumerate() {
            if !speed_factor.is_finite() || speed_factor <= 0.0 {
                return Err(SimError::InvalidConfig { reason: "node speed factor must be > 0" });
            }
            out.push(Node { id: NodeId(i as u32), speed_factor, containers });
        }
        let spec = ClusterSpec { nodes: out };
        if spec.capacity() == 0 {
            return Err(SimError::EmptyCluster);
        }
        Ok(spec)
    }

    /// A homogeneous cluster: `nodes` identical unit-speed machines with
    /// `containers_per_node` containers each.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyCluster`] if the total capacity is zero.
    pub fn homogeneous(nodes: u32, containers_per_node: u32) -> Result<Self, SimError> {
        Self::new((0..nodes).map(|_| (1.0, containers_per_node)))
    }

    /// A heterogeneous cluster shaped like the paper's testbed: six nodes of
    /// three speed grades (two fast desktops, two mid servers, two slower
    /// servers) with `containers_per_node` containers each (8 gives the
    /// paper's 48-container capacity).
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyCluster`] if `containers_per_node == 0`.
    pub fn paper_testbed(containers_per_node: u32) -> Result<Self, SimError> {
        Self::new(vec![
            (0.85, containers_per_node), // Optiplex i5-3470 @3.2GHz
            (0.85, containers_per_node),
            (1.0, containers_per_node), // R320 E5-2470v2 @2.7GHz
            (1.0, containers_per_node),
            (1.15, containers_per_node), // T320 E5-2470 @2.3GHz
            (1.15, containers_per_node),
        ])
    }

    /// The nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Total container capacity `C`.
    pub fn capacity(&self) -> u32 {
        self.nodes.iter().map(|n| n.containers).sum()
    }

    /// Maps a flat container index (`0..capacity()`) to its hosting node.
    ///
    /// # Panics
    ///
    /// Panics if `container >= capacity()`.
    pub fn node_of_container(&self, container: u32) -> &Node {
        let mut remaining = container;
        for node in &self.nodes {
            if remaining < node.containers {
                return node;
            }
            remaining -= node.containers;
        }
        panic!("container index {container} out of range (capacity {})", self.capacity());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_capacity() {
        let c = ClusterSpec::homogeneous(3, 4).unwrap();
        assert_eq!(c.capacity(), 12);
        assert_eq!(c.nodes().len(), 3);
        assert!(c.nodes().iter().all(|n| n.speed_factor() == 1.0));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(ClusterSpec::homogeneous(0, 4), Err(SimError::EmptyCluster));
        assert_eq!(ClusterSpec::homogeneous(4, 0), Err(SimError::EmptyCluster));
    }

    #[test]
    fn rejects_bad_speed() {
        assert!(matches!(
            ClusterSpec::new(vec![(0.0, 1)]),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            ClusterSpec::new(vec![(f64::NAN, 1)]),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn paper_testbed_shape() {
        let c = ClusterSpec::paper_testbed(8).unwrap();
        assert_eq!(c.capacity(), 48);
        assert_eq!(c.nodes().len(), 6);
        let speeds: Vec<f64> = c.nodes().iter().map(|n| n.speed_factor()).collect();
        assert!(speeds.contains(&0.85) && speeds.contains(&1.0) && speeds.contains(&1.15));
    }

    #[test]
    fn container_to_node_mapping() {
        let c = ClusterSpec::new(vec![(1.0, 2), (2.0, 1)]).unwrap();
        assert_eq!(c.node_of_container(0).id(), NodeId(0));
        assert_eq!(c.node_of_container(1).id(), NodeId(0));
        assert_eq!(c.node_of_container(2).id(), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn container_out_of_range_panics() {
        let c = ClusterSpec::homogeneous(1, 1).unwrap();
        c.node_of_container(1);
    }
}

//! Execution traces: a structured record of everything that happened in a
//! run, for debugging, visualization and replay-style analysis.
//!
//! Tracing is off by default (it allocates per event); enable it with
//! [`SimConfig::with_trace`](crate::engine::SimConfig::with_trace).

use crate::{JobId, NodeId, Slot, TaskId};

/// One simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceEvent {
    /// A job was submitted.
    JobArrived {
        /// The job.
        job: JobId,
        /// Arrival slot.
        at: Slot,
    },
    /// A task attempt started on a container.
    TaskStarted {
        /// Owning job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Container index.
        container: u32,
        /// Hosting node.
        node: NodeId,
        /// Start slot.
        at: Slot,
        /// Attempt duration in slots (decided at start; hidden from
        /// schedulers).
        duration: Slot,
    },
    /// A task attempt finished successfully.
    TaskFinished {
        /// Owning job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Completion slot.
        at: Slot,
        /// Observed runtime.
        runtime: Slot,
    },
    /// A task attempt failed; the task will be re-queued.
    TaskFailed {
        /// Owning job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Failure slot.
        at: Slot,
        /// Wasted attempt runtime.
        runtime: Slot,
    },
    /// A speculative duplicate of a running task started.
    TaskSpeculated {
        /// Owning job.
        job: JobId,
        /// The task being duplicated.
        task: TaskId,
        /// Container index of the duplicate.
        container: u32,
        /// Hosting node.
        node: NodeId,
        /// Start slot.
        at: Slot,
        /// Attempt duration (hidden from schedulers).
        duration: Slot,
    },
    /// A duplicate attempt was killed because its sibling finished first.
    TaskKilled {
        /// Owning job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Kill slot.
        at: Slot,
    },
    /// A job's last task finished.
    JobCompleted {
        /// The job.
        job: JobId,
        /// Completion slot.
        at: Slot,
    },
}

impl TraceEvent {
    /// The slot at which the event occurred.
    pub fn at(&self) -> Slot {
        match *self {
            TraceEvent::JobArrived { at, .. }
            | TraceEvent::TaskStarted { at, .. }
            | TraceEvent::TaskFinished { at, .. }
            | TraceEvent::TaskFailed { at, .. }
            | TraceEvent::TaskSpeculated { at, .. }
            | TraceEvent::TaskKilled { at, .. }
            | TraceEvent::JobCompleted { at, .. } => at,
        }
    }

    /// The job the event belongs to.
    pub fn job(&self) -> JobId {
        match *self {
            TraceEvent::JobArrived { job, .. }
            | TraceEvent::TaskStarted { job, .. }
            | TraceEvent::TaskFinished { job, .. }
            | TraceEvent::TaskFailed { job, .. }
            | TraceEvent::TaskSpeculated { job, .. }
            | TraceEvent::TaskKilled { job, .. }
            | TraceEvent::JobCompleted { job, .. } => job,
        }
    }
}

/// An ordered event log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with room for `events` entries, so a run with
    /// a known event count never reallocates mid-simulation.
    pub fn with_capacity(events: usize) -> Self {
        Trace { events: Vec::with_capacity(events) }
    }

    /// Appends one event. Events must be pushed in non-decreasing slot
    /// order (the engine guarantees this).
    pub fn push(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| last.at() <= event.at()),
            "trace events must be time-ordered"
        );
        self.events.push(event);
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events belonging to one job.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.job() == job)
    }

    /// Renders the trace as CSV (`slot,kind,job,task,container,runtime`),
    /// suitable for external Gantt plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("slot,kind,job,task,container,runtime\n");
        for e in &self.events {
            let line = match *e {
                TraceEvent::JobArrived { job, at } => format!("{at},arrive,{},,,\n", job.0),
                TraceEvent::TaskStarted { job, task, container, at, duration, .. } => {
                    format!("{at},start,{},{},{container},{duration}\n", job.0, task.0)
                }
                TraceEvent::TaskFinished { job, task, at, runtime } => {
                    format!("{at},finish,{},{},,{runtime}\n", job.0, task.0)
                }
                TraceEvent::TaskFailed { job, task, at, runtime } => {
                    format!("{at},fail,{},{},,{runtime}\n", job.0, task.0)
                }
                TraceEvent::TaskSpeculated { job, task, container, at, duration, .. } => {
                    format!("{at},speculate,{},{},{container},{duration}\n", job.0, task.0)
                }
                TraceEvent::TaskKilled { job, task, at } => {
                    format!("{at},kill,{},{},,\n", job.0, task.0)
                }
                TraceEvent::JobCompleted { job, at } => format!("{at},complete,{},,,\n", job.0),
            };
            out.push_str(&line);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent::JobArrived { job: JobId(0), at: 0 });
        t.push(TraceEvent::TaskStarted {
            job: JobId(0),
            task: TaskId(0),
            container: 2,
            node: NodeId(0),
            at: 0,
            duration: 10,
        });
        t.push(TraceEvent::TaskFailed { job: JobId(0), task: TaskId(0), at: 10, runtime: 10 });
        t.push(TraceEvent::TaskFinished { job: JobId(0), task: TaskId(0), at: 25, runtime: 12 });
        t.push(TraceEvent::JobCompleted { job: JobId(0), at: 25 });
        t
    }

    #[test]
    fn push_and_query() {
        let t = sample_trace();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.for_job(JobId(0)).count(), 5);
        assert_eq!(t.for_job(JobId(1)).count(), 0);
        assert_eq!(t.events()[0].at(), 0);
        assert_eq!(t.events()[4].at(), 25);
    }

    #[test]
    fn csv_shape() {
        let csv = sample_trace().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 6); // header + 5 events
        assert!(lines[0].starts_with("slot,kind"));
        assert!(lines[1].contains("arrive"));
        assert!(lines[2].contains("start"));
        assert!(lines[3].contains("fail"));
        assert!(lines[5].contains("complete"));
    }

    #[test]
    fn event_accessors() {
        let e = TraceEvent::TaskFinished { job: JobId(3), task: TaskId(1), at: 7, runtime: 5 };
        assert_eq!(e.at(), 7);
        assert_eq!(e.job(), JobId(3));
    }
}

//! The scheduler SPI, mirroring YARN's resource-manager plug-in interface.
//!
//! The simulation engine invokes a [`Scheduler`] at three points:
//!
//! 1. [`on_job_arrival`](Scheduler::on_job_arrival) when a job is submitted;
//! 2. [`on_task_complete`](Scheduler::on_task_complete) when a task finishes
//!    (the runtime sample is the estimator telemetry);
//! 3. [`assign`](Scheduler::assign), repeatedly, whenever containers are
//!    free and runnable tasks exist — each call hands out **one** container,
//!    exactly like YARN heartbeat-driven allocation. Returning `None` leaves
//!    the remaining containers idle for this slot, which is a legitimate
//!    decision (RUSH intentionally delays time-insensitive jobs).

use crate::view::{ClusterView, TaskSample};
use crate::JobId;

/// A pluggable cluster scheduler.
///
/// Implementations must be deterministic given their inputs; the simulator
/// supplies no randomness through this interface.
pub trait Scheduler {
    /// Short name used in experiment reports (e.g. `"RUSH"`, `"FIFO"`).
    fn name(&self) -> &str;

    /// Called when a job arrives. The new job is already present in `view`.
    fn on_job_arrival(&mut self, view: &ClusterView<'_>, job: JobId) {
        let _ = (view, job);
    }

    /// Called when a task completes; `sample.runtime` is the observed
    /// wall-clock runtime in slots.
    fn on_task_complete(&mut self, view: &ClusterView<'_>, sample: TaskSample) {
        let _ = (view, sample);
    }

    /// Called when a task attempt fails (the task has been re-queued);
    /// `sample.runtime` is the wasted attempt duration.
    fn on_task_failed(&mut self, view: &ClusterView<'_>, sample: TaskSample) {
        let _ = (view, sample);
    }

    /// Called after a capacity event (revocation or restock) has been
    /// applied; `view.capacity` is the new effective capacity. Attempts
    /// killed by the revocation have already been reported through
    /// [`on_task_failed`](Scheduler::on_task_failed). Default: ignore —
    /// schedulers that track capacity also see it on every later view.
    fn on_capacity_change(&mut self, view: &ClusterView<'_>) {
        let _ = view;
    }

    /// Offers a chance to *speculate*: duplicate the oldest running attempt
    /// of the returned job on a free container (the engine picks the
    /// attempt). Called only while containers remain free after
    /// [`assign`](Scheduler::assign) declines them. The first attempt to
    /// finish wins; the other is killed. Default: never speculate.
    fn speculate(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        let _ = view;
        None
    }

    /// Chooses the job that receives the next free container, or `None` to
    /// leave remaining containers idle until the next scheduling event.
    ///
    /// Returning a job with no runnable tasks counts as a mis-assignment:
    /// the engine ignores it, stops assigning for this event, and increments
    /// [`SimResult::misassignments`](crate::outcome::SimResult::misassignments).
    fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId>;
}

/// The simplest possible scheduler: gives every free container to the
/// earliest-arrived job that still has runnable tasks (task-level FCFS).
///
/// Useful as a sanity baseline and in tests; the paper's FIFO baseline
/// (strict job-level head-of-line) lives in `rush-sched`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsTaskOrder;

impl Scheduler for FcfsTaskOrder {
    fn name(&self) -> &str {
        "FCFS-task"
    }

    fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        view.runnable_jobs().min_by_key(|j| (j.arrival, j.id)).map(|j| j.id)
    }
}

/// Convenience constructor for [`FcfsTaskOrder`].
pub fn fcfs_task_order() -> FcfsTaskOrder {
    FcfsTaskOrder
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::JobView;
    use crate::Slot;
    use rush_utility::{Sensitivity, TimeUtility};

    fn job_view(id: u32, arrival: Slot, runnable: usize) -> JobView {
        JobView {
            id: JobId(id),
            label: format!("j{id}"),
            arrival,
            utility: TimeUtility::constant(1.0).unwrap(),
            priority: 1,
            sensitivity: Sensitivity::Sensitive,
            budget: None,
            total_tasks: 8,
            pending_tasks: runnable,
            runnable_tasks: runnable,
            running_tasks: 0,
            completed_tasks: 0,
            failed_attempts: 0,
            oldest_running_start: None,
            samples: vec![],
        }
    }

    #[test]
    fn fcfs_prefers_earliest_arrival() {
        let jobs = vec![job_view(1, 20, 3), job_view(2, 10, 3)];
        let view = ClusterView { now: 30, capacity: 4, free_containers: 4, jobs: &jobs };
        assert_eq!(FcfsTaskOrder.assign(&view), Some(JobId(2)));
    }

    #[test]
    fn fcfs_skips_jobs_without_runnable_tasks() {
        let jobs = vec![job_view(1, 10, 0), job_view(2, 20, 1)];
        let view = ClusterView { now: 30, capacity: 4, free_containers: 4, jobs: &jobs };
        assert_eq!(FcfsTaskOrder.assign(&view), Some(JobId(2)));
    }

    #[test]
    fn fcfs_returns_none_when_nothing_runnable() {
        let jobs = vec![job_view(1, 10, 0)];
        let view = ClusterView { now: 30, capacity: 4, free_containers: 4, jobs: &jobs };
        assert_eq!(FcfsTaskOrder.assign(&view), None);
    }

    #[test]
    fn fcfs_breaks_ties_by_id() {
        let jobs = vec![job_view(2, 10, 1), job_view(1, 10, 1)];
        let view = ClusterView { now: 30, capacity: 4, free_containers: 4, jobs: &jobs };
        assert_eq!(FcfsTaskOrder.assign(&view), Some(JobId(1)));
    }
}

//! Interference models — the "shared cloud" uncertainty source.
//!
//! In the paper's testbed, task runtimes vary because of slow I/O, memory
//! pressure and co-tenant interference. The simulator reproduces this by
//! multiplying each task's base runtime by a random factor drawn when the
//! task starts. Schedulers never observe the factor, only its effect on
//! completed-task samples.

use rand::Rng;
use rush_prob::dist::{Continuous, LogNormal};

/// How task runtimes are perturbed by the shared infrastructure.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Interference {
    /// No interference: runtime = base × node speed.
    None,
    /// Multiplicative log-normal noise with unit median and the given
    /// coefficient of variation (e.g. 0.2 for mild, 0.5 for heavy
    /// contention). Right-skewed, so stragglers occur — the dominant
    /// uncertainty pattern in shared clusters.
    LogNormal {
        /// Coefficient of variation of the noise factor.
        cv: f64,
    },
    /// With probability `p`, a task becomes a straggler and its runtime is
    /// multiplied by `slowdown`; otherwise it runs at base speed. Models
    /// the paper's head-of-line-blocking outliers.
    Straggler {
        /// Straggler probability in `[0, 1]`.
        p: f64,
        /// Runtime multiplier applied to stragglers (> 1).
        slowdown: f64,
    },
}

impl Interference {
    /// Draws a multiplicative runtime factor (≥ 0) for one task start.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Interference::None => 1.0,
            Interference::LogNormal { cv } => {
                // Unit-mean log-normal with the requested CV.
                match LogNormal::from_mean_std(1.0, cv.max(1e-9)) {
                    Ok(d) => d.sample(rng),
                    Err(_) => 1.0,
                }
            }
            Interference::Straggler { p, slowdown } => {
                if rng.gen::<f64>() < p.clamp(0.0, 1.0) {
                    slowdown.max(1.0)
                } else {
                    1.0
                }
            }
        }
    }
}

impl Default for Interference {
    /// Mild shared-cloud noise (log-normal, CV 0.2).
    fn default() -> Self {
        Interference::LogNormal { cv: 0.2 }
    }
}

/// Task-failure injection — the uncertainty source the paper defers to
/// future work ("we plan to include the estimation of task failure
/// probability").
///
/// A failed attempt consumes its container for the full attempt duration
/// (as a crashed Hadoop task would) and the task is re-queued for another
/// attempt.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FailureModel {
    /// Tasks never fail.
    #[default]
    None,
    /// Each attempt fails independently with probability `p`.
    Bernoulli {
        /// Per-attempt failure probability in `[0, 1)`.
        p: f64,
    },
}

impl FailureModel {
    /// Draws whether one task attempt fails.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        match *self {
            FailureModel::None => false,
            FailureModel::Bernoulli { p } => rng.gen::<f64>() < p.clamp(0.0, 0.999),
        }
    }

    /// The per-attempt failure probability.
    pub fn rate(&self) -> f64 {
        match *self {
            FailureModel::None => 0.0,
            FailureModel::Bernoulli { p } => p.clamp(0.0, 0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rush_prob::rng::seeded_rng;

    #[test]
    fn none_is_identity() {
        let mut rng = seeded_rng(1);
        for _ in 0..10 {
            assert_eq!(Interference::None.draw(&mut rng), 1.0);
        }
    }

    #[test]
    fn lognormal_has_unit_mean() {
        let mut rng = seeded_rng(2);
        let i = Interference::LogNormal { cv: 0.3 };
        let n = 20_000;
        let mean = (0..n).map(|_| i.draw(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn lognormal_factors_positive() {
        let mut rng = seeded_rng(3);
        let i = Interference::LogNormal { cv: 0.8 };
        for _ in 0..1000 {
            assert!(i.draw(&mut rng) > 0.0);
        }
    }

    #[test]
    fn straggler_rate_matches_p() {
        let mut rng = seeded_rng(4);
        let i = Interference::Straggler { p: 0.25, slowdown: 4.0 };
        let n = 20_000;
        let stragglers = (0..n).filter(|_| i.draw(&mut rng) > 1.0).count();
        let rate = stragglers as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn straggler_clamps_degenerate_params() {
        let mut rng = seeded_rng(5);
        let i = Interference::Straggler { p: 2.0, slowdown: 0.5 };
        // p clamps to 1 → always straggler; slowdown clamps to ≥ 1.
        assert_eq!(i.draw(&mut rng), 1.0);
    }

    #[test]
    fn failure_model_rates() {
        let mut rng = seeded_rng(6);
        assert!(!FailureModel::None.draw(&mut rng));
        assert_eq!(FailureModel::None.rate(), 0.0);
        let f = FailureModel::Bernoulli { p: 0.2 };
        let n = 20_000;
        let fails = (0..n).filter(|_| f.draw(&mut rng)).count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn failure_model_clamps_p() {
        let mut rng = seeded_rng(7);
        let f = FailureModel::Bernoulli { p: 1.5 };
        assert!(f.rate() < 1.0);
        // p clamps below 1: some attempt eventually succeeds.
        assert!((0..20_000).any(|_| !f.draw(&mut rng)));
    }

    #[test]
    fn default_is_mild_lognormal() {
        assert_eq!(Interference::default(), Interference::LogNormal { cv: 0.2 });
    }
}

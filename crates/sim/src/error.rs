//! Simulator error types.

use crate::Slot;
use std::error::Error;
use std::fmt;

/// Errors raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The cluster was configured with zero containers.
    EmptyCluster,
    /// A job was submitted with no tasks.
    EmptyJob {
        /// Label of the offending job.
        label: String,
    },
    /// A task had a non-positive or non-finite base runtime.
    InvalidRuntime {
        /// Offending base runtime.
        base_runtime: f64,
    },
    /// The simulation passed `max_slots` without draining all jobs.
    HorizonExceeded {
        /// The configured horizon.
        max_slots: Slot,
        /// Number of jobs still incomplete.
        unfinished: usize,
    },
    /// The scheduler declined to assign any container while work was
    /// runnable, no task was running, and no arrival was pending — the
    /// simulation can never progress.
    SchedulerStalled {
        /// Slot at which the stall was detected.
        at: Slot,
    },
    /// A configuration parameter was out of range.
    InvalidConfig {
        /// Description of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyCluster => write!(f, "cluster must have at least one container"),
            SimError::EmptyJob { label } => write!(f, "job {label} has no tasks"),
            SimError::InvalidRuntime { base_runtime } => {
                write!(f, "task base runtime must be positive and finite, got {base_runtime}")
            }
            SimError::HorizonExceeded { max_slots, unfinished } => {
                write!(f, "simulation exceeded {max_slots} slots with {unfinished} unfinished jobs")
            }
            SimError::SchedulerStalled { at } => {
                write!(f, "scheduler assigned nothing at slot {at} with no way to progress")
            }
            SimError::InvalidConfig { reason } => write!(f, "invalid simulator config: {reason}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            SimError::EmptyCluster,
            SimError::EmptyJob { label: "x".into() },
            SimError::InvalidRuntime { base_runtime: -1.0 },
            SimError::HorizonExceeded { max_slots: 10, unfinished: 2 },
            SimError::SchedulerStalled { at: 5 },
            SimError::InvalidConfig { reason: "bad" },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! A discrete-time, YARN-like cluster simulator for completion-time-aware
//! scheduling research.
//!
//! The RUSH paper (ICDCS 2016) evaluates its scheduler on a Hadoop/YARN
//! cluster. This crate replaces that testbed with a deterministic simulator
//! that preserves the paper's system model (Sec. II):
//!
//! * time advances in integer **slots**;
//! * the cluster offers `C` homogeneous **containers** (hosted on
//!   heterogeneous-speed [nodes](cluster::Node), the paper's mixed
//!   Dell R320/T320/Optiplex fleet);
//! * each **job** is a set of map/reduce **tasks**; a task occupies one
//!   container *continuously* from start to finish (the paper's continuity
//!   constraint);
//! * task runtimes are **uncertain**: the true duration is the template's
//!   base runtime scaled by the node speed and a random interference factor,
//!   and schedulers never observe it in advance — they only see runtime
//!   *samples* of completed tasks, exactly the signal YARN reports.
//!
//! Schedulers plug in through the [`Scheduler`] SPI, mirroring how RUSH,
//! the fair scheduler and the capacity scheduler all sit behind YARN's
//! resource-manager interface. The [`engine::Simulation`] drives arrivals,
//! task completions and container assignment in a reproducible event loop.
//!
//! # Example
//!
//! ```
//! use rush_sim::engine::{Simulation, SimConfig};
//! use rush_sim::job::{JobSpec, Phase, TaskSpec};
//! use rush_sim::scheduler::fcfs_task_order;
//! use rush_utility::TimeUtility;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let job = JobSpec::builder("wordcount")
//!     .arrival(0)
//!     .utility(TimeUtility::step(100.0, 1.0)?)
//!     .tasks((0..4).map(|_| TaskSpec::new(10.0, Phase::Map)))
//!     .build()?;
//! let sim = Simulation::new(SimConfig::homogeneous(1, 2), vec![job])?;
//! let result = sim.run(&mut fcfs_task_order())?;
//! assert_eq!(result.outcomes.len(), 1);
//! // 4 tasks x 10 slots on 2 containers: two waves, 20 slots.
//! assert_eq!(result.outcomes[0].runtime, 20);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod error;
pub mod job;
pub mod outcome;
pub mod perturb;
pub mod scheduler;
pub mod trace;
pub mod view;

pub use error::SimError;
pub use scheduler::Scheduler;

/// A discrete time slot. The paper fixes an arbitrary slot length (e.g. one
/// second); all durations and completion times in the simulator are counted
/// in these units.
pub type Slot = u64;

/// Identifies a job within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobId(pub u32);

/// Identifies a task within its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskId(pub u32);

/// Identifies a node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task-{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(JobId(3).to_string(), "job-3");
        assert_eq!(TaskId(1).to_string(), "task-1");
        assert_eq!(NodeId(0).to_string(), "node-0");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(JobId(1) < JobId(2));
        let mut v = vec![TaskId(5), TaskId(1)];
        v.sort();
        assert_eq!(v, vec![TaskId(1), TaskId(5)]);
    }
}

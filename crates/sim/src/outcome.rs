//! Simulation results: per-job outcomes and run-level counters.

use crate::trace::Trace;
use crate::{JobId, Slot};
use rush_utility::Sensitivity;
use std::time::Duration;

/// What happened to one job.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobOutcome {
    /// Job identifier.
    pub id: JobId,
    /// Label (template name).
    pub label: String,
    /// Arrival slot.
    pub arrival: Slot,
    /// Slot at which the last task finished.
    pub finish: Slot,
    /// Job runtime: `finish − arrival` (the paper's "actual job runtime").
    pub runtime: Slot,
    /// Declared time budget, if any.
    pub budget: Option<Slot>,
    /// Utility achieved: `U(runtime)`.
    pub utility: f64,
    /// Completion-time sensitivity class.
    pub sensitivity: Sensitivity,
    /// Client priority weight.
    pub priority: u32,
    /// Number of tasks in the job.
    pub tasks: usize,
    /// Container·slots consumed by successful attempts.
    pub container_slots: u64,
    /// Container·slots wasted on failed or killed attempts.
    pub wasted_slots: u64,
}

impl JobOutcome {
    /// The paper's latency metric: `runtime − budget` (negative means the
    /// job beat its budget). `None` when the job declared no budget.
    pub fn latency(&self) -> Option<f64> {
        self.budget.map(|b| self.runtime as f64 - b as f64)
    }

    /// Whether the job finished within its budget (vacuously `false`
    /// without a budget).
    pub fn met_budget(&self) -> bool {
        matches!(self.latency(), Some(l) if l <= 0.0)
    }
}

/// Aggregate result of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// One outcome per job, in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Slot at which the last job finished.
    pub makespan: Slot,
    /// Number of container assignments performed.
    pub assignments: u64,
    /// Number of times the scheduler named a job with no runnable task.
    pub misassignments: u64,
    /// Number of `assign` calls issued to the scheduler.
    pub scheduler_invocations: u64,
    /// Total wall-clock time spent inside the scheduler (assign +
    /// notifications) — the quantity behind the paper's Fig. 5 runtime
    /// series.
    pub scheduler_time: Duration,
    /// Task attempts that failed and were re-queued.
    pub failed_attempts: u64,
    /// Speculative duplicate attempts launched.
    pub speculative_attempts: u64,
    /// Task starts placed on their preferred data node.
    pub local_starts: u64,
    /// Task starts with a data preference placed on a different node.
    pub remote_starts: u64,
    /// Duplicate attempts killed because their sibling finished first.
    pub killed_attempts: u64,
    /// Containers taken out of service by capacity events.
    pub revoked_containers: u64,
    /// Containers returned to service by capacity events.
    pub restocked_containers: u64,
    /// Running attempts killed because their container was revoked (each
    /// also counts as a failed attempt: the task is re-queued).
    pub revoked_attempts: u64,
    /// The event trace, when tracing was enabled in the config.
    pub trace: Option<Trace>,
}

impl SimResult {
    /// Sorts `outcomes` into the order the engine promises — ascending
    /// `(finish, id)` — and checks the invariant that the order is *strict*
    /// (ids are unique, so ties on `finish` break deterministically by id).
    ///
    /// Both simulation engines call this exactly once before returning;
    /// every consumer of `outcomes` may rely on the ordering.
    pub fn sort_outcomes(&mut self) {
        self.outcomes.sort_by_key(|o| (o.finish, o.id));
        debug_assert!(
            // bound: windows(2) yields exactly two elements
            self.outcomes.windows(2).all(|w| (w[0].finish, w[0].id) < (w[1].finish, w[1].id)),
            "outcomes must be strictly ordered by (finish, id)"
        );
    }

    /// Outcomes restricted to time-aware (critical + sensitive) jobs — the
    /// population plotted in the paper's Fig. 4.
    pub fn time_aware_outcomes(&self) -> impl Iterator<Item = &JobOutcome> {
        self.outcomes.iter().filter(|o| o.sensitivity.is_time_aware())
    }

    /// The achieved utility vector, one entry per job (arbitrary order) —
    /// the object RUSH's lexicographic max-min criterion ranks.
    pub fn utility_vector(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.utility).collect()
    }

    /// Fraction of jobs with (near-)zero achieved utility, the headline of
    /// the paper's Fig. 6 discussion.
    pub fn zero_utility_fraction(&self, eps: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let zeros = self.outcomes.iter().filter(|o| o.utility <= eps).count();
        zeros as f64 / self.outcomes.len() as f64
    }

    /// Fraction of preference-carrying task starts that ran data-local
    /// (1.0 when no task declared a preference).
    pub fn locality_rate(&self) -> f64 {
        let total = self.local_starts + self.remote_starts;
        if total == 0 {
            1.0
        } else {
            self.local_starts as f64 / total as f64
        }
    }

    /// Looks up one job's outcome.
    pub fn outcome(&self, id: JobId) -> Option<&JobOutcome> {
        self.outcomes.iter().find(|o| o.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: u32, runtime: Slot, budget: Option<Slot>, utility: f64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            label: "t".into(),
            arrival: 0,
            finish: runtime,
            runtime,
            budget,
            utility,
            sensitivity: if id.is_multiple_of(2) {
                Sensitivity::Sensitive
            } else {
                Sensitivity::Insensitive
            },
            priority: 1,
            tasks: 4,
            container_slots: 40,
            wasted_slots: 0,
        }
    }

    #[test]
    fn latency_and_budget() {
        let o = outcome(0, 120, Some(100), 1.0);
        assert_eq!(o.latency(), Some(20.0));
        assert!(!o.met_budget());
        let o = outcome(0, 80, Some(100), 1.0);
        assert_eq!(o.latency(), Some(-20.0));
        assert!(o.met_budget());
        let o = outcome(0, 80, None, 1.0);
        assert_eq!(o.latency(), None);
        assert!(!o.met_budget());
    }

    #[test]
    fn result_aggregates() {
        let r = SimResult {
            outcomes: vec![
                outcome(0, 10, None, 0.0),
                outcome(1, 20, None, 2.0),
                outcome(2, 30, None, 3.0),
            ],
            makespan: 30,
            ..Default::default()
        };
        assert_eq!(r.utility_vector(), vec![0.0, 2.0, 3.0]);
        assert!((r.zero_utility_fraction(1e-9) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.time_aware_outcomes().count(), 2); // ids 0 and 2
        assert_eq!(r.outcome(JobId(1)).unwrap().utility, 2.0);
        assert!(r.outcome(JobId(9)).is_none());
    }

    #[test]
    fn locality_rate_math() {
        let mut r = SimResult::default();
        assert_eq!(r.locality_rate(), 1.0);
        r.local_starts = 3;
        r.remote_starts = 1;
        assert!((r.locality_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_utility_fraction_empty() {
        assert_eq!(SimResult::default().zero_utility_fraction(0.0), 0.0);
    }

    #[test]
    fn sort_outcomes_breaks_finish_ties_by_id() {
        // Jobs 3 and 1 tie on finish; 2 finishes earlier. Expected order:
        // (5, id 2), (9, id 1), (9, id 3).
        let mut r = SimResult {
            outcomes: vec![
                outcome(3, 9, None, 1.0),
                outcome(1, 9, None, 1.0),
                outcome(2, 5, None, 1.0),
            ],
            ..Default::default()
        };
        r.sort_outcomes();
        let order: Vec<(Slot, JobId)> = r.outcomes.iter().map(|o| (o.finish, o.id)).collect();
        assert_eq!(order, vec![(5, JobId(2)), (9, JobId(1)), (9, JobId(3))]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly ordered")]
    fn sort_outcomes_rejects_duplicate_ids() {
        let mut r = SimResult {
            outcomes: vec![outcome(1, 9, None, 1.0), outcome(1, 9, None, 1.0)],
            ..Default::default()
        };
        r.sort_outcomes();
    }
}

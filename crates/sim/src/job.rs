//! Job and task specifications.
//!
//! A [`JobSpec`] is what a client submits through the paper's
//! job-configuration interface: a bag of map/reduce tasks, an arrival time,
//! a completion-time utility, a priority and a sensitivity class. Task
//! *base* runtimes are part of the spec (drawn by the workload generator
//! from the template's runtime distribution) but are **never** revealed to
//! schedulers — they only see completed-task samples.

use crate::{SimError, Slot};
use rush_utility::{Sensitivity, TimeUtility};

/// The MapReduce phase a task belongs to. Reduce tasks only become runnable
/// once every map task of the job has finished (a barrier), matching
/// Hadoop's shuffle boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Phase {
    /// First-phase task; runnable on arrival.
    Map,
    /// Second-phase task; runnable after all maps finish.
    Reduce,
}

/// Specification of one task: its hidden base runtime (slots, before node
/// speed and interference scaling), its phase, and optionally the node its
/// input data lives on.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskSpec {
    base_runtime: f64,
    phase: Phase,
    preferred_node: Option<crate::NodeId>,
}

impl TaskSpec {
    /// Creates a task with the given base runtime (slots) and phase.
    ///
    /// The runtime is validated when the owning [`JobSpec`] is built.
    pub fn new(base_runtime: f64, phase: Phase) -> Self {
        TaskSpec { base_runtime, phase, preferred_node: None }
    }

    /// Declares the node holding this task's input split. Running the task
    /// elsewhere incurs the cluster's remote-execution penalty (see
    /// [`SimConfig::with_remote_penalty`](crate::engine::SimConfig::with_remote_penalty)).
    pub fn with_preference(mut self, node: crate::NodeId) -> Self {
        self.preferred_node = Some(node);
        self
    }

    /// The hidden base runtime in slots.
    pub fn base_runtime(&self) -> f64 {
        self.base_runtime
    }

    /// The task's phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The node holding this task's input, if locality matters for it.
    pub fn preferred_node(&self) -> Option<crate::NodeId> {
        self.preferred_node
    }
}

/// A complete job submission.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JobSpec {
    label: String,
    arrival: Slot,
    tasks: Vec<TaskSpec>,
    utility: TimeUtility,
    priority: u32,
    sensitivity: Sensitivity,
    /// Time budget in slots, if the client declared one (used by EDF and by
    /// latency reporting; RUSH itself reads only the utility function).
    budget: Option<Slot>,
}

impl JobSpec {
    /// Starts building a job with the given human-readable label.
    pub fn builder(label: impl Into<String>) -> JobSpecBuilder {
        JobSpecBuilder {
            label: label.into(),
            arrival: 0,
            tasks: Vec::new(),
            utility: None,
            priority: 1,
            sensitivity: Sensitivity::Sensitive,
            budget: None,
        }
    }

    /// Human-readable label (e.g. the workload template name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Arrival slot.
    pub fn arrival(&self) -> Slot {
        self.arrival
    }

    /// The task specifications.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// The completion-time utility.
    pub fn utility(&self) -> &TimeUtility {
        &self.utility
    }

    /// Client priority weight `W`.
    pub fn priority(&self) -> u32 {
        self.priority
    }

    /// Completion-time sensitivity class.
    pub fn sensitivity(&self) -> Sensitivity {
        self.sensitivity
    }

    /// Declared time budget, if any.
    pub fn budget(&self) -> Option<Slot> {
        self.budget
    }

    /// Number of map tasks.
    pub fn map_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| t.phase() == Phase::Map).count()
    }

    /// Number of reduce tasks.
    pub fn reduce_tasks(&self) -> usize {
        self.tasks.iter().filter(|t| t.phase() == Phase::Reduce).count()
    }

    /// Sum of base runtimes (slots) — the job's hidden ideal total demand on
    /// a unit-speed, interference-free cluster.
    pub fn total_base_runtime(&self) -> f64 {
        self.tasks.iter().map(|t| t.base_runtime()).sum()
    }

    /// Indices of the tasks in `phase`, in declaration order.
    pub fn task_indices(&self, phase: Phase) -> impl DoubleEndedIterator<Item = usize> + '_ {
        self.tasks.iter().enumerate().filter(move |(_, t)| t.phase() == phase).map(|(i, _)| i)
    }
}

/// Builder for [`JobSpec`] (see [`JobSpec::builder`]).
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    label: String,
    arrival: Slot,
    tasks: Vec<TaskSpec>,
    utility: Option<TimeUtility>,
    priority: u32,
    sensitivity: Sensitivity,
    budget: Option<Slot>,
}

impl JobSpecBuilder {
    /// Sets the arrival slot (default 0).
    pub fn arrival(mut self, arrival: Slot) -> Self {
        self.arrival = arrival;
        self
    }

    /// Adds tasks from an iterator.
    pub fn tasks(mut self, tasks: impl IntoIterator<Item = TaskSpec>) -> Self {
        self.tasks.extend(tasks);
        self
    }

    /// Adds one task.
    pub fn task(mut self, task: TaskSpec) -> Self {
        self.tasks.push(task);
        self
    }

    /// Sets the completion-time utility (required).
    pub fn utility(mut self, utility: TimeUtility) -> Self {
        self.utility = Some(utility);
        self
    }

    /// Sets the client priority `W` (default 1).
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the sensitivity class (default `Sensitive`).
    pub fn sensitivity(mut self, sensitivity: Sensitivity) -> Self {
        self.sensitivity = sensitivity;
        self
    }

    /// Declares a time budget in slots.
    pub fn budget(mut self, budget: Slot) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Validates and builds the [`JobSpec`].
    ///
    /// # Errors
    ///
    /// * [`SimError::EmptyJob`] if no tasks were added.
    /// * [`SimError::InvalidRuntime`] if any base runtime is non-positive or
    ///   non-finite.
    /// * [`SimError::InvalidConfig`] if no utility was set.
    pub fn build(self) -> Result<JobSpec, SimError> {
        if self.tasks.is_empty() {
            return Err(SimError::EmptyJob { label: self.label });
        }
        for t in &self.tasks {
            if !t.base_runtime.is_finite() || t.base_runtime <= 0.0 {
                return Err(SimError::InvalidRuntime { base_runtime: t.base_runtime });
            }
        }
        let utility =
            self.utility.ok_or(SimError::InvalidConfig { reason: "job utility not set" })?;
        Ok(JobSpec {
            label: self.label,
            arrival: self.arrival,
            tasks: self.tasks,
            utility,
            priority: self.priority,
            sensitivity: self.sensitivity,
            budget: self.budget,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn util() -> TimeUtility {
        TimeUtility::constant(1.0).unwrap()
    }

    #[test]
    fn builder_happy_path() {
        let job = JobSpec::builder("wc")
            .arrival(5)
            .tasks(vec![TaskSpec::new(10.0, Phase::Map), TaskSpec::new(20.0, Phase::Reduce)])
            .utility(util())
            .priority(3)
            .sensitivity(Sensitivity::Critical)
            .budget(100)
            .build()
            .unwrap();
        assert_eq!(job.label(), "wc");
        assert_eq!(job.arrival(), 5);
        assert_eq!(job.map_tasks(), 1);
        assert_eq!(job.reduce_tasks(), 1);
        assert_eq!(job.priority(), 3);
        assert_eq!(job.sensitivity(), Sensitivity::Critical);
        assert_eq!(job.budget(), Some(100));
        assert_eq!(job.total_base_runtime(), 30.0);
    }

    #[test]
    fn builder_rejects_empty_job() {
        let err = JobSpec::builder("empty").utility(util()).build().unwrap_err();
        assert!(matches!(err, SimError::EmptyJob { .. }));
    }

    #[test]
    fn builder_rejects_bad_runtime() {
        let err = JobSpec::builder("bad")
            .task(TaskSpec::new(0.0, Phase::Map))
            .utility(util())
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidRuntime { .. }));
        let err = JobSpec::builder("bad")
            .task(TaskSpec::new(f64::NAN, Phase::Map))
            .utility(util())
            .build()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidRuntime { .. }));
    }

    #[test]
    fn builder_requires_utility() {
        let err = JobSpec::builder("nou").task(TaskSpec::new(1.0, Phase::Map)).build().unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn task_preference_is_optional() {
        let t = TaskSpec::new(5.0, Phase::Map);
        assert_eq!(t.preferred_node(), None);
        let t = t.with_preference(crate::NodeId(2));
        assert_eq!(t.preferred_node(), Some(crate::NodeId(2)));
    }

    #[test]
    fn defaults() {
        let job = JobSpec::builder("d")
            .task(TaskSpec::new(1.0, Phase::Map))
            .utility(util())
            .build()
            .unwrap();
        assert_eq!(job.arrival(), 0);
        assert_eq!(job.priority(), 1);
        assert_eq!(job.sensitivity(), Sensitivity::Sensitive);
        assert_eq!(job.budget(), None);
    }
}

//! The discrete-time simulation engine.
//!
//! [`Simulation::run`] drives a deterministic event loop over job arrivals,
//! task completions and container assignment. Between events the clock
//! jumps directly to the next interesting slot, so run cost scales with the
//! number of task starts/finishes rather than with wall-clock horizon.
//!
//! Per event, the processing order is:
//!
//! 1. task completions at the current slot (containers are freed, samples
//!    are reported to the scheduler);
//! 2. job arrivals at the current slot;
//! 3. the **dispatch loop**: while containers are free and runnable tasks
//!    exist, the scheduler is asked to name the job that gets the next
//!    container. Returning `None` leaves the remaining containers idle
//!    until the next event — a legitimate decision for a completion-time
//!    aware scheduler.
//!
//! # Two engines, one contract
//!
//! The default engine is **indexed**: completions live in a lazy-deletion
//! binary heap keyed by `(end, job, task, container)` (O(log n) next
//! event), free containers in a two-level bitset
//! [`FreePool`](crate::cluster::FreePool) (O(1) word-op acquire/release),
//! the dispatch condition is a maintained `total_runnable` counter, and
//! per-event scratch (attempt slab, per-job attempt lists, the job → view
//! index) is allocated once up front, so the steady state allocates only
//! when a job's sample vector or the optional trace grows.
//!
//! The seed engine — linear scans over a running `Vec`, a re-sorted free
//! list — is preserved verbatim as [`naive::run`] and must produce
//! **bit-identical** results: same outcomes, same counters, same trace
//! event sequence, same RNG draw order. The differential property test in
//! `tests/engine_differential.rs` holds the two to that contract under
//! randomized workloads, failures, interference and speculation.

use crate::cluster::{
    validate_capacity_events, CapacityChange, CapacityEvent, ClusterSpec, FreePool,
};
use crate::job::{JobSpec, Phase};
use crate::outcome::{JobOutcome, SimResult};
use crate::perturb::{FailureModel, Interference};
use crate::scheduler::Scheduler;
use crate::trace::{Trace, TraceEvent};
use crate::view::{ClusterView, JobView, TaskSample};
use crate::{JobId, SimError, Slot, TaskId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rush_utility::Utility;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    cluster: ClusterSpec,
    interference: Interference,
    failures: FailureModel,
    record_trace: bool,
    remote_penalty: f64,
    max_slots: Slot,
    seed: u64,
    capacity_events: Vec<CapacityEvent>,
}

impl SimConfig {
    /// Creates a configuration for the given cluster with no interference,
    /// a `2^40`-slot horizon and seed 0.
    pub fn new(cluster: ClusterSpec) -> Self {
        SimConfig {
            cluster,
            interference: Interference::None,
            failures: FailureModel::None,
            record_trace: false,
            remote_penalty: 1.0,
            max_slots: 1 << 40,
            seed: 0,
            capacity_events: Vec::new(),
        }
    }

    /// Convenience: a homogeneous, interference-free cluster of
    /// `nodes × containers_per_node` unit-speed containers.
    ///
    /// # Panics
    ///
    /// Panics if the capacity would be zero.
    pub fn homogeneous(nodes: u32, containers_per_node: u32) -> Self {
        Self::new(
            ClusterSpec::homogeneous(nodes, containers_per_node)
                .expect("homogeneous cluster must have at least one container"),
        )
    }

    /// Sets the interference model (default: none).
    pub fn with_interference(mut self, interference: Interference) -> Self {
        self.interference = interference;
        self
    }

    /// Sets the task-failure model (default: no failures). Failed attempts
    /// occupy their container for the full attempt duration and the task is
    /// re-queued.
    pub fn with_failures(mut self, failures: FailureModel) -> Self {
        self.failures = failures;
        self
    }

    /// Enables event tracing; the resulting [`Trace`] is attached to the
    /// `SimResult` (see [`crate::outcome`]).
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Sets the runtime multiplier applied when a task with a declared
    /// [data preference](crate::job::TaskSpec::with_preference) runs on a
    /// different node (default 1.0 = locality is free). Hadoop's rule of
    /// thumb for rack-remote map input is 1.1–1.5.
    ///
    /// # Panics
    ///
    /// Panics unless `penalty ≥ 1.0` and finite.
    pub fn with_remote_penalty(mut self, penalty: f64) -> Self {
        assert!(penalty.is_finite() && penalty >= 1.0, "remote penalty must be >= 1");
        self.remote_penalty = penalty;
        self
    }

    /// Sets the RNG seed for interference draws (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the safety horizon after which the run aborts (default 2^40).
    pub fn with_max_slots(mut self, max_slots: Slot) -> Self {
        self.max_slots = max_slots;
        self
    }

    /// Sets the deterministic capacity-event stream (default: none). Events
    /// must be sorted by slot; they are validated against the cluster's
    /// capacity when the simulation is built.
    pub fn with_capacity_events(mut self, events: Vec<CapacityEvent>) -> Self {
        self.capacity_events = events;
        self
    }

    /// The configured capacity-event stream.
    pub fn capacity_events(&self) -> &[CapacityEvent] {
        &self.capacity_events
    }

    /// The cluster topology.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Total container capacity.
    pub fn capacity(&self) -> u32 {
        self.cluster.capacity()
    }
}

/// Per-job mutable state inside the engine.
#[derive(Debug)]
struct JobState {
    spec: JobSpec,
    /// Unstarted map task indices (popped from the back).
    pending_maps: Vec<usize>,
    /// Unstarted reduce task indices (popped from the back).
    pending_reduces: Vec<usize>,
    maps_remaining: usize,
    completed: usize,
    finish: Option<Slot>,
    /// Container·slots consumed by successful attempts.
    useful_slots: u64,
    /// Container·slots wasted on failed or killed attempts.
    wasted_slots: u64,
}

/// A task attempt occupying a container until `end`, stored in the
/// indexed engine's attempt slab.
#[derive(Debug, Clone, Copy)]
struct Attempt {
    end: Slot,
    job: u32,
    task: u32,
    container: u32,
    duration: Slot,
    fails: bool,
    speculative: bool,
    /// Cleared when the attempt is killed or popped; a dead slab entry
    /// lingers until its heap entry surfaces (lazy deletion).
    alive: bool,
}

impl Attempt {
    fn start(&self) -> Slot {
        self.end - self.duration
    }
}

/// Completion-queue key: `(end, job, task, container, attempt_id)`.
///
/// The first four fields replicate the naive engine's pop order — the due
/// attempt with the smallest `(job, task, container)` — and are unique
/// among *alive* attempts (containers are exclusive; duplicates of one
/// task sit on different containers), so the trailing slab id never
/// decides between two live entries; it only keeps the ordering total once
/// dead entries are in the heap.
type QueueKey = (Slot, u32, u32, u32, u32);

/// All per-run engine indexes, allocated once before the event loop.
///
/// Nothing here allocates in the steady state: the attempt slab recycles
/// slots through a free list, the completion queue's backing buffer is
/// pre-sized to cluster capacity (an attempt needs a container, so at most
/// `capacity` entries are alive; dead entries are drained lazily), and the
/// per-job attempt lists grow to each job's high-water running count.
#[derive(Debug)]
struct EngineState {
    /// Attempt storage; `slab_free` holds recyclable slots.
    slab: Vec<Attempt>,
    slab_free: Vec<u32>,
    /// Min-heap of completions with lazy deletion of killed attempts.
    queue: BinaryHeap<Reverse<QueueKey>>,
    /// Free containers as a two-level bitset (lowest-index acquire).
    free: FreePool,
    /// Scheduler-visible views of active jobs, in arrival order.
    views: Vec<JobView>,
    /// Job index → position in `views`, `None` once the job completed (or
    /// before it arrives).
    view_of: Vec<Option<u32>>,
    /// Alive attempt ids per job — sized for sibling lookup, speculation
    /// targeting and oldest-start refresh without scanning all running
    /// attempts.
    job_attempts: Vec<Vec<u32>>,
    /// Container → node index, precomputed from the cluster spec.
    node_of: Vec<u32>,
    /// Maintained sum of `views[*].runnable_tasks` — the dispatch-loop
    /// condition without a view scan.
    total_runnable: usize,
    /// Jobs with `finish` set — the termination condition without a job
    /// scan.
    finished_jobs: usize,
}

impl EngineState {
    fn new(config: &SimConfig, n_jobs: usize) -> Self {
        let capacity = config.capacity() as usize;
        EngineState {
            slab: Vec::with_capacity(capacity),
            slab_free: Vec::with_capacity(capacity),
            queue: BinaryHeap::with_capacity(capacity + 1),
            free: FreePool::new(config.cluster()),
            views: Vec::new(),
            view_of: vec![None; n_jobs],
            job_attempts: vec![Vec::new(); n_jobs],
            node_of: config.cluster().container_node_map(),
            total_runnable: 0,
            finished_jobs: 0,
        }
    }

    /// Registers a new attempt: slab slot (recycled if possible), heap
    /// entry, per-job list entry.
    fn spawn(&mut self, a: Attempt) {
        let id = match self.slab_free.pop() {
            Some(id) => {
                self.slab[id as usize] = a;
                id
            }
            None => {
                self.slab.push(a);
                (self.slab.len() - 1) as u32
            }
        };
        self.queue.push(Reverse((a.end, a.job, a.task, a.container, id)));
        self.job_attempts[a.job as usize].push(id);
    }

    /// Pops the next attempt due at `now`, in the naive engine's order
    /// (smallest `(job, task, container)` first). Dead heap entries are
    /// discarded — and their slab slots recycled — on the way.
    fn pop_due(&mut self, now: Slot) -> Option<Attempt> {
        while let Some(&Reverse((end, _, _, _, id))) = self.queue.peek() {
            let a = self.slab[id as usize];
            if !a.alive {
                self.queue.pop();
                self.slab_free.push(id);
                continue;
            }
            if end != now {
                return None;
            }
            self.queue.pop();
            let attempts = &mut self.job_attempts[a.job as usize];
            let pos = attempts.iter().position(|&x| x == id).expect("attempt tracked");
            attempts.swap_remove(pos);
            self.slab[id as usize].alive = false;
            self.slab_free.push(id);
            return Some(a);
        }
        None
    }

    /// Earliest end across alive attempts. Dead heap tops are drained so
    /// the engine never advances to a slot where nothing happens (which
    /// would add scheduler invocations the naive engine does not issue).
    fn next_end(&mut self) -> Option<Slot> {
        while let Some(&Reverse((end, _, _, _, id))) = self.queue.peek() {
            if self.slab[id as usize].alive {
                return Some(end);
            }
            self.queue.pop();
            self.slab_free.push(id);
        }
        None
    }

    /// Kills attempt `id` (sibling lost the duplicate race). The slab slot
    /// is **not** recycled here — the heap still holds an entry pointing at
    /// it; the slot frees when that entry surfaces in
    /// [`pop_due`](Self::pop_due)/[`next_end`](Self::next_end).
    fn kill(&mut self, id: u32) {
        let job = self.slab[id as usize].job as usize;
        self.slab[id as usize].alive = false;
        let attempts = &mut self.job_attempts[job];
        let pos = attempts.iter().position(|&x| x == id).expect("attempt tracked");
        attempts.swap_remove(pos);
    }

    /// The alive duplicate of `(job, task)`, if one is running. At most one
    /// exists: speculation only duplicates singleton attempts.
    fn sibling_of(&self, job: u32, task: u32) -> Option<u32> {
        self.job_attempts[job as usize]
            .iter()
            .copied()
            .find(|&a| self.slab[a as usize].task == task)
    }

    /// Refreshes the job view's oldest-running-attempt start from the
    /// job's alive attempts (no-op once the job's view is gone).
    fn refresh_oldest(&mut self, job: u32) {
        if let Some(vi) = self.view_of[job as usize] {
            self.views[vi as usize].oldest_running_start = self.job_attempts[job as usize]
                .iter()
                .map(|&a| self.slab[a as usize].start())
                .min();
        }
    }

    /// The alive attempt currently occupying container `c`, if any.
    fn attempt_on(&self, c: u32) -> Option<u32> {
        self.slab
            .iter()
            .position(|a| a.alive && a.container == c)
            .map(|i| i as u32)
    }

    /// Removes a completed job's view and re-indexes the views behind it
    /// (views stay in arrival order, which schedulers observe).
    fn remove_view(&mut self, vi: usize) {
        let job = self.views[vi].id.0 as usize;
        self.views.remove(vi);
        self.view_of[job] = None;
        for (w, v) in self.views.iter().enumerate().skip(vi) {
            self.view_of[v.id.0 as usize] = Some(w as u32);
        }
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    jobs: Vec<JobState>,
}

impl Simulation {
    /// Creates a simulation over the given jobs. Jobs receive ids
    /// `JobId(0)..` in submission order.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if `jobs` is empty.
    pub fn new(config: SimConfig, jobs: Vec<JobSpec>) -> Result<Self, SimError> {
        if jobs.is_empty() {
            return Err(SimError::InvalidConfig { reason: "no jobs submitted" });
        }
        validate_capacity_events(config.capacity(), &config.capacity_events)?;
        let jobs = jobs
            .into_iter()
            .map(|spec| {
                let maps: Vec<usize> = spec.task_indices(Phase::Map).rev().collect();
                let reduces: Vec<usize> = spec.task_indices(Phase::Reduce).rev().collect();
                JobState {
                    maps_remaining: maps.len(),
                    pending_maps: maps,
                    pending_reduces: reduces,
                    completed: 0,
                    finish: None,
                    useful_slots: 0,
                    wasted_slots: 0,
                    spec,
                }
            })
            .collect();
        Ok(Simulation { config, jobs })
    }

    /// Runs the simulation to completion under `scheduler`, consuming it.
    ///
    /// This is the indexed engine; [`naive::run`] executes the same
    /// semantics with scan-based structures and must agree bit-for-bit.
    ///
    /// # Errors
    ///
    /// * [`SimError::HorizonExceeded`] if the configured `max_slots` passes
    ///   with unfinished jobs.
    /// * [`SimError::SchedulerStalled`] if the scheduler refuses to assign
    ///   while nothing is running and no arrival is pending.
    pub fn run<S: Scheduler + ?Sized>(mut self, scheduler: &mut S) -> Result<SimResult, SimError> {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);

        // Arrivals sorted descending so the next arrival pops from the back.
        let mut arrivals: Vec<usize> = (0..self.jobs.len()).collect();
        arrivals.sort_by_key(|&i| Reverse((self.jobs[i].spec.arrival(), i)));

        let cap_events = self.config.capacity_events.clone();
        let mut cap_idx = 0usize;

        let mut st = EngineState::new(&self.config, self.jobs.len());
        let mut result = SimResult::default();
        let mut trace: Option<Trace> = if self.config.record_trace {
            // Every job arrives and completes; every task starts and
            // finishes at least once. Failures, kills and speculation push
            // past the hint, but the common case never reallocates.
            let total_tasks: usize = self.jobs.iter().map(|j| j.spec.tasks().len()).sum();
            Some(Trace::with_capacity(2 * self.jobs.len() + 2 * total_tasks))
        } else {
            None
        };
        let mut now: Slot = match arrivals.last() {
            Some(&i) => self.jobs[i].spec.arrival(),
            None => 0,
        };

        loop {
            // 1. Completions (and attempt failures) at `now`.
            while let Some(a) = st.pop_due(now) {
                st.free.release(a.container);
                let sibling = st.sibling_of(a.job, a.task);
                if a.fails {
                    let sample = self.fail_task_ix(
                        &mut st,
                        a,
                        now,
                        sibling.is_some(),
                        &mut result,
                        &mut trace,
                    );
                    st.refresh_oldest(a.job);
                    let view = ClusterView {
                        now,
                        capacity: st.free.effective_capacity(),
                        free_containers: st.free.len(),
                        jobs: &st.views,
                    };
                    let t0 = Instant::now();
                    scheduler.on_task_failed(&view, sample);
                    result.scheduler_time += t0.elapsed();
                } else {
                    // First successful attempt wins: kill any duplicate of
                    // the same task before recording the completion.
                    if let Some(sib_id) = sibling {
                        let sib = st.slab[sib_id as usize];
                        st.kill(sib_id);
                        st.free.release(sib.container);
                        result.killed_attempts += 1;
                        self.jobs[sib.job as usize].wasted_slots +=
                            now.saturating_sub(sib.start());
                        if let Some(vi) = st.view_of[sib.job as usize] {
                            st.views[vi as usize].running_tasks -= 1;
                        }
                        if let Some(trace) = &mut trace {
                            trace.push(TraceEvent::TaskKilled {
                                job: JobId(sib.job),
                                task: TaskId(sib.task),
                                at: now,
                            });
                        }
                    }
                    let sample = self.complete_task_ix(&mut st, a, now, &mut result, &mut trace);
                    st.refresh_oldest(a.job);
                    let view = ClusterView {
                        now,
                        capacity: st.free.effective_capacity(),
                        free_containers: st.free.len(),
                        jobs: &st.views,
                    };
                    let t0 = Instant::now();
                    scheduler.on_task_complete(&view, sample);
                    result.scheduler_time += t0.elapsed();
                }
            }

            // 1b. Capacity events at `now`, after completions have freed
            // their containers: a revocation claims the highest-indexed
            // in-service containers (whatever runs on one is killed and
            // re-queued as a failure, charged as wasted slots); a restock
            // returns the lowest-indexed revoked containers. The scheduler
            // observes the change through `on_capacity_change` and through
            // every later view's effective capacity.
            while cap_idx < cap_events.len() && cap_events[cap_idx].at <= now {
                let ev = cap_events[cap_idx];
                cap_idx += 1;
                match ev.change {
                    CapacityChange::Revoke { n } => {
                        for _ in 0..n {
                            let c = st.free.highest_in_service().expect("schedule validated");
                            result.revoked_containers += 1;
                            if st.free.revoke(c) {
                                continue; // was free: nothing to kill
                            }
                            let id = st.attempt_on(c).expect("busy container has an attempt");
                            let a = st.slab[id as usize];
                            st.kill(id);
                            let sibling = st.sibling_of(a.job, a.task);
                            // The attempt dies mid-flight: only the elapsed
                            // runtime was wasted, and that is what the
                            // scheduler observes as the failure sample.
                            let killed =
                                Attempt { end: now, duration: now - a.start(), ..a };
                            let sample = self.fail_task_ix(
                                &mut st,
                                killed,
                                now,
                                sibling.is_some(),
                                &mut result,
                                &mut trace,
                            );
                            result.revoked_attempts += 1;
                            st.refresh_oldest(a.job);
                            let view = ClusterView {
                                now,
                                capacity: st.free.effective_capacity(),
                                free_containers: st.free.len(),
                                jobs: &st.views,
                            };
                            let t0 = Instant::now();
                            scheduler.on_task_failed(&view, sample);
                            result.scheduler_time += t0.elapsed();
                        }
                    }
                    CapacityChange::Restock { n } => {
                        for _ in 0..n {
                            let c = st.free.lowest_revoked().expect("schedule validated");
                            st.free.restore(c);
                            result.restocked_containers += 1;
                        }
                    }
                }
                let view = ClusterView {
                    now,
                    capacity: st.free.effective_capacity(),
                    free_containers: st.free.len(),
                    jobs: &st.views,
                };
                let t0 = Instant::now();
                scheduler.on_capacity_change(&view);
                result.scheduler_time += t0.elapsed();
            }

            // 2. Arrivals at `now`.
            while arrivals.last().is_some_and(|&i| self.jobs[i].spec.arrival() == now) {
                let i = arrivals.pop().expect("peeked");
                let v = self.make_view(i);
                let id = v.id;
                st.view_of[i] = Some(st.views.len() as u32);
                st.total_runnable += v.runnable_tasks;
                st.views.push(v);
                if let Some(trace) = &mut trace {
                    trace.push(TraceEvent::JobArrived { job: id, at: now });
                }
                let view = ClusterView {
                    now,
                    capacity: st.free.effective_capacity(),
                    free_containers: st.free.len(),
                    jobs: &st.views,
                };
                let t0 = Instant::now();
                scheduler.on_job_arrival(&view, id);
                result.scheduler_time += t0.elapsed();
            }

            // 3. Dispatch loop. A bounded misassignment budget lets a
            // scheduler recover from naming an invalid job without letting
            // a persistently confused one spin the engine forever.
            let mut misassign_budget = st.free.effective_capacity() as u64 + 1;
            while !st.free.is_empty() && st.total_runnable > 0 {
                let view = ClusterView {
                    now,
                    capacity: st.free.effective_capacity(),
                    free_containers: st.free.len(),
                    jobs: &st.views,
                };
                let t0 = Instant::now();
                let choice = scheduler.assign(&view);
                result.scheduler_time += t0.elapsed();
                result.scheduler_invocations += 1;
                match choice {
                    None => break,
                    Some(id) => {
                        let Some(vi) = st.view_of.get(id.0 as usize).copied().flatten() else {
                            result.misassignments += 1;
                            misassign_budget -= 1;
                            if misassign_budget == 0 {
                                break;
                            }
                            continue;
                        };
                        let vi = vi as usize;
                        if st.views[vi].runnable_tasks == 0 {
                            result.misassignments += 1;
                            misassign_budget -= 1;
                            if misassign_budget == 0 {
                                break;
                            }
                            continue;
                        }
                        let container = st.free.acquire_lowest().expect("free checked");
                        self.start_task_ix(
                            &mut st,
                            vi,
                            container,
                            now,
                            &mut rng,
                            &mut trace,
                            &mut result,
                        );
                        result.assignments += 1;
                    }
                }
            }

            // 3b. Speculation loop: with containers still free, offer the
            // scheduler the chance to duplicate a long-running attempt
            // (Hadoop-style speculative execution). The engine picks the
            // oldest non-duplicated primary attempt of the named job.
            let mut spec_budget = st.free.effective_capacity() as u64;
            while !st.free.is_empty() && spec_budget > 0 {
                spec_budget -= 1;
                let view = ClusterView {
                    now,
                    capacity: st.free.effective_capacity(),
                    free_containers: st.free.len(),
                    jobs: &st.views,
                };
                let t0 = Instant::now();
                let choice = scheduler.speculate(&view);
                result.scheduler_time += t0.elapsed();
                let Some(id) = choice else { break };
                let job_idx = id.0 as usize;
                let target = st.job_attempts.get(job_idx).and_then(|attempts| {
                    attempts
                        .iter()
                        .map(|&aid| st.slab[aid as usize])
                        .filter(|a| {
                            !a.speculative
                                && attempts
                                    .iter()
                                    .filter(|&&o| st.slab[o as usize].task == a.task)
                                    .count()
                                    == 1
                        })
                        .min_by_key(|a| (a.start(), a.task))
                });
                let Some(primary) = target else { break };
                let container = st.free.acquire_lowest().expect("free checked");
                let task = self.jobs[job_idx].spec.tasks()[primary.task as usize];
                let base = task.base_runtime();
                let node = &self.config.cluster.nodes()[st.node_of[container as usize] as usize];
                let locality = match task.preferred_node() {
                    Some(pref) if pref != node.id() => self.config.remote_penalty,
                    _ => 1.0,
                };
                let factor = self.config.interference.draw(&mut rng);
                let fails = self.config.failures.draw(&mut rng);
                let duration =
                    (base * node.speed_factor() * locality * factor).ceil().max(1.0) as Slot;
                if let Some(trace) = &mut trace {
                    trace.push(TraceEvent::TaskSpeculated {
                        job: id,
                        task: TaskId(primary.task),
                        container,
                        node: node.id(),
                        at: now,
                        duration,
                    });
                }
                st.spawn(Attempt {
                    end: now + duration,
                    job: job_idx as u32,
                    task: primary.task,
                    container,
                    duration,
                    fails,
                    speculative: true,
                    alive: true,
                });
                if let Some(vi) = st.view_of[job_idx] {
                    st.views[vi as usize].running_tasks += 1;
                }
                st.refresh_oldest(job_idx as u32);
                result.speculative_attempts += 1;
            }

            // 4. Advance to the next event.
            if st.finished_jobs == self.jobs.len() {
                break;
            }
            let next_completion = st.next_end();
            let next_arrival = arrivals.last().map(|&i| self.jobs[i].spec.arrival());
            let next_capacity = cap_events.get(cap_idx).map(|e| e.at);
            let next = [next_completion, next_arrival, next_capacity]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else {
                return Err(SimError::SchedulerStalled { at: now });
            };
            debug_assert!(next > now, "time must advance");
            if next > self.config.max_slots {
                let unfinished = self.jobs.len() - st.finished_jobs;
                return Err(SimError::HorizonExceeded {
                    max_slots: self.config.max_slots,
                    unfinished,
                });
            }
            now = next;
        }

        result.makespan = now;
        result.sort_outcomes();
        result.trace = trace;
        Ok(result)
    }

    /// Handles a failed attempt (indexed engine): the task is re-queued and
    /// the wasted runtime reported.
    fn fail_task_ix(
        &mut self,
        st: &mut EngineState,
        a: Attempt,
        now: Slot,
        sibling_running: bool,
        result: &mut SimResult,
        trace: &mut Option<Trace>,
    ) -> TaskSample {
        let job = &mut self.jobs[a.job as usize];
        let was_map = job.spec.tasks()[a.task as usize].phase() == Phase::Map;
        // With a duplicate attempt still in flight, the failure is absorbed:
        // the task stays running elsewhere and is not re-queued.
        if !sibling_running {
            if was_map {
                job.pending_maps.push(a.task as usize);
            } else {
                job.pending_reduces.push(a.task as usize);
            }
        }
        let vi = st.view_of[a.job as usize].expect("failing task of an active job") as usize;
        let v = &mut st.views[vi];
        v.running_tasks -= 1;
        v.failed_attempts += 1;
        if !sibling_running {
            v.pending_tasks += 1;
            // Re-queued map tasks are always runnable; reduces only once the
            // map barrier has cleared (it has, if a reduce was running).
            if was_map || job.maps_remaining == 0 {
                v.runnable_tasks += 1;
                st.total_runnable += 1;
            }
        }
        result.failed_attempts += 1;
        job.wasted_slots += a.duration;
        if let Some(trace) = trace {
            trace.push(TraceEvent::TaskFailed {
                job: JobId(a.job),
                task: TaskId(a.task),
                at: now,
                runtime: a.duration,
            });
        }
        TaskSample {
            job: JobId(a.job),
            task: TaskId(a.task),
            runtime: a.duration,
            finished_at: now,
        }
    }

    /// Builds the initial view of job `i`.
    fn make_view(&self, i: usize) -> JobView {
        let job = &self.jobs[i];
        let spec = &job.spec;
        let runnable = if job.maps_remaining > 0 {
            job.pending_maps.len()
        } else {
            job.pending_maps.len() + job.pending_reduces.len()
        };
        JobView {
            id: JobId(i as u32),
            label: spec.label().to_owned(),
            arrival: spec.arrival(),
            utility: *spec.utility(),
            priority: spec.priority(),
            sensitivity: spec.sensitivity(),
            budget: spec.budget(),
            total_tasks: spec.tasks().len(),
            pending_tasks: spec.tasks().len(),
            runnable_tasks: runnable,
            running_tasks: 0,
            completed_tasks: 0,
            failed_attempts: 0,
            oldest_running_start: None,
            samples: Vec::new(),
        }
    }

    /// Starts the next runnable task of the job behind `views[vi]`
    /// (indexed engine).
    #[allow(clippy::too_many_arguments)] // engine plumbing, not public API
    fn start_task_ix(
        &mut self,
        st: &mut EngineState,
        vi: usize,
        container: u32,
        now: Slot,
        rng: &mut SmallRng,
        trace: &mut Option<Trace>,
        result: &mut SimResult,
    ) {
        let job_idx = st.views[vi].id.0 as usize;
        let node = &self.config.cluster.nodes()[st.node_of[container as usize] as usize];
        let node_id = node.id();
        let speed = node.speed_factor();
        let job = &mut self.jobs[job_idx];
        // Locality-aware pick: prefer a pending task whose input lives on
        // this container's node (the data-local choice a YARN node manager
        // heartbeat would make), falling back to stack order.
        let pick_local = |pending: &[usize], spec: &JobSpec| -> Option<usize> {
            pending.iter().rposition(|&t| spec.tasks()[t].preferred_node() == Some(node_id))
        };
        let task_idx = if let Some(pos) = pick_local(&job.pending_maps, &job.spec) {
            job.pending_maps.remove(pos)
        } else if let Some(t) = job.pending_maps.pop() {
            t
        } else if job.maps_remaining == 0 {
            if let Some(pos) = pick_local(&job.pending_reduces, &job.spec) {
                job.pending_reduces.remove(pos)
            } else {
                job.pending_reduces.pop().expect("runnable task exists")
            }
        } else {
            unreachable!("runnable task exists")
        };
        let task = job.spec.tasks()[task_idx];
        let base = task.base_runtime();
        let locality = match task.preferred_node() {
            Some(pref) if pref != node_id => {
                result.remote_starts += 1;
                self.config.remote_penalty
            }
            Some(_) => {
                result.local_starts += 1;
                1.0
            }
            None => 1.0,
        };
        let factor = self.config.interference.draw(rng);
        let fails = self.config.failures.draw(rng);
        let duration = (base * speed * locality * factor).ceil().max(1.0) as Slot;
        if let Some(trace) = trace {
            trace.push(TraceEvent::TaskStarted {
                job: JobId(job_idx as u32),
                task: TaskId(task_idx as u32),
                container,
                node: node_id,
                at: now,
                duration,
            });
        }
        st.spawn(Attempt {
            end: now + duration,
            job: job_idx as u32,
            task: task_idx as u32,
            container,
            duration,
            fails,
            speculative: false,
            alive: true,
        });
        let v = &mut st.views[vi];
        v.pending_tasks -= 1;
        v.runnable_tasks -= 1;
        v.running_tasks += 1;
        st.total_runnable -= 1;
        st.refresh_oldest(job_idx as u32);
    }

    /// Records a task completion (indexed engine); returns the sample
    /// reported to the scheduler. Removes the job's view once the job is
    /// fully complete.
    fn complete_task_ix(
        &mut self,
        st: &mut EngineState,
        a: Attempt,
        now: Slot,
        result: &mut SimResult,
        trace: &mut Option<Trace>,
    ) -> TaskSample {
        let job = &mut self.jobs[a.job as usize];
        job.completed += 1;
        job.useful_slots += a.duration;
        let was_map = job.spec.tasks()[a.task as usize].phase() == Phase::Map;
        if was_map {
            job.maps_remaining -= 1;
        }
        let vi = st.view_of[a.job as usize].expect("completing task of an active job") as usize;
        let v = &mut st.views[vi];
        v.running_tasks -= 1;
        v.completed_tasks += 1;
        if was_map && job.maps_remaining == 0 {
            // Map barrier cleared: reduces become runnable.
            v.runnable_tasks += job.pending_reduces.len();
            st.total_runnable += job.pending_reduces.len();
        }
        v.samples.push(a.duration);
        if let Some(trace) = trace {
            trace.push(TraceEvent::TaskFinished {
                job: JobId(a.job),
                task: TaskId(a.task),
                at: now,
                runtime: a.duration,
            });
        }
        let sample = TaskSample {
            job: JobId(a.job),
            task: TaskId(a.task),
            runtime: a.duration,
            finished_at: now,
        };
        if job.completed == job.spec.tasks().len() {
            job.finish = Some(now);
            let runtime_slots = now - job.spec.arrival();
            result.outcomes.push(JobOutcome {
                id: JobId(a.job),
                label: job.spec.label().to_owned(),
                arrival: job.spec.arrival(),
                finish: now,
                runtime: runtime_slots,
                budget: job.spec.budget(),
                utility: job.spec.utility().utility(runtime_slots as f64),
                sensitivity: job.spec.sensitivity(),
                priority: job.spec.priority(),
                tasks: job.spec.tasks().len(),
                container_slots: job.useful_slots,
                wasted_slots: job.wasted_slots,
            });
            if let Some(trace) = trace {
                trace.push(TraceEvent::JobCompleted { job: JobId(a.job), at: now });
            }
            st.remove_view(vi);
            st.finished_jobs += 1;
        }
        sample
    }
}

/// The seed scan-based engine, kept as the differential-testing reference.
///
/// [`run`](naive::run) executes the same event loop as
/// [`Simulation::run`] with the original data structures: a linear scan
/// over a `Vec` of running attempts per event, a descending-sorted free
/// container list, and a view scan for the dispatch condition. Results must
/// be bit-identical to the indexed engine (outcomes, counters, RNG draw
/// order, trace events); `tests/engine_differential.rs` enforces that.
pub mod naive {
    use super::*;

    /// A task occupying a container until `end`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct RunningTask {
        end: Slot,
        job: usize,
        task: usize,
        container: u32,
        duration: Slot,
        fails: bool,
        speculative: bool,
    }

    impl RunningTask {
        fn start(&self) -> Slot {
            self.end - self.duration
        }
    }

    /// Index of the due attempt with the smallest (end, job, task,
    /// container), or None when nothing ends at `now`.
    fn pop_due(running: &mut Vec<RunningTask>, now: Slot) -> Option<RunningTask> {
        let idx = running
            .iter()
            .enumerate()
            .filter(|(_, rt)| rt.end == now)
            .min_by_key(|(_, rt)| (rt.job, rt.task, rt.container))
            .map(|(i, _)| i)?;
        Some(running.remove(idx))
    }

    /// Earliest attempt end across the running set.
    fn next_end(running: &[RunningTask]) -> Option<Slot> {
        running.iter().map(|rt| rt.end).min()
    }

    /// Refreshes a job view's oldest-running-attempt start from the
    /// running set.
    fn refresh_oldest(views: &mut [JobView], running: &[RunningTask], job_idx: usize) {
        if let Some(v) = views.iter_mut().find(|v| v.id == JobId(job_idx as u32)) {
            v.oldest_running_start =
                running.iter().filter(|rt| rt.job == job_idx).map(|rt| rt.start()).min();
        }
    }

    /// Runs `sim` to completion under `scheduler` with the scan-based
    /// engine.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run`]: [`SimError::HorizonExceeded`] and
    /// [`SimError::SchedulerStalled`].
    pub fn run<S: Scheduler + ?Sized>(
        mut sim: Simulation,
        scheduler: &mut S,
    ) -> Result<SimResult, SimError> {
        let capacity = sim.config.capacity();
        let mut rng = SmallRng::seed_from_u64(sim.config.seed);

        // Arrivals sorted descending so the next arrival pops from the back.
        let mut arrivals: Vec<usize> = (0..sim.jobs.len()).collect();
        arrivals.sort_by_key(|&i| Reverse((sim.jobs[i].spec.arrival(), i)));

        let cap_events = sim.config.capacity_events.clone();
        let mut cap_idx = 0usize;
        let mut revoked = vec![false; capacity as usize];
        let mut revoked_count = 0u32;

        // Free containers, largest index first so pop() yields the smallest.
        let mut free: Vec<u32> = (0..capacity).rev().collect();
        let mut running: Vec<RunningTask> = Vec::with_capacity(capacity as usize);
        let mut views: Vec<JobView> = Vec::new();
        let mut result = SimResult::default();
        let mut trace: Option<Trace> =
            if sim.config.record_trace { Some(Trace::new()) } else { None };
        let mut now: Slot = match arrivals.last() {
            Some(&i) => sim.jobs[i].spec.arrival(),
            None => 0,
        };

        loop {
            // 1. Completions (and attempt failures) at `now`. Freed
            // containers are collected unsorted and the free list re-sorted
            // once after the drain: ordering only matters when a container
            // is acquired, which happens no earlier than the dispatch loop.
            let mut freed_any = false;
            while let Some(rt) = pop_due(&mut running, now) {
                free.push(rt.container);
                freed_any = true;
                let sibling_running = running.iter().any(|o| o.job == rt.job && o.task == rt.task);
                if rt.fails {
                    let sample = fail_task(
                        &mut sim,
                        &mut views,
                        rt,
                        now,
                        sibling_running,
                        &mut result,
                        &mut trace,
                    );
                    refresh_oldest(&mut views, &running, rt.job);
                    let view = ClusterView {
                        now,
                        capacity: capacity - revoked_count,
                        free_containers: free.len() as u32,
                        jobs: &views,
                    };
                    let t0 = Instant::now();
                    scheduler.on_task_failed(&view, sample);
                    result.scheduler_time += t0.elapsed();
                } else {
                    // First successful attempt wins: kill any duplicate of
                    // the same task before recording the completion.
                    if sibling_running {
                        let idx = running
                            .iter()
                            .position(|o| o.job == rt.job && o.task == rt.task)
                            .expect("sibling present");
                        let sib = running.remove(idx);
                        free.push(sib.container);
                        result.killed_attempts += 1;
                        sim.jobs[sib.job].wasted_slots += now.saturating_sub(sib.start());
                        if let Some(v) = views.iter_mut().find(|v| v.id == JobId(sib.job as u32)) {
                            v.running_tasks -= 1;
                        }
                        if let Some(trace) = &mut trace {
                            trace.push(TraceEvent::TaskKilled {
                                job: JobId(sib.job as u32),
                                task: TaskId(sib.task as u32),
                                at: now,
                            });
                        }
                    }
                    let sample =
                        complete_task(&mut sim, &mut views, rt, now, &mut result, &mut trace);
                    refresh_oldest(&mut views, &running, rt.job);
                    let view = ClusterView {
                        now,
                        capacity: capacity - revoked_count,
                        free_containers: free.len() as u32,
                        jobs: &views,
                    };
                    let t0 = Instant::now();
                    scheduler.on_task_complete(&view, sample);
                    result.scheduler_time += t0.elapsed();
                }
            }
            if freed_any {
                free.sort_unstable_by_key(|&c| Reverse(c));
            }

            // 1b. Capacity events at `now` — identical semantics to the
            // indexed engine: revoke the highest-indexed in-service
            // containers (killing and re-queueing whatever runs on them),
            // restock the lowest-indexed revoked ones.
            while cap_idx < cap_events.len() && cap_events[cap_idx].at <= now {
                let ev = cap_events[cap_idx];
                cap_idx += 1;
                match ev.change {
                    CapacityChange::Revoke { n } => {
                        for _ in 0..n {
                            let c = (0..capacity)
                                .rev()
                                .find(|&c| !revoked[c as usize])
                                .expect("schedule validated");
                            revoked[c as usize] = true;
                            revoked_count += 1;
                            result.revoked_containers += 1;
                            if let Some(pos) = free.iter().position(|&f| f == c) {
                                free.remove(pos);
                                continue; // was free: nothing to kill
                            }
                            let idx = running
                                .iter()
                                .position(|rt| rt.container == c)
                                .expect("busy container has an attempt");
                            let rt = running.remove(idx);
                            let sibling_running =
                                running.iter().any(|o| o.job == rt.job && o.task == rt.task);
                            let killed =
                                RunningTask { end: now, duration: now - rt.start(), ..rt };
                            let sample = fail_task(
                                &mut sim,
                                &mut views,
                                killed,
                                now,
                                sibling_running,
                                &mut result,
                                &mut trace,
                            );
                            result.revoked_attempts += 1;
                            refresh_oldest(&mut views, &running, rt.job);
                            let view = ClusterView {
                                now,
                                capacity: capacity - revoked_count,
                                free_containers: free.len() as u32,
                                jobs: &views,
                            };
                            let t0 = Instant::now();
                            scheduler.on_task_failed(&view, sample);
                            result.scheduler_time += t0.elapsed();
                        }
                    }
                    CapacityChange::Restock { n } => {
                        for _ in 0..n {
                            let c = (0..capacity)
                                .find(|&c| revoked[c as usize])
                                .expect("schedule validated");
                            revoked[c as usize] = false;
                            revoked_count -= 1;
                            free.push(c);
                            result.restocked_containers += 1;
                        }
                        free.sort_unstable_by_key(|&c| Reverse(c));
                    }
                }
                let view = ClusterView {
                    now,
                    capacity: capacity - revoked_count,
                    free_containers: free.len() as u32,
                    jobs: &views,
                };
                let t0 = Instant::now();
                scheduler.on_capacity_change(&view);
                result.scheduler_time += t0.elapsed();
            }

            // 2. Arrivals at `now`.
            while arrivals.last().is_some_and(|&i| sim.jobs[i].spec.arrival() == now) {
                let i = arrivals.pop().expect("peeked");
                let v = sim.make_view(i);
                let id = v.id;
                views.push(v);
                if let Some(trace) = &mut trace {
                    trace.push(TraceEvent::JobArrived { job: id, at: now });
                }
                let view = ClusterView {
                    now,
                    capacity: capacity - revoked_count,
                    free_containers: free.len() as u32,
                    jobs: &views,
                };
                let t0 = Instant::now();
                scheduler.on_job_arrival(&view, id);
                result.scheduler_time += t0.elapsed();
            }

            // 3. Dispatch loop. A bounded misassignment budget lets a
            // scheduler recover from naming an invalid job without letting
            // a persistently confused one spin the engine forever.
            let mut misassign_budget = (capacity - revoked_count) as u64 + 1;
            while !free.is_empty() && views.iter().any(|v| v.runnable_tasks > 0) {
                let view = ClusterView {
                    now,
                    capacity: capacity - revoked_count,
                    free_containers: free.len() as u32,
                    jobs: &views,
                };
                let t0 = Instant::now();
                let choice = scheduler.assign(&view);
                result.scheduler_time += t0.elapsed();
                result.scheduler_invocations += 1;
                match choice {
                    None => break,
                    Some(id) => {
                        let Some(vi) = views.iter().position(|v| v.id == id) else {
                            result.misassignments += 1;
                            misassign_budget -= 1;
                            if misassign_budget == 0 {
                                break;
                            }
                            continue;
                        };
                        if views[vi].runnable_tasks == 0 {
                            result.misassignments += 1;
                            misassign_budget -= 1;
                            if misassign_budget == 0 {
                                break;
                            }
                            continue;
                        }
                        let container = free.pop().expect("free checked");
                        start_task(
                            &mut sim,
                            &mut views,
                            vi,
                            container,
                            now,
                            &mut running,
                            &mut rng,
                            &mut trace,
                            &mut result,
                        );
                        result.assignments += 1;
                    }
                }
            }

            // 3b. Speculation loop: with containers still free, offer the
            // scheduler the chance to duplicate a long-running attempt
            // (Hadoop-style speculative execution). The engine picks the
            // oldest non-duplicated primary attempt of the named job.
            let mut spec_budget = (capacity - revoked_count) as u64;
            while !free.is_empty() && spec_budget > 0 {
                spec_budget -= 1;
                let view = ClusterView {
                    now,
                    capacity: capacity - revoked_count,
                    free_containers: free.len() as u32,
                    jobs: &views,
                };
                let t0 = Instant::now();
                let choice = scheduler.speculate(&view);
                result.scheduler_time += t0.elapsed();
                let Some(id) = choice else { break };
                let job_idx = id.0 as usize;
                let target = running
                    .iter()
                    .filter(|rt| {
                        rt.job == job_idx
                            && !rt.speculative
                            && running
                                .iter()
                                .filter(|o| o.job == rt.job && o.task == rt.task)
                                .count()
                                == 1
                    })
                    .min_by_key(|rt| (rt.start(), rt.task))
                    .copied();
                let Some(primary) = target else { break };
                let container = free.pop().expect("free checked");
                let task = sim.jobs[job_idx].spec.tasks()[primary.task];
                let base = task.base_runtime();
                let node = sim.config.cluster.node_of_container(container);
                let locality = match task.preferred_node() {
                    Some(pref) if pref != node.id() => sim.config.remote_penalty,
                    _ => 1.0,
                };
                let factor = sim.config.interference.draw(&mut rng);
                let fails = sim.config.failures.draw(&mut rng);
                let duration =
                    (base * node.speed_factor() * locality * factor).ceil().max(1.0) as Slot;
                if let Some(trace) = &mut trace {
                    trace.push(TraceEvent::TaskSpeculated {
                        job: id,
                        task: TaskId(primary.task as u32),
                        container,
                        node: node.id(),
                        at: now,
                        duration,
                    });
                }
                running.push(RunningTask {
                    end: now + duration,
                    job: job_idx,
                    task: primary.task,
                    container,
                    duration,
                    fails,
                    speculative: true,
                });
                if let Some(v) = views.iter_mut().find(|v| v.id == id) {
                    v.running_tasks += 1;
                }
                refresh_oldest(&mut views, &running, job_idx);
                result.speculative_attempts += 1;
            }

            // 4. Advance to the next event.
            if sim.jobs.iter().all(|j| j.finish.is_some()) {
                break;
            }
            let next_completion = next_end(&running);
            let next_arrival = arrivals.last().map(|&i| sim.jobs[i].spec.arrival());
            let next_capacity = cap_events.get(cap_idx).map(|e| e.at);
            let next = [next_completion, next_arrival, next_capacity]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else {
                return Err(SimError::SchedulerStalled { at: now });
            };
            debug_assert!(next > now, "time must advance");
            if next > sim.config.max_slots {
                let unfinished = sim.jobs.iter().filter(|j| j.finish.is_none()).count();
                return Err(SimError::HorizonExceeded {
                    max_slots: sim.config.max_slots,
                    unfinished,
                });
            }
            now = next;
        }

        result.makespan = now;
        result.sort_outcomes();
        result.trace = trace;
        Ok(result)
    }

    /// Handles a failed attempt: the task is re-queued and the wasted
    /// runtime reported.
    fn fail_task(
        sim: &mut Simulation,
        views: &mut [JobView],
        rt: RunningTask,
        now: Slot,
        sibling_running: bool,
        result: &mut SimResult,
        trace: &mut Option<Trace>,
    ) -> TaskSample {
        let job = &mut sim.jobs[rt.job];
        let was_map = job.spec.tasks()[rt.task].phase() == Phase::Map;
        // With a duplicate attempt still in flight, the failure is absorbed:
        // the task stays running elsewhere and is not re-queued.
        if !sibling_running {
            if was_map {
                job.pending_maps.push(rt.task);
            } else {
                job.pending_reduces.push(rt.task);
            }
        }
        let vi = views
            .iter()
            .position(|v| v.id == JobId(rt.job as u32))
            .expect("failing task of an active job");
        let v = &mut views[vi];
        v.running_tasks -= 1;
        v.failed_attempts += 1;
        if !sibling_running {
            v.pending_tasks += 1;
            // Re-queued map tasks are always runnable; reduces only once the
            // map barrier has cleared (it has, if a reduce was running).
            if was_map || job.maps_remaining == 0 {
                v.runnable_tasks += 1;
            }
        }
        result.failed_attempts += 1;
        job.wasted_slots += rt.duration;
        if let Some(trace) = trace {
            trace.push(TraceEvent::TaskFailed {
                job: JobId(rt.job as u32),
                task: TaskId(rt.task as u32),
                at: now,
                runtime: rt.duration,
            });
        }
        TaskSample {
            job: JobId(rt.job as u32),
            task: TaskId(rt.task as u32),
            runtime: rt.duration,
            finished_at: now,
        }
    }

    /// Starts the next runnable task of the job behind `views[vi]`.
    #[allow(clippy::too_many_arguments)] // engine plumbing, not public API
    fn start_task(
        sim: &mut Simulation,
        views: &mut [JobView],
        vi: usize,
        container: u32,
        now: Slot,
        running: &mut Vec<RunningTask>,
        rng: &mut SmallRng,
        trace: &mut Option<Trace>,
        result: &mut SimResult,
    ) {
        let job_idx = views[vi].id.0 as usize;
        let node = sim.config.cluster.node_of_container(container);
        let node_id = node.id();
        let speed = node.speed_factor();
        let job = &mut sim.jobs[job_idx];
        // Locality-aware pick: prefer a pending task whose input lives on
        // this container's node (the data-local choice a YARN node manager
        // heartbeat would make), falling back to stack order.
        let pick_local = |pending: &[usize], spec: &JobSpec| -> Option<usize> {
            pending.iter().rposition(|&t| spec.tasks()[t].preferred_node() == Some(node_id))
        };
        let task_idx = if let Some(pos) = pick_local(&job.pending_maps, &job.spec) {
            job.pending_maps.remove(pos)
        } else if let Some(t) = job.pending_maps.pop() {
            t
        } else if job.maps_remaining == 0 {
            if let Some(pos) = pick_local(&job.pending_reduces, &job.spec) {
                job.pending_reduces.remove(pos)
            } else {
                job.pending_reduces.pop().expect("runnable task exists")
            }
        } else {
            unreachable!("runnable task exists")
        };
        let task = job.spec.tasks()[task_idx];
        let base = task.base_runtime();
        let locality = match task.preferred_node() {
            Some(pref) if pref != node_id => {
                result.remote_starts += 1;
                sim.config.remote_penalty
            }
            Some(_) => {
                result.local_starts += 1;
                1.0
            }
            None => 1.0,
        };
        let factor = sim.config.interference.draw(rng);
        let fails = sim.config.failures.draw(rng);
        let duration = (base * speed * locality * factor).ceil().max(1.0) as Slot;
        if let Some(trace) = trace {
            trace.push(TraceEvent::TaskStarted {
                job: JobId(job_idx as u32),
                task: TaskId(task_idx as u32),
                container,
                node: node_id,
                at: now,
                duration,
            });
        }
        running.push(RunningTask {
            end: now + duration,
            job: job_idx,
            task: task_idx,
            container,
            duration,
            fails,
            speculative: false,
        });
        let v = &mut views[vi];
        v.pending_tasks -= 1;
        v.runnable_tasks -= 1;
        v.running_tasks += 1;
        refresh_oldest(views, running, job_idx);
    }

    /// Records a task completion; returns the sample reported to the
    /// scheduler. Removes the job's view once the job is fully complete.
    fn complete_task(
        sim: &mut Simulation,
        views: &mut Vec<JobView>,
        rt: RunningTask,
        now: Slot,
        result: &mut SimResult,
        trace: &mut Option<Trace>,
    ) -> TaskSample {
        let job = &mut sim.jobs[rt.job];
        job.completed += 1;
        job.useful_slots += rt.duration;
        let was_map = job.spec.tasks()[rt.task].phase() == Phase::Map;
        if was_map {
            job.maps_remaining -= 1;
        }
        let vi = views
            .iter()
            .position(|v| v.id == JobId(rt.job as u32))
            .expect("completing task of an active job");
        let v = &mut views[vi];
        v.running_tasks -= 1;
        v.completed_tasks += 1;
        if was_map && job.maps_remaining == 0 {
            // Map barrier cleared: reduces become runnable.
            v.runnable_tasks += job.pending_reduces.len();
        }
        v.samples.push(rt.duration);
        if let Some(trace) = trace {
            trace.push(TraceEvent::TaskFinished {
                job: JobId(rt.job as u32),
                task: TaskId(rt.task as u32),
                at: now,
                runtime: rt.duration,
            });
        }
        let sample = TaskSample {
            job: JobId(rt.job as u32),
            task: TaskId(rt.task as u32),
            runtime: rt.duration,
            finished_at: now,
        };
        if job.completed == job.spec.tasks().len() {
            job.finish = Some(now);
            let runtime_slots = now - job.spec.arrival();
            result.outcomes.push(JobOutcome {
                id: JobId(rt.job as u32),
                label: job.spec.label().to_owned(),
                arrival: job.spec.arrival(),
                finish: now,
                runtime: runtime_slots,
                budget: job.spec.budget(),
                utility: job.spec.utility().utility(runtime_slots as f64),
                sensitivity: job.spec.sensitivity(),
                priority: job.spec.priority(),
                tasks: job.spec.tasks().len(),
                container_slots: job.useful_slots,
                wasted_slots: job.wasted_slots,
            });
            if let Some(trace) = trace {
                trace.push(TraceEvent::JobCompleted { job: JobId(rt.job as u32), at: now });
            }
            views.remove(vi);
        }
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TaskSpec;
    use crate::scheduler::{fcfs_task_order, FcfsTaskOrder};
    use rush_utility::TimeUtility;

    fn util() -> TimeUtility {
        TimeUtility::constant(1.0).unwrap()
    }

    fn simple_job(label: &str, arrival: Slot, maps: usize, runtime: f64) -> JobSpec {
        JobSpec::builder(label)
            .arrival(arrival)
            .tasks((0..maps).map(|_| TaskSpec::new(runtime, Phase::Map)))
            .utility(util())
            .build()
            .unwrap()
    }

    #[test]
    fn single_job_on_ample_cluster_runs_in_one_wave() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 8), vec![simple_job("j", 0, 4, 10.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.outcomes[0].runtime, 10);
        assert_eq!(r.assignments, 4);
        assert_eq!(r.misassignments, 0);
    }

    #[test]
    fn constrained_cluster_serializes_waves() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 2), vec![simple_job("j", 0, 4, 10.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].runtime, 20); // two waves of two tasks
    }

    #[test]
    fn arrival_offsets_are_respected() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 1), vec![simple_job("j", 7, 1, 5.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].arrival, 7);
        assert_eq!(r.outcomes[0].finish, 12);
        assert_eq!(r.outcomes[0].runtime, 5);
    }

    #[test]
    fn reduce_waits_for_map_barrier() {
        let job = JobSpec::builder("mr")
            .tasks(vec![
                TaskSpec::new(10.0, Phase::Map),
                TaskSpec::new(2.0, Phase::Map),
                TaskSpec::new(5.0, Phase::Reduce),
            ])
            .utility(util())
            .build()
            .unwrap();
        // Plenty of containers: without the barrier the reduce would start
        // at 0 and the job would finish at 10; with it, 10 + 5 = 15.
        let sim = Simulation::new(SimConfig::homogeneous(1, 8), vec![job]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].runtime, 15);
    }

    #[test]
    fn two_jobs_fcfs_order() {
        let sim = Simulation::new(
            SimConfig::homogeneous(1, 1),
            vec![simple_job("a", 0, 1, 10.0), simple_job("b", 1, 1, 10.0)],
        )
        .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        let a = r.outcome(JobId(0)).unwrap();
        let b = r.outcome(JobId(1)).unwrap();
        assert_eq!(a.finish, 10);
        assert_eq!(b.finish, 20); // waits for the single container
        assert_eq!(b.runtime, 19);
    }

    #[test]
    fn node_speed_scales_runtime() {
        let cluster = ClusterSpec::new(vec![(2.0, 1)]).unwrap(); // 2x slower
        let sim =
            Simulation::new(SimConfig::new(cluster), vec![simple_job("j", 0, 1, 10.0)]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].runtime, 20);
    }

    #[test]
    fn interference_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = SimConfig::homogeneous(1, 4)
                .with_interference(Interference::LogNormal { cv: 0.5 })
                .with_seed(seed);
            let sim = Simulation::new(cfg, vec![simple_job("j", 0, 16, 10.0)]).unwrap();
            sim.run(&mut fcfs_task_order()).unwrap().makespan
        };
        assert_eq!(run(9), run(9));
        // With CV=0.5, two seeds virtually never produce identical makespans.
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn horizon_exceeded_is_reported() {
        let cfg = SimConfig::homogeneous(1, 1).with_max_slots(5);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 2, 10.0)]).unwrap();
        let err = sim.run(&mut fcfs_task_order()).unwrap_err();
        assert!(matches!(err, SimError::HorizonExceeded { unfinished: 1, .. }));
    }

    #[test]
    fn empty_job_list_rejected() {
        assert!(matches!(
            Simulation::new(SimConfig::homogeneous(1, 1), vec![]),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    /// A scheduler that always refuses to assign.
    #[derive(Debug)]
    struct Refusenik;
    impl Scheduler for Refusenik {
        fn name(&self) -> &str {
            "refusenik"
        }
        fn assign(&mut self, _view: &ClusterView<'_>) -> Option<JobId> {
            None
        }
    }

    #[test]
    fn refusing_scheduler_stalls() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 1), vec![simple_job("j", 0, 1, 5.0)])
            .unwrap();
        let err = sim.run(&mut Refusenik).unwrap_err();
        assert!(matches!(err, SimError::SchedulerStalled { at: 0 }));
    }

    /// A scheduler that names a bogus job.
    #[derive(Debug)]
    struct Bogus(bool);
    impl Scheduler for Bogus {
        fn name(&self) -> &str {
            "bogus"
        }
        fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
            if self.0 {
                // After the first bogus answer, behave.
                FcfsTaskOrder.assign(view)
            } else {
                self.0 = true;
                Some(JobId(999))
            }
        }
    }

    #[test]
    fn misassignments_are_counted_and_survivable() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 2), vec![simple_job("j", 0, 2, 5.0)])
            .unwrap();
        let r = sim.run(&mut Bogus(false)).unwrap();
        assert!(r.misassignments >= 1);
        assert_eq!(r.outcomes.len(), 1);
    }

    #[test]
    fn scheduler_counters_populated() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 2), vec![simple_job("j", 0, 4, 5.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.assignments, 4);
        assert!(r.scheduler_invocations >= 4);
    }

    #[test]
    fn outcomes_sorted_by_finish() {
        let sim = Simulation::new(
            SimConfig::homogeneous(1, 2),
            vec![simple_job("slow", 0, 1, 30.0), simple_job("fast", 0, 1, 5.0)],
        )
        .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].label, "fast");
        assert_eq!(r.outcomes[1].label, "slow");
        assert_eq!(r.makespan, 30);
    }

    #[test]
    fn failed_attempts_are_requeued_and_job_still_completes() {
        use crate::perturb::FailureModel;
        let cfg = SimConfig::homogeneous(1, 2)
            .with_failures(FailureModel::Bernoulli { p: 0.3 })
            .with_seed(5);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 30, 10.0)]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.failed_attempts > 0, "p=0.3 over 30+ attempts should fail at least once");
        // Every failed attempt re-runs: assignments = tasks + failures.
        assert_eq!(r.assignments, 30 + r.failed_attempts);
        // Wasted attempts stretch the runtime beyond the ideal 150.
        assert!(r.outcomes[0].runtime >= 150);
    }

    #[test]
    fn reduce_failure_respects_barrier_state() {
        use crate::perturb::FailureModel;
        // With p=0.5 and a seed chosen to hit a reduce failure, the reduce
        // must be re-queued as runnable (barrier already cleared).
        let job = JobSpec::builder("mr")
            .tasks(vec![TaskSpec::new(5.0, Phase::Map), TaskSpec::new(5.0, Phase::Reduce)])
            .utility(util())
            .build()
            .unwrap();
        for seed in 0..20 {
            let cfg = SimConfig::homogeneous(1, 1)
                .with_failures(FailureModel::Bernoulli { p: 0.4 })
                .with_seed(seed);
            let sim = Simulation::new(cfg, vec![job.clone()]).unwrap();
            let r = sim.run(&mut fcfs_task_order()).unwrap();
            assert_eq!(r.outcomes.len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn trace_records_full_lifecycle() {
        use crate::trace::TraceEvent;
        let cfg = SimConfig::homogeneous(1, 2).with_trace(true);
        let sim = Simulation::new(cfg, vec![simple_job("j", 3, 2, 10.0)]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        let trace = r.trace.expect("tracing enabled");
        let kinds: Vec<&str> = trace
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::JobArrived { .. } => "arrive",
                TraceEvent::TaskStarted { .. } => "start",
                TraceEvent::TaskFinished { .. } => "finish",
                TraceEvent::TaskFailed { .. } => "fail",
                TraceEvent::TaskSpeculated { .. } => "speculate",
                TraceEvent::TaskKilled { .. } => "kill",
                TraceEvent::JobCompleted { .. } => "complete",
            })
            .collect();
        assert_eq!(kinds, vec!["arrive", "start", "start", "finish", "finish", "complete"]);
        assert_eq!(trace.events()[0].at(), 3);
        // CSV renders one line per event plus a header.
        assert_eq!(trace.to_csv().lines().count(), 7);
    }

    #[test]
    fn trace_disabled_by_default() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 1), vec![simple_job("j", 0, 1, 5.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert!(r.trace.is_none());
    }

    /// Speculates on every opportunity.
    #[derive(Debug)]
    struct AlwaysSpeculate;
    impl Scheduler for AlwaysSpeculate {
        fn name(&self) -> &str {
            "always-spec"
        }
        fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
            FcfsTaskOrder.assign(view)
        }
        fn speculate(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
            view.jobs.iter().find(|j| j.running_tasks > 0).map(|j| j.id)
        }
    }

    #[test]
    fn speculation_duplicates_and_kills_cleanly() {
        // 2 tasks on 4 containers: after both start, 2 containers stay free
        // and the speculator duplicates both. Every task finishes once;
        // sibling attempts are killed; counters balance.
        let sim = Simulation::new(
            SimConfig::homogeneous(1, 4).with_trace(true),
            vec![simple_job("s", 0, 2, 10.0)],
        )
        .unwrap();
        let r = sim.run(&mut AlwaysSpeculate).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.speculative_attempts, 2);
        // Duplicates on a homogeneous interference-free cluster tie with
        // their primaries; the primary (processed first by job/task order)
        // wins and each duplicate is killed.
        assert_eq!(r.killed_attempts, 2);
        assert_eq!(r.outcomes[0].runtime, 10);
        let trace = r.trace.unwrap();
        use crate::trace::TraceEvent;
        let kinds: Vec<&str> = trace
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::JobArrived { .. } => "arrive",
                TraceEvent::TaskStarted { .. } => "start",
                TraceEvent::TaskFinished { .. } => "finish",
                TraceEvent::TaskFailed { .. } => "fail",
                TraceEvent::TaskSpeculated { .. } => "speculate",
                TraceEvent::TaskKilled { .. } => "kill",
                TraceEvent::JobCompleted { .. } => "complete",
            })
            .collect();
        assert_eq!(kinds.iter().filter(|k| **k == "speculate").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "kill").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "finish").count(), 2);
    }

    #[test]
    fn speculation_rescues_failed_primary() {
        use crate::perturb::FailureModel;
        // With failures and always-on speculation, a failed primary whose
        // duplicate is still running is absorbed without re-queueing; the
        // job still completes exactly its task count.
        for seed in 0..12 {
            let cfg = SimConfig::homogeneous(1, 6)
                .with_failures(FailureModel::Bernoulli { p: 0.4 })
                .with_seed(seed);
            let sim = Simulation::new(cfg, vec![simple_job("s", 0, 3, 10.0)]).unwrap();
            let r = sim.run(&mut AlwaysSpeculate).unwrap();
            assert_eq!(r.outcomes.len(), 1, "seed {seed}");
            assert_eq!(r.outcomes[0].tasks, 3);
        }
    }

    #[test]
    fn remote_penalty_slows_misplaced_tasks() {
        use crate::NodeId;
        // 2 nodes x 1 container. Two tasks preferring node 0: one runs
        // local (10 slots), the other is forced onto node 1 (15 slots).
        let job = JobSpec::builder("loc")
            .tasks(vec![
                TaskSpec::new(10.0, Phase::Map).with_preference(NodeId(0)),
                TaskSpec::new(10.0, Phase::Map).with_preference(NodeId(0)),
            ])
            .utility(util())
            .build()
            .unwrap();
        let cfg = SimConfig::homogeneous(2, 1).with_remote_penalty(1.5).with_trace(true);
        let r = Simulation::new(cfg, vec![job]).unwrap().run(&mut fcfs_task_order()).unwrap();
        let trace = r.trace.unwrap();
        let mut durations: Vec<Slot> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::trace::TraceEvent::TaskStarted { duration, .. } => Some(*duration),
                _ => None,
            })
            .collect();
        durations.sort_unstable();
        assert_eq!(durations, vec![10, 15]);
    }

    #[test]
    fn local_tasks_are_picked_first() {
        use crate::NodeId;
        // Single container on node 0; the job has one node-1 task and one
        // node-0 task queued in that order. The engine must pick the local
        // (node-0) task first.
        let job = JobSpec::builder("pick")
            .tasks(vec![
                TaskSpec::new(10.0, Phase::Map).with_preference(NodeId(1)),
                TaskSpec::new(10.0, Phase::Map).with_preference(NodeId(0)),
            ])
            .utility(util())
            .build()
            .unwrap();
        let cfg = SimConfig::homogeneous(1, 1).with_remote_penalty(2.0).with_trace(true);
        let r = Simulation::new(cfg, vec![job]).unwrap().run(&mut fcfs_task_order()).unwrap();
        let trace = r.trace.unwrap();
        let first_started = trace
            .events()
            .iter()
            .find_map(|e| match e {
                crate::trace::TraceEvent::TaskStarted { task, duration, .. } => {
                    Some((*task, *duration))
                }
                _ => None,
            })
            .unwrap();
        // task-1 prefers node 0 → runs first at full speed.
        assert_eq!(first_started, (crate::TaskId(1), 10));
    }

    #[test]
    #[should_panic(expected = "remote penalty")]
    fn remote_penalty_validated() {
        let _ = SimConfig::homogeneous(1, 1).with_remote_penalty(0.5);
    }

    #[test]
    fn resource_accounting_balances() {
        use crate::perturb::FailureModel;
        let cfg = SimConfig::homogeneous(1, 2)
            .with_failures(FailureModel::Bernoulli { p: 0.25 })
            .with_seed(4);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 10, 10.0)]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        let o = &r.outcomes[0];
        assert_eq!(o.container_slots, 100, "10 successes x 10 slots");
        assert_eq!(o.wasted_slots, r.failed_attempts * 10, "each wasted attempt is 10 slots");
    }

    #[test]
    fn default_schedulers_never_speculate() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 8), vec![simple_job("s", 0, 2, 10.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.speculative_attempts, 0);
        assert_eq!(r.killed_attempts, 0);
    }

    #[test]
    fn samples_reach_views_through_scheduler() {
        /// Records samples it receives.
        #[derive(Debug, Default)]
        struct Recorder {
            samples: Vec<Slot>,
        }
        impl Scheduler for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn on_task_complete(&mut self, _view: &ClusterView<'_>, s: TaskSample) {
                self.samples.push(s.runtime);
            }
            fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
                FcfsTaskOrder.assign(view)
            }
        }
        let sim = Simulation::new(SimConfig::homogeneous(1, 2), vec![simple_job("j", 0, 3, 7.0)])
            .unwrap();
        let mut rec = Recorder::default();
        sim.run(&mut rec).unwrap();
        assert_eq!(rec.samples, vec![7, 7, 7]);
    }

    /// The two engines must agree bit-for-bit on a scenario that exercises
    /// speculation kills, failures, interference, heterogeneity and the
    /// map/reduce barrier at once. The full randomized differential suite
    /// lives in `tests/engine_differential.rs`; this is the in-crate smoke
    /// version.
    #[test]
    fn naive_engine_matches_indexed_smoke() {
        let mk = || {
            let cfg = SimConfig::new(ClusterSpec::paper_testbed(2).unwrap())
                .with_interference(Interference::LogNormal { cv: 0.4 })
                .with_failures(FailureModel::Bernoulli { p: 0.15 })
                .with_remote_penalty(1.3)
                .with_trace(true)
                .with_seed(42);
            let jobs: Vec<JobSpec> = (0..6)
                .map(|i| {
                    JobSpec::builder(format!("j{i}"))
                        .arrival(i * 3)
                        .tasks((0..5).map(|t| {
                            TaskSpec::new(4.0 + t as f64, Phase::Map)
                                .with_preference(crate::NodeId((t % 6) as u32))
                        }))
                        .task(TaskSpec::new(6.0, Phase::Reduce))
                        .utility(TimeUtility::constant(1.0).unwrap())
                        .build()
                        .unwrap()
                })
                .collect();
            Simulation::new(cfg, jobs).unwrap()
        };
        let indexed = mk().run(&mut AlwaysSpeculate).unwrap();
        let scanned = naive::run(mk(), &mut AlwaysSpeculate).unwrap();
        assert_eq!(indexed.outcomes, scanned.outcomes);
        assert_eq!(indexed.makespan, scanned.makespan);
        assert_eq!(indexed.assignments, scanned.assignments);
        assert_eq!(indexed.misassignments, scanned.misassignments);
        assert_eq!(indexed.scheduler_invocations, scanned.scheduler_invocations);
        assert_eq!(indexed.failed_attempts, scanned.failed_attempts);
        assert_eq!(indexed.speculative_attempts, scanned.speculative_attempts);
        assert_eq!(indexed.killed_attempts, scanned.killed_attempts);
        assert_eq!(indexed.local_starts, scanned.local_starts);
        assert_eq!(indexed.remote_starts, scanned.remote_starts);
        assert_eq!(indexed.trace, scanned.trace);
    }

    #[test]
    fn naive_engine_reports_same_errors() {
        let cfg = SimConfig::homogeneous(1, 1).with_max_slots(5);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 2, 10.0)]).unwrap();
        let err = naive::run(sim, &mut fcfs_task_order()).unwrap_err();
        assert!(matches!(err, SimError::HorizonExceeded { unfinished: 1, .. }));

        let sim = Simulation::new(SimConfig::homogeneous(1, 1), vec![simple_job("j", 0, 1, 5.0)])
            .unwrap();
        let err = naive::run(sim, &mut Refusenik).unwrap_err();
        assert!(matches!(err, SimError::SchedulerStalled { at: 0 }));
    }

    #[test]
    fn revocation_kills_running_attempt_and_requeues() {
        // One job, 2 maps of 10 slots on a 2-container cluster. At slot 4
        // one container is revoked: the attempt on container 1 dies with 4
        // wasted slots and its task re-queues onto the surviving container.
        let cfg = SimConfig::homogeneous(1, 2).with_trace(true).with_capacity_events(vec![
            CapacityEvent { at: 4, change: CapacityChange::Revoke { n: 1 } },
        ]);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 2, 10.0)]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.revoked_containers, 1);
        assert_eq!(r.revoked_attempts, 1);
        assert_eq!(r.failed_attempts, 1);
        // Task 0 runs 0..10 on container 0; task 1 is killed at 4 and
        // reruns 10..20 after container 0 frees up.
        assert_eq!(r.outcomes[0].finish, 20);
        assert_eq!(r.outcomes[0].wasted_slots, 4);
        assert_eq!(r.outcomes[0].container_slots, 20);
        let trace = r.trace.as_ref().unwrap();
        assert!(trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::TaskFailed { at: 4, runtime: 4, .. }
        )));
    }

    /// Declines every container while the effective capacity is below 2 —
    /// the shape of a planner that waits out a revocation.
    struct WaitsForCapacity;

    impl Scheduler for WaitsForCapacity {
        fn name(&self) -> &str {
            "waits-for-capacity"
        }

        fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
            if view.capacity < 2 {
                return None;
            }
            view.runnable_jobs().min_by_key(|j| (j.arrival, j.id)).map(|j| j.id)
        }
    }

    #[test]
    fn restock_wakes_a_waiting_scheduler() {
        // Two of three containers revoked before the job arrives; the
        // scheduler refuses to run on the rump cluster. With nothing
        // running and no arrivals pending, the engine must advance to the
        // restock at slot 40 instead of reporting SchedulerStalled.
        let cfg = SimConfig::homogeneous(1, 3).with_capacity_events(vec![
            CapacityEvent { at: 0, change: CapacityChange::Revoke { n: 2 } },
            CapacityEvent { at: 40, change: CapacityChange::Restock { n: 2 } },
        ]);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 2, 10.0)]).unwrap();
        let r = sim.run(&mut WaitsForCapacity).unwrap();
        assert_eq!(r.revoked_containers, 2);
        assert_eq!(r.restocked_containers, 2);
        // Both maps start at 40 once capacity is back.
        assert_eq!(r.outcomes[0].finish, 50);

        // A pre-arrival revocation serializes the waves on the survivor;
        // the restock scheduled after the job completes is never applied.
        let cfg = SimConfig::homogeneous(1, 3).with_capacity_events(vec![
            CapacityEvent { at: 0, change: CapacityChange::Revoke { n: 2 } },
            CapacityEvent { at: 40, change: CapacityChange::Restock { n: 1 } },
        ]);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 2, 10.0)]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        // Maps serialize 0..10 and 10..20 on container 0.
        assert_eq!(r.outcomes[0].finish, 20);
        assert_eq!(r.revoked_containers, 2);
        assert_eq!(r.restocked_containers, 0);
    }

    #[test]
    fn capacity_schedule_validated_at_build() {
        let cfg = SimConfig::homogeneous(1, 2).with_capacity_events(vec![CapacityEvent {
            at: 0,
            change: CapacityChange::Revoke { n: 2 },
        }]);
        assert!(matches!(
            Simulation::new(cfg, vec![simple_job("j", 0, 1, 5.0)]),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn naive_engine_matches_indexed_under_capacity_churn() {
        let events = vec![
            CapacityEvent { at: 3, change: CapacityChange::Revoke { n: 4 } },
            CapacityEvent { at: 9, change: CapacityChange::Revoke { n: 3 } },
            CapacityEvent { at: 15, change: CapacityChange::Restock { n: 5 } },
            CapacityEvent { at: 22, change: CapacityChange::Revoke { n: 6 } },
            CapacityEvent { at: 31, change: CapacityChange::Restock { n: 8 } },
        ];
        let mk = || {
            let cfg = SimConfig::new(ClusterSpec::paper_testbed(2).unwrap())
                .with_interference(Interference::LogNormal { cv: 0.4 })
                .with_failures(FailureModel::Bernoulli { p: 0.15 })
                .with_remote_penalty(1.3)
                .with_trace(true)
                .with_seed(42)
                .with_capacity_events(events.clone());
            let jobs: Vec<JobSpec> = (0..6)
                .map(|i| {
                    JobSpec::builder(format!("j{i}"))
                        .arrival(i * 3)
                        .tasks((0..5).map(|t| {
                            TaskSpec::new(4.0 + t as f64, Phase::Map)
                                .with_preference(crate::NodeId((t % 6) as u32))
                        }))
                        .task(TaskSpec::new(6.0, Phase::Reduce))
                        .utility(TimeUtility::constant(1.0).unwrap())
                        .build()
                        .unwrap()
                })
                .collect();
            Simulation::new(cfg, jobs).unwrap()
        };
        let indexed = mk().run(&mut AlwaysSpeculate).unwrap();
        let scanned = naive::run(mk(), &mut AlwaysSpeculate).unwrap();
        assert_eq!(indexed.outcomes, scanned.outcomes);
        assert_eq!(indexed.makespan, scanned.makespan);
        assert_eq!(indexed.assignments, scanned.assignments);
        assert_eq!(indexed.misassignments, scanned.misassignments);
        assert_eq!(indexed.scheduler_invocations, scanned.scheduler_invocations);
        assert_eq!(indexed.failed_attempts, scanned.failed_attempts);
        assert_eq!(indexed.speculative_attempts, scanned.speculative_attempts);
        assert_eq!(indexed.killed_attempts, scanned.killed_attempts);
        assert_eq!(indexed.local_starts, scanned.local_starts);
        assert_eq!(indexed.remote_starts, scanned.remote_starts);
        assert_eq!(indexed.revoked_containers, scanned.revoked_containers);
        assert_eq!(indexed.restocked_containers, scanned.restocked_containers);
        assert_eq!(indexed.revoked_attempts, scanned.revoked_attempts);
        assert_eq!(indexed.trace, scanned.trace);
        // The churn actually bit: something was revoked while busy.
        assert!(indexed.revoked_attempts > 0);
    }
}

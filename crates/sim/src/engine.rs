//! The discrete-time simulation engine.
//!
//! [`Simulation::run`] drives a deterministic event loop over job arrivals,
//! task completions and container assignment. Between events the clock
//! jumps directly to the next interesting slot, so run cost scales with the
//! number of task starts/finishes rather than with wall-clock horizon.
//!
//! Per event, the processing order is:
//!
//! 1. task completions at the current slot (containers are freed, samples
//!    are reported to the scheduler);
//! 2. job arrivals at the current slot;
//! 3. the **dispatch loop**: while containers are free and runnable tasks
//!    exist, the scheduler is asked to name the job that gets the next
//!    container. Returning `None` leaves the remaining containers idle
//!    until the next event — a legitimate decision for a completion-time
//!    aware scheduler.

use crate::cluster::ClusterSpec;
use crate::job::{JobSpec, Phase};
use crate::outcome::{JobOutcome, SimResult};
use crate::perturb::{FailureModel, Interference};
use crate::scheduler::Scheduler;
use crate::trace::{Trace, TraceEvent};
use crate::view::{ClusterView, JobView, TaskSample};
use crate::{JobId, SimError, Slot, TaskId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rush_utility::Utility;
use std::cmp::Reverse;
use std::time::Instant;

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    cluster: ClusterSpec,
    interference: Interference,
    failures: FailureModel,
    record_trace: bool,
    remote_penalty: f64,
    max_slots: Slot,
    seed: u64,
}

impl SimConfig {
    /// Creates a configuration for the given cluster with no interference,
    /// a `2^40`-slot horizon and seed 0.
    pub fn new(cluster: ClusterSpec) -> Self {
        SimConfig {
            cluster,
            interference: Interference::None,
            failures: FailureModel::None,
            record_trace: false,
            remote_penalty: 1.0,
            max_slots: 1 << 40,
            seed: 0,
        }
    }

    /// Convenience: a homogeneous, interference-free cluster of
    /// `nodes × containers_per_node` unit-speed containers.
    ///
    /// # Panics
    ///
    /// Panics if the capacity would be zero.
    pub fn homogeneous(nodes: u32, containers_per_node: u32) -> Self {
        Self::new(
            ClusterSpec::homogeneous(nodes, containers_per_node)
                .expect("homogeneous cluster must have at least one container"),
        )
    }

    /// Sets the interference model (default: none).
    pub fn with_interference(mut self, interference: Interference) -> Self {
        self.interference = interference;
        self
    }

    /// Sets the task-failure model (default: no failures). Failed attempts
    /// occupy their container for the full attempt duration and the task is
    /// re-queued.
    pub fn with_failures(mut self, failures: FailureModel) -> Self {
        self.failures = failures;
        self
    }

    /// Enables event tracing; the resulting [`Trace`] is attached to the
    /// `SimResult` (see [`crate::outcome`]).
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Sets the runtime multiplier applied when a task with a declared
    /// [data preference](crate::job::TaskSpec::with_preference) runs on a
    /// different node (default 1.0 = locality is free). Hadoop's rule of
    /// thumb for rack-remote map input is 1.1–1.5.
    ///
    /// # Panics
    ///
    /// Panics unless `penalty ≥ 1.0` and finite.
    pub fn with_remote_penalty(mut self, penalty: f64) -> Self {
        assert!(penalty.is_finite() && penalty >= 1.0, "remote penalty must be >= 1");
        self.remote_penalty = penalty;
        self
    }

    /// Sets the RNG seed for interference draws (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the safety horizon after which the run aborts (default 2^40).
    pub fn with_max_slots(mut self, max_slots: Slot) -> Self {
        self.max_slots = max_slots;
        self
    }

    /// The cluster topology.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Total container capacity.
    pub fn capacity(&self) -> u32 {
        self.cluster.capacity()
    }
}

/// Per-job mutable state inside the engine.
#[derive(Debug)]
struct JobState {
    spec: JobSpec,
    /// Unstarted map task indices (popped from the back).
    pending_maps: Vec<usize>,
    /// Unstarted reduce task indices (popped from the back).
    pending_reduces: Vec<usize>,
    maps_remaining: usize,
    completed: usize,
    finish: Option<Slot>,
    /// Container·slots consumed by successful attempts.
    useful_slots: u64,
    /// Container·slots wasted on failed or killed attempts.
    wasted_slots: u64,
}

/// A task occupying a container until `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct RunningTask {
    end: Slot,
    job: usize,
    task: usize,
    container: u32,
    duration: Slot,
    fails: bool,
    speculative: bool,
}

impl RunningTask {
    fn start(&self) -> Slot {
        self.end - self.duration
    }
}

/// Index of the due attempt with the smallest (end, job, task, container),
/// or None when nothing ends at `now`.
fn pop_due(running: &mut Vec<RunningTask>, now: Slot) -> Option<RunningTask> {
    let idx = running
        .iter()
        .enumerate()
        .filter(|(_, rt)| rt.end == now)
        .min_by_key(|(_, rt)| (rt.job, rt.task, rt.container))
        .map(|(i, _)| i)?;
    Some(running.remove(idx))
}

/// Earliest attempt end across the running set.
fn next_end(running: &[RunningTask]) -> Option<Slot> {
    running.iter().map(|rt| rt.end).min()
}

/// Refreshes a job view's oldest-running-attempt start from the running set.
fn refresh_oldest(views: &mut [JobView], running: &[RunningTask], job_idx: usize) {
    if let Some(v) = views.iter_mut().find(|v| v.id == JobId(job_idx as u32)) {
        v.oldest_running_start =
            running.iter().filter(|rt| rt.job == job_idx).map(|rt| rt.start()).min();
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    jobs: Vec<JobState>,
}

impl Simulation {
    /// Creates a simulation over the given jobs. Jobs receive ids
    /// `JobId(0)..` in submission order.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if `jobs` is empty.
    pub fn new(config: SimConfig, jobs: Vec<JobSpec>) -> Result<Self, SimError> {
        if jobs.is_empty() {
            return Err(SimError::InvalidConfig { reason: "no jobs submitted" });
        }
        let jobs = jobs
            .into_iter()
            .map(|spec| {
                let maps: Vec<usize> = spec
                    .tasks()
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.phase() == Phase::Map)
                    .map(|(i, _)| i)
                    .rev()
                    .collect();
                let reduces: Vec<usize> = spec
                    .tasks()
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.phase() == Phase::Reduce)
                    .map(|(i, _)| i)
                    .rev()
                    .collect();
                JobState {
                    maps_remaining: maps.len(),
                    pending_maps: maps,
                    pending_reduces: reduces,
                    completed: 0,
                    finish: None,
                    useful_slots: 0,
                    wasted_slots: 0,
                    spec,
                }
            })
            .collect();
        Ok(Simulation { config, jobs })
    }

    /// Runs the simulation to completion under `scheduler`, consuming it.
    ///
    /// # Errors
    ///
    /// * [`SimError::HorizonExceeded`] if the configured `max_slots` passes
    ///   with unfinished jobs.
    /// * [`SimError::SchedulerStalled`] if the scheduler refuses to assign
    ///   while nothing is running and no arrival is pending.
    pub fn run<S: Scheduler + ?Sized>(mut self, scheduler: &mut S) -> Result<SimResult, SimError> {
        let capacity = self.config.capacity();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);

        // Arrivals sorted descending so the next arrival pops from the back.
        let mut arrivals: Vec<usize> = (0..self.jobs.len()).collect();
        arrivals.sort_by_key(|&i| Reverse((self.jobs[i].spec.arrival(), i)));

        // Free containers, largest index first so pop() yields the smallest.
        let mut free: Vec<u32> = (0..capacity).rev().collect();
        let mut running: Vec<RunningTask> = Vec::with_capacity(capacity as usize);
        let mut views: Vec<JobView> = Vec::new();
        let mut result = SimResult::default();
        let mut trace: Option<Trace> =
            if self.config.record_trace { Some(Trace::new()) } else { None };
        let mut now: Slot = match arrivals.last() {
            Some(&i) => self.jobs[i].spec.arrival(),
            None => 0,
        };

        loop {
            // 1. Completions (and attempt failures) at `now`.
            while let Some(rt) = pop_due(&mut running, now) {
                free.push(rt.container);
                free.sort_unstable_by_key(|&c| Reverse(c));
                let sibling_running =
                    running.iter().any(|o| o.job == rt.job && o.task == rt.task);
                if rt.fails {
                    let sample = self.fail_task(
                        &mut views,
                        rt,
                        now,
                        sibling_running,
                        &mut result,
                        &mut trace,
                    );
                    refresh_oldest(&mut views, &running, rt.job);
                    let view = ClusterView {
                        now,
                        capacity,
                        free_containers: free.len() as u32,
                        jobs: &views,
                    };
                    let t0 = Instant::now();
                    scheduler.on_task_failed(&view, sample);
                    result.scheduler_time += t0.elapsed();
                } else {
                    // First successful attempt wins: kill any duplicate of
                    // the same task before recording the completion.
                    if sibling_running {
                        let idx = running
                            .iter()
                            .position(|o| o.job == rt.job && o.task == rt.task)
                            .expect("sibling present");
                        let sib = running.remove(idx);
                        free.push(sib.container);
                        free.sort_unstable_by_key(|&c| Reverse(c));
                        result.killed_attempts += 1;
                        self.jobs[sib.job].wasted_slots += now.saturating_sub(sib.start());
                        if let Some(v) = views.iter_mut().find(|v| v.id == JobId(sib.job as u32))
                        {
                            v.running_tasks -= 1;
                        }
                        if let Some(trace) = &mut trace {
                            trace.push(TraceEvent::TaskKilled {
                                job: JobId(sib.job as u32),
                                task: TaskId(sib.task as u32),
                                at: now,
                            });
                        }
                    }
                    let sample = self.complete_task(&mut views, rt, now, &mut result, &mut trace);
                    refresh_oldest(&mut views, &running, rt.job);
                    let view = ClusterView {
                        now,
                        capacity,
                        free_containers: free.len() as u32,
                        jobs: &views,
                    };
                    let t0 = Instant::now();
                    scheduler.on_task_complete(&view, sample);
                    result.scheduler_time += t0.elapsed();
                }
            }

            // 2. Arrivals at `now`.
            while arrivals.last().is_some_and(|&i| self.jobs[i].spec.arrival() == now) {
                let i = arrivals.pop().expect("peeked");
                let v = self.make_view(i);
                let id = v.id;
                views.push(v);
                if let Some(trace) = &mut trace {
                    trace.push(TraceEvent::JobArrived { job: id, at: now });
                }
                let view =
                    ClusterView { now, capacity, free_containers: free.len() as u32, jobs: &views };
                let t0 = Instant::now();
                scheduler.on_job_arrival(&view, id);
                result.scheduler_time += t0.elapsed();
            }

            // 3. Dispatch loop. A bounded misassignment budget lets a
            // scheduler recover from naming an invalid job without letting
            // a persistently confused one spin the engine forever.
            let mut misassign_budget = capacity as u64 + 1;
            while !free.is_empty() && views.iter().any(|v| v.runnable_tasks > 0) {
                let view =
                    ClusterView { now, capacity, free_containers: free.len() as u32, jobs: &views };
                let t0 = Instant::now();
                let choice = scheduler.assign(&view);
                result.scheduler_time += t0.elapsed();
                result.scheduler_invocations += 1;
                match choice {
                    None => break,
                    Some(id) => {
                        let Some(vi) = views.iter().position(|v| v.id == id) else {
                            result.misassignments += 1;
                            misassign_budget -= 1;
                            if misassign_budget == 0 {
                                break;
                            }
                            continue;
                        };
                        if views[vi].runnable_tasks == 0 {
                            result.misassignments += 1;
                            misassign_budget -= 1;
                            if misassign_budget == 0 {
                                break;
                            }
                            continue;
                        }
                        let container = free.pop().expect("free checked");
                        self.start_task(
                            &mut views,
                            vi,
                            container,
                            now,
                            &mut running,
                            &mut rng,
                            &mut trace,
                            &mut result,
                        );
                        result.assignments += 1;
                    }
                }
            }

            // 3b. Speculation loop: with containers still free, offer the
            // scheduler the chance to duplicate a long-running attempt
            // (Hadoop-style speculative execution). The engine picks the
            // oldest non-duplicated primary attempt of the named job.
            let mut spec_budget = capacity as u64;
            while !free.is_empty() && spec_budget > 0 {
                spec_budget -= 1;
                let view =
                    ClusterView { now, capacity, free_containers: free.len() as u32, jobs: &views };
                let t0 = Instant::now();
                let choice = scheduler.speculate(&view);
                result.scheduler_time += t0.elapsed();
                let Some(id) = choice else { break };
                let job_idx = id.0 as usize;
                let target = running
                    .iter()
                    .filter(|rt| {
                        rt.job == job_idx
                            && !rt.speculative
                            && running
                                .iter()
                                .filter(|o| o.job == rt.job && o.task == rt.task)
                                .count()
                                == 1
                    })
                    .min_by_key(|rt| (rt.start(), rt.task))
                    .copied();
                let Some(primary) = target else { break };
                let container = free.pop().expect("free checked");
                let task = self.jobs[job_idx].spec.tasks()[primary.task];
                let base = task.base_runtime();
                let node = self.config.cluster.node_of_container(container);
                let locality = match task.preferred_node() {
                    Some(pref) if pref != node.id() => self.config.remote_penalty,
                    _ => 1.0,
                };
                let factor = self.config.interference.draw(&mut rng);
                let fails = self.config.failures.draw(&mut rng);
                let duration =
                    (base * node.speed_factor() * locality * factor).ceil().max(1.0) as Slot;
                if let Some(trace) = &mut trace {
                    trace.push(TraceEvent::TaskSpeculated {
                        job: id,
                        task: TaskId(primary.task as u32),
                        container,
                        node: node.id(),
                        at: now,
                        duration,
                    });
                }
                running.push(RunningTask {
                    end: now + duration,
                    job: job_idx,
                    task: primary.task,
                    container,
                    duration,
                    fails,
                    speculative: true,
                });
                if let Some(v) = views.iter_mut().find(|v| v.id == id) {
                    v.running_tasks += 1;
                }
                refresh_oldest(&mut views, &running, job_idx);
                result.speculative_attempts += 1;
            }

            // 4. Advance to the next event.
            if self.jobs.iter().all(|j| j.finish.is_some()) {
                break;
            }
            let next_completion = next_end(&running);
            let next_arrival = arrivals.last().map(|&i| self.jobs[i].spec.arrival());
            let next = match (next_completion, next_arrival) {
                (Some(c), Some(a)) => c.min(a),
                (Some(c), None) => c,
                (None, Some(a)) => a,
                (None, None) => return Err(SimError::SchedulerStalled { at: now }),
            };
            debug_assert!(next > now, "time must advance");
            if next > self.config.max_slots {
                let unfinished = self.jobs.iter().filter(|j| j.finish.is_none()).count();
                return Err(SimError::HorizonExceeded {
                    max_slots: self.config.max_slots,
                    unfinished,
                });
            }
            now = next;
        }

        result.makespan = now;
        result.outcomes.sort_by_key(|o| (o.finish, o.id));
        result.trace = trace;
        Ok(result)
    }

    /// Handles a failed attempt: the task is re-queued and the wasted
    /// runtime reported.
    fn fail_task(
        &mut self,
        views: &mut [JobView],
        rt: RunningTask,
        now: Slot,
        sibling_running: bool,
        result: &mut SimResult,
        trace: &mut Option<Trace>,
    ) -> TaskSample {
        let job = &mut self.jobs[rt.job];
        let was_map = job.spec.tasks()[rt.task].phase() == Phase::Map;
        // With a duplicate attempt still in flight, the failure is absorbed:
        // the task stays running elsewhere and is not re-queued.
        if !sibling_running {
            if was_map {
                job.pending_maps.push(rt.task);
            } else {
                job.pending_reduces.push(rt.task);
            }
        }
        let vi = views
            .iter()
            .position(|v| v.id == JobId(rt.job as u32))
            .expect("failing task of an active job");
        let v = &mut views[vi];
        v.running_tasks -= 1;
        v.failed_attempts += 1;
        if !sibling_running {
            v.pending_tasks += 1;
            // Re-queued map tasks are always runnable; reduces only once the
            // map barrier has cleared (it has, if a reduce was running).
            if was_map || job.maps_remaining == 0 {
                v.runnable_tasks += 1;
            }
        }
        result.failed_attempts += 1;
        job.wasted_slots += rt.duration;
        if let Some(trace) = trace {
            trace.push(TraceEvent::TaskFailed {
                job: JobId(rt.job as u32),
                task: TaskId(rt.task as u32),
                at: now,
                runtime: rt.duration,
            });
        }
        TaskSample {
            job: JobId(rt.job as u32),
            task: TaskId(rt.task as u32),
            runtime: rt.duration,
            finished_at: now,
        }
    }

    /// Builds the initial view of job `i`.
    fn make_view(&self, i: usize) -> JobView {
        let job = &self.jobs[i];
        let spec = &job.spec;
        let runnable = if job.maps_remaining > 0 {
            job.pending_maps.len()
        } else {
            job.pending_maps.len() + job.pending_reduces.len()
        };
        JobView {
            id: JobId(i as u32),
            label: spec.label().to_owned(),
            arrival: spec.arrival(),
            utility: *spec.utility(),
            priority: spec.priority(),
            sensitivity: spec.sensitivity(),
            budget: spec.budget(),
            total_tasks: spec.tasks().len(),
            pending_tasks: spec.tasks().len(),
            runnable_tasks: runnable,
            running_tasks: 0,
            completed_tasks: 0,
            failed_attempts: 0,
            oldest_running_start: None,
            samples: Vec::new(),
        }
    }

    /// Starts the next runnable task of the job behind `views[vi]`.
    #[allow(clippy::too_many_arguments)] // engine plumbing, not public API
    fn start_task(
        &mut self,
        views: &mut [JobView],
        vi: usize,
        container: u32,
        now: Slot,
        running: &mut Vec<RunningTask>,
        rng: &mut SmallRng,
        trace: &mut Option<Trace>,
        result: &mut SimResult,
    ) {
        let job_idx = views[vi].id.0 as usize;
        let node = self.config.cluster.node_of_container(container);
        let node_id = node.id();
        let job = &mut self.jobs[job_idx];
        // Locality-aware pick: prefer a pending task whose input lives on
        // this container's node (the data-local choice a YARN node manager
        // heartbeat would make), falling back to stack order.
        let pick_local = |pending: &[usize], spec: &JobSpec| -> Option<usize> {
            pending
                .iter()
                .rposition(|&t| spec.tasks()[t].preferred_node() == Some(node_id))
        };
        let task_idx = if let Some(pos) = pick_local(&job.pending_maps, &job.spec) {
            job.pending_maps.remove(pos)
        } else if let Some(t) = job.pending_maps.pop() {
            t
        } else if job.maps_remaining == 0 {
            if let Some(pos) = pick_local(&job.pending_reduces, &job.spec) {
                job.pending_reduces.remove(pos)
            } else {
                job.pending_reduces.pop().expect("runnable task exists")
            }
        } else {
            unreachable!("runnable task exists")
        };
        let task = job.spec.tasks()[task_idx];
        let base = task.base_runtime();
        let speed = node.speed_factor();
        let locality = match task.preferred_node() {
            Some(pref) if pref != node_id => {
                result.remote_starts += 1;
                self.config.remote_penalty
            }
            Some(_) => {
                result.local_starts += 1;
                1.0
            }
            None => 1.0,
        };
        let factor = self.config.interference.draw(rng);
        let fails = self.config.failures.draw(rng);
        let duration = (base * speed * locality * factor).ceil().max(1.0) as Slot;
        if let Some(trace) = trace {
            trace.push(TraceEvent::TaskStarted {
                job: JobId(job_idx as u32),
                task: crate::TaskId(task_idx as u32),
                container,
                node: node_id,
                at: now,
                duration,
            });
        }
        running.push(RunningTask {
            end: now + duration,
            job: job_idx,
            task: task_idx,
            container,
            duration,
            fails,
            speculative: false,
        });
        let v = &mut views[vi];
        v.pending_tasks -= 1;
        v.runnable_tasks -= 1;
        v.running_tasks += 1;
        refresh_oldest(views, running, job_idx);
    }

    /// Records a task completion; returns the sample reported to the
    /// scheduler. Removes the job's view once the job is fully complete.
    fn complete_task(
        &mut self,
        views: &mut Vec<JobView>,
        rt: RunningTask,
        now: Slot,
        result: &mut SimResult,
        trace: &mut Option<Trace>,
    ) -> TaskSample {
        let job = &mut self.jobs[rt.job];
        job.completed += 1;
        job.useful_slots += rt.duration;
        let was_map = job.spec.tasks()[rt.task].phase() == Phase::Map;
        if was_map {
            job.maps_remaining -= 1;
        }
        let vi = views
            .iter()
            .position(|v| v.id == JobId(rt.job as u32))
            .expect("completing task of an active job");
        let v = &mut views[vi];
        v.running_tasks -= 1;
        v.completed_tasks += 1;
        if was_map && job.maps_remaining == 0 {
            // Map barrier cleared: reduces become runnable.
            v.runnable_tasks += job.pending_reduces.len();
        }
        v.samples.push(rt.duration);
        if let Some(trace) = trace {
            trace.push(TraceEvent::TaskFinished {
                job: JobId(rt.job as u32),
                task: TaskId(rt.task as u32),
                at: now,
                runtime: rt.duration,
            });
        }
        let sample = TaskSample {
            job: JobId(rt.job as u32),
            task: TaskId(rt.task as u32),
            runtime: rt.duration,
            finished_at: now,
        };
        if job.completed == job.spec.tasks().len() {
            job.finish = Some(now);
            let runtime_slots = now - job.spec.arrival();
            result.outcomes.push(JobOutcome {
                id: JobId(rt.job as u32),
                label: job.spec.label().to_owned(),
                arrival: job.spec.arrival(),
                finish: now,
                runtime: runtime_slots,
                budget: job.spec.budget(),
                utility: job.spec.utility().utility(runtime_slots as f64),
                sensitivity: job.spec.sensitivity(),
                priority: job.spec.priority(),
                tasks: job.spec.tasks().len(),
                container_slots: job.useful_slots,
                wasted_slots: job.wasted_slots,
            });
            if let Some(trace) = trace {
                trace.push(TraceEvent::JobCompleted { job: JobId(rt.job as u32), at: now });
            }
            views.remove(vi);
        }
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TaskSpec;
    use crate::scheduler::{fcfs_task_order, FcfsTaskOrder};
    use rush_utility::TimeUtility;

    fn util() -> TimeUtility {
        TimeUtility::constant(1.0).unwrap()
    }

    fn simple_job(label: &str, arrival: Slot, maps: usize, runtime: f64) -> JobSpec {
        JobSpec::builder(label)
            .arrival(arrival)
            .tasks((0..maps).map(|_| TaskSpec::new(runtime, Phase::Map)))
            .utility(util())
            .build()
            .unwrap()
    }

    #[test]
    fn single_job_on_ample_cluster_runs_in_one_wave() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 8), vec![simple_job("j", 0, 4, 10.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.outcomes[0].runtime, 10);
        assert_eq!(r.assignments, 4);
        assert_eq!(r.misassignments, 0);
    }

    #[test]
    fn constrained_cluster_serializes_waves() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 2), vec![simple_job("j", 0, 4, 10.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].runtime, 20); // two waves of two tasks
    }

    #[test]
    fn arrival_offsets_are_respected() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 1), vec![simple_job("j", 7, 1, 5.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].arrival, 7);
        assert_eq!(r.outcomes[0].finish, 12);
        assert_eq!(r.outcomes[0].runtime, 5);
    }

    #[test]
    fn reduce_waits_for_map_barrier() {
        let job = JobSpec::builder("mr")
            .tasks(vec![
                TaskSpec::new(10.0, Phase::Map),
                TaskSpec::new(2.0, Phase::Map),
                TaskSpec::new(5.0, Phase::Reduce),
            ])
            .utility(util())
            .build()
            .unwrap();
        // Plenty of containers: without the barrier the reduce would start
        // at 0 and the job would finish at 10; with it, 10 + 5 = 15.
        let sim = Simulation::new(SimConfig::homogeneous(1, 8), vec![job]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].runtime, 15);
    }

    #[test]
    fn two_jobs_fcfs_order() {
        let sim = Simulation::new(
            SimConfig::homogeneous(1, 1),
            vec![simple_job("a", 0, 1, 10.0), simple_job("b", 1, 1, 10.0)],
        )
        .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        let a = r.outcome(JobId(0)).unwrap();
        let b = r.outcome(JobId(1)).unwrap();
        assert_eq!(a.finish, 10);
        assert_eq!(b.finish, 20); // waits for the single container
        assert_eq!(b.runtime, 19);
    }

    #[test]
    fn node_speed_scales_runtime() {
        let cluster = ClusterSpec::new(vec![(2.0, 1)]).unwrap(); // 2x slower
        let sim = Simulation::new(SimConfig::new(cluster), vec![simple_job("j", 0, 1, 10.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].runtime, 20);
    }

    #[test]
    fn interference_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = SimConfig::homogeneous(1, 4)
                .with_interference(Interference::LogNormal { cv: 0.5 })
                .with_seed(seed);
            let sim = Simulation::new(cfg, vec![simple_job("j", 0, 16, 10.0)]).unwrap();
            sim.run(&mut fcfs_task_order()).unwrap().makespan
        };
        assert_eq!(run(9), run(9));
        // With CV=0.5, two seeds virtually never produce identical makespans.
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn horizon_exceeded_is_reported() {
        let cfg = SimConfig::homogeneous(1, 1).with_max_slots(5);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 2, 10.0)]).unwrap();
        let err = sim.run(&mut fcfs_task_order()).unwrap_err();
        assert!(matches!(err, SimError::HorizonExceeded { unfinished: 1, .. }));
    }

    #[test]
    fn empty_job_list_rejected() {
        assert!(matches!(
            Simulation::new(SimConfig::homogeneous(1, 1), vec![]),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    /// A scheduler that always refuses to assign.
    #[derive(Debug)]
    struct Refusenik;
    impl Scheduler for Refusenik {
        fn name(&self) -> &str {
            "refusenik"
        }
        fn assign(&mut self, _view: &ClusterView<'_>) -> Option<JobId> {
            None
        }
    }

    #[test]
    fn refusing_scheduler_stalls() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 1), vec![simple_job("j", 0, 1, 5.0)])
            .unwrap();
        let err = sim.run(&mut Refusenik).unwrap_err();
        assert!(matches!(err, SimError::SchedulerStalled { at: 0 }));
    }

    /// A scheduler that names a bogus job.
    #[derive(Debug)]
    struct Bogus(bool);
    impl Scheduler for Bogus {
        fn name(&self) -> &str {
            "bogus"
        }
        fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
            if self.0 {
                // After the first bogus answer, behave.
                FcfsTaskOrder.assign(view)
            } else {
                self.0 = true;
                Some(JobId(999))
            }
        }
    }

    #[test]
    fn misassignments_are_counted_and_survivable() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 2), vec![simple_job("j", 0, 2, 5.0)])
            .unwrap();
        let r = sim.run(&mut Bogus(false)).unwrap();
        assert!(r.misassignments >= 1);
        assert_eq!(r.outcomes.len(), 1);
    }

    #[test]
    fn scheduler_counters_populated() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 2), vec![simple_job("j", 0, 4, 5.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.assignments, 4);
        assert!(r.scheduler_invocations >= 4);
    }

    #[test]
    fn outcomes_sorted_by_finish() {
        let sim = Simulation::new(
            SimConfig::homogeneous(1, 2),
            vec![simple_job("slow", 0, 1, 30.0), simple_job("fast", 0, 1, 5.0)],
        )
        .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes[0].label, "fast");
        assert_eq!(r.outcomes[1].label, "slow");
        assert_eq!(r.makespan, 30);
    }

    #[test]
    fn failed_attempts_are_requeued_and_job_still_completes() {
        use crate::perturb::FailureModel;
        let cfg = SimConfig::homogeneous(1, 2)
            .with_failures(FailureModel::Bernoulli { p: 0.3 })
            .with_seed(5);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 30, 10.0)]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.failed_attempts > 0, "p=0.3 over 30+ attempts should fail at least once");
        // Every failed attempt re-runs: assignments = tasks + failures.
        assert_eq!(r.assignments, 30 + r.failed_attempts);
        // Wasted attempts stretch the runtime beyond the ideal 150.
        assert!(r.outcomes[0].runtime >= 150);
    }

    #[test]
    fn reduce_failure_respects_barrier_state() {
        use crate::perturb::FailureModel;
        // With p=0.5 and a seed chosen to hit a reduce failure, the reduce
        // must be re-queued as runnable (barrier already cleared).
        let job = JobSpec::builder("mr")
            .tasks(vec![TaskSpec::new(5.0, Phase::Map), TaskSpec::new(5.0, Phase::Reduce)])
            .utility(util())
            .build()
            .unwrap();
        for seed in 0..20 {
            let cfg = SimConfig::homogeneous(1, 1)
                .with_failures(FailureModel::Bernoulli { p: 0.4 })
                .with_seed(seed);
            let sim = Simulation::new(cfg, vec![job.clone()]).unwrap();
            let r = sim.run(&mut fcfs_task_order()).unwrap();
            assert_eq!(r.outcomes.len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn trace_records_full_lifecycle() {
        use crate::trace::TraceEvent;
        let cfg = SimConfig::homogeneous(1, 2).with_trace(true);
        let sim = Simulation::new(cfg, vec![simple_job("j", 3, 2, 10.0)]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        let trace = r.trace.expect("tracing enabled");
        let kinds: Vec<&str> = trace
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::JobArrived { .. } => "arrive",
                TraceEvent::TaskStarted { .. } => "start",
                TraceEvent::TaskFinished { .. } => "finish",
                TraceEvent::TaskFailed { .. } => "fail",
                TraceEvent::TaskSpeculated { .. } => "speculate",
                TraceEvent::TaskKilled { .. } => "kill",
                TraceEvent::JobCompleted { .. } => "complete",
            })
            .collect();
        assert_eq!(kinds, vec!["arrive", "start", "start", "finish", "finish", "complete"]);
        assert_eq!(trace.events()[0].at(), 3);
        // CSV renders one line per event plus a header.
        assert_eq!(trace.to_csv().lines().count(), 7);
    }

    #[test]
    fn trace_disabled_by_default() {
        let sim = Simulation::new(SimConfig::homogeneous(1, 1), vec![simple_job("j", 0, 1, 5.0)])
            .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert!(r.trace.is_none());
    }

    /// Speculates on every opportunity.
    #[derive(Debug)]
    struct AlwaysSpeculate;
    impl Scheduler for AlwaysSpeculate {
        fn name(&self) -> &str {
            "always-spec"
        }
        fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
            FcfsTaskOrder.assign(view)
        }
        fn speculate(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
            view.jobs.iter().find(|j| j.running_tasks > 0).map(|j| j.id)
        }
    }

    #[test]
    fn speculation_duplicates_and_kills_cleanly() {
        // 2 tasks on 4 containers: after both start, 2 containers stay free
        // and the speculator duplicates both. Every task finishes once;
        // sibling attempts are killed; counters balance.
        let sim = Simulation::new(
            SimConfig::homogeneous(1, 4).with_trace(true),
            vec![simple_job("s", 0, 2, 10.0)],
        )
        .unwrap();
        let r = sim.run(&mut AlwaysSpeculate).unwrap();
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.speculative_attempts, 2);
        // Duplicates on a homogeneous interference-free cluster tie with
        // their primaries; the primary (processed first by job/task order)
        // wins and each duplicate is killed.
        assert_eq!(r.killed_attempts, 2);
        assert_eq!(r.outcomes[0].runtime, 10);
        let trace = r.trace.unwrap();
        use crate::trace::TraceEvent;
        let kinds: Vec<&str> = trace
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::JobArrived { .. } => "arrive",
                TraceEvent::TaskStarted { .. } => "start",
                TraceEvent::TaskFinished { .. } => "finish",
                TraceEvent::TaskFailed { .. } => "fail",
                TraceEvent::TaskSpeculated { .. } => "speculate",
                TraceEvent::TaskKilled { .. } => "kill",
                TraceEvent::JobCompleted { .. } => "complete",
            })
            .collect();
        assert_eq!(kinds.iter().filter(|k| **k == "speculate").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "kill").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "finish").count(), 2);
    }

    #[test]
    fn speculation_rescues_failed_primary() {
        use crate::perturb::FailureModel;
        // With failures and always-on speculation, a failed primary whose
        // duplicate is still running is absorbed without re-queueing; the
        // job still completes exactly its task count.
        for seed in 0..12 {
            let cfg = SimConfig::homogeneous(1, 6)
                .with_failures(FailureModel::Bernoulli { p: 0.4 })
                .with_seed(seed);
            let sim = Simulation::new(cfg, vec![simple_job("s", 0, 3, 10.0)]).unwrap();
            let r = sim.run(&mut AlwaysSpeculate).unwrap();
            assert_eq!(r.outcomes.len(), 1, "seed {seed}");
            assert_eq!(r.outcomes[0].tasks, 3);
        }
    }

    #[test]
    fn remote_penalty_slows_misplaced_tasks() {
        use crate::NodeId;
        // 2 nodes x 1 container. Two tasks preferring node 0: one runs
        // local (10 slots), the other is forced onto node 1 (15 slots).
        let job = JobSpec::builder("loc")
            .tasks(vec![
                TaskSpec::new(10.0, Phase::Map).with_preference(NodeId(0)),
                TaskSpec::new(10.0, Phase::Map).with_preference(NodeId(0)),
            ])
            .utility(util())
            .build()
            .unwrap();
        let cfg = SimConfig::homogeneous(2, 1).with_remote_penalty(1.5).with_trace(true);
        let r = Simulation::new(cfg, vec![job]).unwrap().run(&mut fcfs_task_order()).unwrap();
        let trace = r.trace.unwrap();
        let mut durations: Vec<Slot> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::trace::TraceEvent::TaskStarted { duration, .. } => Some(*duration),
                _ => None,
            })
            .collect();
        durations.sort_unstable();
        assert_eq!(durations, vec![10, 15]);
    }

    #[test]
    fn local_tasks_are_picked_first() {
        use crate::NodeId;
        // Single container on node 0; the job has one node-1 task and one
        // node-0 task queued in that order. The engine must pick the local
        // (node-0) task first.
        let job = JobSpec::builder("pick")
            .tasks(vec![
                TaskSpec::new(10.0, Phase::Map).with_preference(NodeId(1)),
                TaskSpec::new(10.0, Phase::Map).with_preference(NodeId(0)),
            ])
            .utility(util())
            .build()
            .unwrap();
        let cfg = SimConfig::homogeneous(1, 1).with_remote_penalty(2.0).with_trace(true);
        let r = Simulation::new(cfg, vec![job]).unwrap().run(&mut fcfs_task_order()).unwrap();
        let trace = r.trace.unwrap();
        let first_started = trace
            .events()
            .iter()
            .find_map(|e| match e {
                crate::trace::TraceEvent::TaskStarted { task, duration, .. } => {
                    Some((*task, *duration))
                }
                _ => None,
            })
            .unwrap();
        // task-1 prefers node 0 → runs first at full speed.
        assert_eq!(first_started, (crate::TaskId(1), 10));
    }

    #[test]
    #[should_panic(expected = "remote penalty")]
    fn remote_penalty_validated() {
        let _ = SimConfig::homogeneous(1, 1).with_remote_penalty(0.5);
    }

    #[test]
    fn resource_accounting_balances() {
        use crate::perturb::FailureModel;
        let cfg = SimConfig::homogeneous(1, 2)
            .with_failures(FailureModel::Bernoulli { p: 0.25 })
            .with_seed(4);
        let sim = Simulation::new(cfg, vec![simple_job("j", 0, 10, 10.0)]).unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        let o = &r.outcomes[0];
        assert_eq!(o.container_slots, 100, "10 successes x 10 slots");
        assert_eq!(o.wasted_slots, r.failed_attempts * 10, "each wasted attempt is 10 slots");
    }

    #[test]
    fn default_schedulers_never_speculate() {
        let sim = Simulation::new(
            SimConfig::homogeneous(1, 8),
            vec![simple_job("s", 0, 2, 10.0)],
        )
        .unwrap();
        let r = sim.run(&mut fcfs_task_order()).unwrap();
        assert_eq!(r.speculative_attempts, 0);
        assert_eq!(r.killed_attempts, 0);
    }

    #[test]
    fn samples_reach_views_through_scheduler() {
        /// Records samples it receives.
        #[derive(Debug, Default)]
        struct Recorder {
            samples: Vec<Slot>,
        }
        impl Scheduler for Recorder {
            fn name(&self) -> &str {
                "recorder"
            }
            fn on_task_complete(&mut self, _view: &ClusterView<'_>, s: TaskSample) {
                self.samples.push(s.runtime);
            }
            fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
                FcfsTaskOrder.assign(view)
            }
        }
        let sim = Simulation::new(SimConfig::homogeneous(1, 2), vec![simple_job("j", 0, 3, 7.0)])
            .unwrap();
        let mut rec = Recorder::default();
        sim.run(&mut rec).unwrap();
        assert_eq!(rec.samples, vec![7, 7, 7]);
    }
}

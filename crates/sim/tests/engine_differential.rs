//! Differential and determinism properties of the two simulation engines.
//!
//! The indexed engine ([`Simulation::run`]) and the scan-based reference
//! ([`rush_sim::engine::naive::run`]) must produce **bit-identical**
//! results: the same job outcomes in the same order, the same makespan and
//! counters, the same RNG draw order (visible through durations), and the
//! same trace event sequence. Wall-clock `scheduler_time` is the only field
//! allowed to differ.
//!
//! The workload generator below deliberately crosses the hard cases:
//! heterogeneous node speeds, map/reduce barriers, data-locality
//! preferences, Bernoulli failures, log-normal interference, and a
//! speculation-happy scheduler so duplicate-kill (including two duplicates
//! due at the same slot) is exercised.

use proptest::prelude::*;
use rush_sim::cluster::ClusterSpec;
use rush_sim::engine::{naive, SimConfig, Simulation};
use rush_sim::job::{JobSpec, Phase, TaskSpec};
use rush_sim::outcome::SimResult;
use rush_sim::perturb::{FailureModel, Interference};
use rush_sim::scheduler::{fcfs_task_order, FcfsTaskOrder, Scheduler};
use rush_sim::view::ClusterView;
use rush_sim::{JobId, NodeId, Slot};
use rush_utility::TimeUtility;

/// Deterministically speculates on the active job with the most running
/// tasks — enough pressure to trigger duplicate kills on every run shape.
#[derive(Debug, Clone, Copy, Default)]
struct GreedySpeculator;

impl Scheduler for GreedySpeculator {
    fn name(&self) -> &str {
        "greedy-spec"
    }
    fn assign(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        FcfsTaskOrder.assign(view)
    }
    fn speculate(&mut self, view: &ClusterView<'_>) -> Option<JobId> {
        view.jobs
            .iter()
            .filter(|j| j.running_tasks > 0)
            .max_by_key(|j| (j.running_tasks, std::cmp::Reverse(j.id)))
            .map(|j| j.id)
    }
}

/// One parameterized workload: `n_jobs` jobs with mixed map/reduce shapes
/// and node preferences on a 3-speed-grade cluster.
fn build_sim(
    seed: u64,
    n_jobs: usize,
    containers_per_node: u32,
    fail_p: f64,
    cv: f64,
    trace: bool,
) -> Simulation {
    let cluster =
        ClusterSpec::new(vec![(0.8, containers_per_node), (1.0, containers_per_node), (1.3, containers_per_node)])
            .unwrap();
    let mut cfg = SimConfig::new(cluster)
        .with_remote_penalty(1.4)
        .with_trace(trace)
        .with_seed(seed);
    if fail_p > 0.0 {
        cfg = cfg.with_failures(FailureModel::Bernoulli { p: fail_p });
    }
    if cv > 0.0 {
        cfg = cfg.with_interference(Interference::LogNormal { cv });
    }
    let jobs: Vec<JobSpec> = (0..n_jobs)
        .map(|i| {
            // Derive per-job shape from the index so every (seed, n_jobs)
            // pair names exactly one workload.
            let maps = 1 + (i * 7 + seed as usize) % 6;
            let reduces = (i + seed as usize) % 3;
            let arrival = (i as Slot * 5) % 23;
            let mut b = JobSpec::builder(format!("j{i}")).arrival(arrival);
            for t in 0..maps {
                let mut task = TaskSpec::new(3.0 + ((i + t) % 9) as f64, Phase::Map);
                if t % 2 == 0 {
                    task = task.with_preference(NodeId(((i + t) % 3) as u32));
                }
                b = b.task(task);
            }
            for t in 0..reduces {
                b = b.task(TaskSpec::new(4.0 + (t % 5) as f64, Phase::Reduce));
            }
            b.utility(TimeUtility::constant(1.0).unwrap()).build().unwrap()
        })
        .collect();
    Simulation::new(cfg, jobs).unwrap()
}

/// Asserts everything except wall-clock scheduler time is identical.
fn assert_bit_identical(a: &SimResult, b: &SimResult) {
    assert_eq!(a.outcomes, b.outcomes, "per-job outcomes must match");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.misassignments, b.misassignments);
    assert_eq!(a.scheduler_invocations, b.scheduler_invocations);
    assert_eq!(a.failed_attempts, b.failed_attempts);
    assert_eq!(a.speculative_attempts, b.speculative_attempts);
    assert_eq!(a.killed_attempts, b.killed_attempts);
    assert_eq!(a.local_starts, b.local_starts);
    assert_eq!(a.remote_starts, b.remote_starts);
    assert_eq!(a.trace, b.trace, "trace event sequences must match");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tentpole contract: indexed engine ≡ naive engine, bit for bit,
    /// across randomized seeds, fleet sizes, failures and interference.
    #[test]
    fn engines_agree_bit_for_bit(
        seed in 0u64..1000,
        n_jobs in 1usize..14,
        cpn in 1u32..5,
        fail in prop_oneof![Just(0.0), Just(0.15), Just(0.35)],
        cv in prop_oneof![Just(0.0), Just(0.4)],
    ) {
        let indexed = build_sim(seed, n_jobs, cpn, fail, cv, true)
            .run(&mut GreedySpeculator)
            .unwrap();
        let scanned = naive::run(
            build_sim(seed, n_jobs, cpn, fail, cv, true),
            &mut GreedySpeculator,
        )
        .unwrap();
        assert_bit_identical(&indexed, &scanned);
    }

    /// The engines also agree without speculation (pure FCFS path).
    #[test]
    fn engines_agree_without_speculation(
        seed in 0u64..1000,
        n_jobs in 1usize..10,
        fail in prop_oneof![Just(0.0), Just(0.25)],
    ) {
        let indexed = build_sim(seed, n_jobs, 2, fail, 0.3, true)
            .run(&mut fcfs_task_order())
            .unwrap();
        let scanned = naive::run(
            build_sim(seed, n_jobs, 2, fail, 0.3, true),
            &mut fcfs_task_order(),
        )
        .unwrap();
        assert_bit_identical(&indexed, &scanned);
    }

    /// Satellite: identical SimConfig + specs → bit-identical results
    /// across two fresh Simulations (run determinism).
    #[test]
    fn runs_are_deterministic(
        seed in 0u64..1000,
        n_jobs in 1usize..10,
    ) {
        let first = build_sim(seed, n_jobs, 3, 0.2, 0.5, true)
            .run(&mut GreedySpeculator)
            .unwrap();
        let second = build_sim(seed, n_jobs, 3, 0.2, 0.5, true)
            .run(&mut GreedySpeculator)
            .unwrap();
        assert_bit_identical(&first, &second);
    }

    /// Satellite: tracing must be pure observation — `record_trace` on vs
    /// off cannot change outcomes, counters or RNG consumption.
    #[test]
    fn trace_recording_does_not_change_outcomes(
        seed in 0u64..1000,
        n_jobs in 1usize..10,
    ) {
        let traced = build_sim(seed, n_jobs, 2, 0.2, 0.4, true)
            .run(&mut GreedySpeculator)
            .unwrap();
        let untraced = build_sim(seed, n_jobs, 2, 0.2, 0.4, false)
            .run(&mut GreedySpeculator)
            .unwrap();
        assert!(traced.trace.is_some());
        assert!(untraced.trace.is_none());
        assert_eq!(traced.outcomes, untraced.outcomes);
        assert_eq!(traced.makespan, untraced.makespan);
        assert_eq!(traced.assignments, untraced.assignments);
        assert_eq!(traced.scheduler_invocations, untraced.scheduler_invocations);
        assert_eq!(traced.failed_attempts, untraced.failed_attempts);
        assert_eq!(traced.speculative_attempts, untraced.speculative_attempts);
        assert_eq!(traced.killed_attempts, untraced.killed_attempts);
    }

    /// Outcomes arrive sorted by `(finish, id)` from both engines.
    #[test]
    fn outcomes_sorted_in_both_engines(
        seed in 0u64..1000,
        n_jobs in 2usize..12,
    ) {
        let check = |r: &SimResult| {
            assert!(r
                .outcomes
                .windows(2)
                .all(|w| (w[0].finish, w[0].id) < (w[1].finish, w[1].id)));
        };
        check(&build_sim(seed, n_jobs, 2, 0.1, 0.3, false).run(&mut GreedySpeculator).unwrap());
        check(&naive::run(
            build_sim(seed, n_jobs, 2, 0.1, 0.3, false),
            &mut GreedySpeculator,
        )
        .unwrap());
    }
}

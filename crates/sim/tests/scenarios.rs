//! Scenario-level integration tests of the simulator: heterogeneity,
//! barriers, failures, tracing and saturation, plus engine invariants under
//! randomized workloads.

use proptest::prelude::*;
use rush_sim::cluster::ClusterSpec;
use rush_sim::engine::{SimConfig, Simulation};
use rush_sim::job::{JobSpec, Phase, TaskSpec};
use rush_sim::perturb::{FailureModel, Interference};
use rush_sim::scheduler::fcfs_task_order;
use rush_sim::trace::TraceEvent;
use rush_sim::Slot;
use rush_utility::TimeUtility;

fn constant() -> TimeUtility {
    TimeUtility::constant(1.0).unwrap()
}

fn map_job(label: &str, arrival: Slot, maps: usize, runtime: f64) -> JobSpec {
    JobSpec::builder(label)
        .arrival(arrival)
        .tasks((0..maps).map(|_| TaskSpec::new(runtime, Phase::Map)))
        .utility(constant())
        .build()
        .unwrap()
}

#[test]
fn heterogeneous_nodes_split_runtimes() {
    // 2 containers: one on a fast node (0.5x), one on a slow node (2x).
    // Two identical tasks must finish at different times.
    let cluster = ClusterSpec::new(vec![(0.5, 1), (2.0, 1)]).unwrap();
    let cfg = SimConfig::new(cluster).with_trace(true);
    let r = Simulation::new(cfg, vec![map_job("het", 0, 2, 10.0)])
        .unwrap()
        .run(&mut fcfs_task_order())
        .unwrap();
    let trace = r.trace.unwrap();
    let mut finishes: Vec<u64> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TaskFinished { runtime, .. } => Some(*runtime),
            _ => None,
        })
        .collect();
    finishes.sort_unstable();
    assert_eq!(finishes, vec![5, 20]);
}

#[test]
fn barrier_with_failures_still_orders_phases() {
    // Map attempts may fail; reduces must never start before the last map
    // SUCCESS. Verified via the trace ordering.
    let job = JobSpec::builder("mr")
        .tasks((0..6).map(|_| TaskSpec::new(8.0, Phase::Map)))
        .tasks((0..2).map(|_| TaskSpec::new(5.0, Phase::Reduce)))
        .utility(constant())
        .build()
        .unwrap();
    for seed in 0..10 {
        let cfg = SimConfig::homogeneous(1, 3)
            .with_failures(FailureModel::Bernoulli { p: 0.3 })
            .with_trace(true)
            .with_seed(seed);
        let r = Simulation::new(cfg, vec![job.clone()])
            .unwrap()
            .run(&mut fcfs_task_order())
            .unwrap();
        let trace = r.trace.unwrap();
        let mut last_map_finish = 0;
        let mut first_reduce_start = u64::MAX;
        let mut map_successes = 0;
        for e in trace.events() {
            match *e {
                TraceEvent::TaskFinished { task, at, .. } if task.0 < 6 => {
                    last_map_finish = last_map_finish.max(at);
                    map_successes += 1;
                }
                TraceEvent::TaskStarted { task, at, .. } if task.0 >= 6 => {
                    first_reduce_start = first_reduce_start.min(at);
                }
                _ => {}
            }
        }
        assert_eq!(map_successes, 6, "seed {seed}");
        assert!(
            first_reduce_start >= last_map_finish,
            "seed {seed}: reduce at {first_reduce_start} before barrier {last_map_finish}"
        );
    }
}

#[test]
fn saturated_cluster_is_work_conserving_under_fcfs() {
    // 3 jobs x 8 tasks x 10 slots on 4 containers: 240 container·slots on
    // 4 containers = 60 slots makespan, no idle gaps under FCFS.
    let jobs: Vec<JobSpec> = (0..3).map(|i| map_job(&format!("j{i}"), 0, 8, 10.0)).collect();
    let r = Simulation::new(SimConfig::homogeneous(1, 4), jobs)
        .unwrap()
        .run(&mut fcfs_task_order())
        .unwrap();
    assert_eq!(r.makespan, 60);
}

#[test]
fn trace_csv_round_trip_counts() {
    let cfg = SimConfig::homogeneous(2, 2).with_trace(true);
    let jobs = vec![map_job("a", 0, 3, 7.0), map_job("b", 2, 2, 5.0)];
    let r = Simulation::new(cfg, jobs).unwrap().run(&mut fcfs_task_order()).unwrap();
    let trace = r.trace.unwrap();
    let csv = trace.to_csv();
    // header + 2 arrivals + 5 starts + 5 finishes + 2 completes
    assert_eq!(csv.lines().count(), 1 + 2 + 5 + 5 + 2);
    assert_eq!(trace.for_job(rush_sim::JobId(0)).count(), 3 + 3 + 2);
}

#[test]
fn interference_and_failures_compose() {
    let cfg = SimConfig::homogeneous(2, 4)
        .with_interference(Interference::Straggler { p: 0.2, slowdown: 3.0 })
        .with_failures(FailureModel::Bernoulli { p: 0.1 })
        .with_seed(9);
    let jobs: Vec<JobSpec> = (0..4).map(|i| map_job(&format!("j{i}"), i * 5, 10, 12.0)).collect();
    let r = Simulation::new(cfg, jobs).unwrap().run(&mut fcfs_task_order()).unwrap();
    assert_eq!(r.outcomes.len(), 4);
    assert_eq!(r.assignments, 40 + r.failed_attempts);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine invariants hold for arbitrary small workloads: all jobs
    /// finish, finishes are causal, assignments account for every attempt,
    /// and makespan equals the last finish.
    #[test]
    fn engine_invariants(
        specs in prop::collection::vec((0u64..100, 1usize..8, 1.0f64..30.0), 1..8),
        containers in 1u32..8,
        fail_p in 0.0f64..0.3,
        seed in 0u64..1000,
    ) {
        let jobs: Vec<JobSpec> = specs
            .iter()
            .enumerate()
            .map(|(i, &(arrival, maps, runtime))| {
                map_job(&format!("j{i}"), arrival, maps, runtime)
            })
            .collect();
        let total_tasks: u64 = specs.iter().map(|&(_, m, _)| m as u64).sum();
        let cfg = SimConfig::homogeneous(1, containers)
            .with_interference(Interference::LogNormal { cv: 0.3 })
            .with_failures(FailureModel::Bernoulli { p: fail_p })
            .with_seed(seed);
        let r = Simulation::new(cfg, jobs).unwrap().run(&mut fcfs_task_order()).unwrap();
        prop_assert_eq!(r.outcomes.len(), specs.len());
        prop_assert_eq!(r.assignments, total_tasks + r.failed_attempts);
        let mut max_finish = 0;
        for o in &r.outcomes {
            prop_assert!(o.finish >= o.arrival);
            prop_assert!(o.runtime >= 1);
            max_finish = max_finish.max(o.finish);
        }
        prop_assert_eq!(r.makespan, max_finish);
        prop_assert_eq!(r.misassignments, 0);
    }

    /// Capacity monotonicity: adding containers never increases makespan
    /// under the FCFS baseline (no interference, no failures).
    #[test]
    fn more_capacity_never_hurts_fcfs(
        specs in prop::collection::vec((0u64..50, 1usize..6, 1.0f64..20.0), 1..6),
        containers in 1u32..6,
    ) {
        let jobs: Vec<JobSpec> = specs
            .iter()
            .enumerate()
            .map(|(i, &(arrival, maps, runtime))| {
                map_job(&format!("j{i}"), arrival, maps, runtime)
            })
            .collect();
        let run = |c: u32| {
            Simulation::new(SimConfig::homogeneous(1, c), jobs.clone())
                .unwrap()
                .run(&mut fcfs_task_order())
                .unwrap()
                .makespan
        };
        prop_assert!(run(containers + 1) <= run(containers));
    }
}

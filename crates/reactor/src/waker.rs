//! Cross-thread wakeup for a parked reactor.
//!
//! An eventfd counter registered in the reactor's poller: any thread
//! holding a clone of the [`Waker`] (the planner reply path, a shutdown
//! signal) can make the reactor's `epoll_wait` return immediately by
//! bumping the counter. Wakes coalesce — a thousand `wake()` calls before
//! the reactor runs cost one readable event and one `drain()`.

use crate::sys;
use std::io;

/// A cross-thread wakeup handle backed by an eventfd.
///
/// Shared across threads behind an `Arc`; `wake` takes `&self`.
#[derive(Debug)]
pub struct Waker {
    fd: sys::OwnedFd,
}

impl Waker {
    /// Creates a new waker with its counter at zero.
    ///
    /// # Errors
    ///
    /// Propagates `eventfd` failure (or `Unsupported` off-Linux).
    pub fn new() -> io::Result<Waker> {
        Ok(Waker { fd: sys::eventfd_create()? })
    }

    /// The descriptor to register (read interest) in the reactor's poller.
    pub fn fd(&self) -> sys::Fd {
        self.fd.raw()
    }

    /// Makes the reactor's next (or current) `wait` return immediately.
    ///
    /// # Errors
    ///
    /// Propagates write failure; an already-pending wake (`WouldBlock` on
    /// a saturated counter) is success — the reactor is waking anyway.
    pub fn wake(&self) -> io::Result<()> {
        match sys::eventfd_write(self.fd.raw(), 1) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Resets the counter after a wakeup so level-triggered polling stops
    /// reporting it. Returns the number of coalesced wakes (0 when the
    /// counter was already clear).
    pub fn drain(&self) -> u64 {
        sys::eventfd_read(self.fd.raw()).unwrap_or_default()
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::poller::{Interest, Poller};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wake_from_another_thread_interrupts_a_blocking_wait() {
        let waker = Arc::new(Waker::new().expect("waker"));
        let mut poller = Poller::with_capacity(4).expect("poller");
        poller.register(waker.fd(), 0, Interest::READ).expect("register");

        let remote = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake().expect("wake");
        });

        let events = poller.wait(Some(Duration::from_secs(10))).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 0);
        t.join().expect("join");

        assert_eq!(waker.drain(), 1);
        // Drained: the poller goes quiet again.
        assert!(poller.wait(Some(Duration::from_millis(0))).expect("wait").is_empty());
    }

    #[test]
    fn wakes_coalesce() {
        let waker = Waker::new().expect("waker");
        for _ in 0..1000 {
            waker.wake().expect("wake");
        }
        assert_eq!(waker.drain(), 1000);
        assert_eq!(waker.drain(), 0);
    }
}

//! # rush-reactor — nonblocking event-loop primitives
//!
//! A from-scratch, dependency-free reactor substrate for the RUSH serving
//! layer, built the same way the workspace's `rand`/`proptest`/`criterion`
//! stand-ins were: the minimal API subset the repo needs, implemented
//! against raw syscalls instead of a registry crate.
//!
//! Four pieces, composable into an event loop:
//!
//! * [`sys`] — the only `unsafe` in the workspace: a thin FFI binding for
//!   `epoll_create1` / `epoll_ctl` / `epoll_wait` / `eventfd` plus
//!   `read`/`write`/`close` on those descriptors. Non-Linux targets get
//!   stubs returning [`std::io::ErrorKind::Unsupported`].
//! * [`Poller`] — one epoll instance: level-triggered registration of
//!   descriptors under integer tokens, `wait` with an optional timeout.
//! * [`Waker`] — an eventfd registered in the poller; any thread can make
//!   a parked reactor return from `wait` (wakes coalesce).
//! * [`TimerWheel`] — lazy-deletion deadline heap; the reactor derives its
//!   poll timeout from `next_deadline`, so timers (epoch ticks,
//!   slow-reader eviction) fire even when every connection is idle.
//! * [`ReadBuf`] / [`WriteBuf`] — per-connection byte queues with
//!   occupancy accounting for backpressure decisions.
//!
//! The crate deliberately stops below the protocol layer: it knows nothing
//! about frames, codecs, or the planner. `rush-serve` composes these
//! primitives into its `--frontend reactor` connection state machines.
//!
//! # Example
//!
//! ```no_run
//! use rush_reactor::{Interest, Poller, TimerWheel, Waker};
//! use std::time::{Duration, Instant};
//!
//! let mut poller = Poller::new()?;
//! let waker = Waker::new()?;
//! poller.register(waker.fd(), 0, Interest::READ)?;
//! let mut timers = TimerWheel::new();
//! timers.schedule(Instant::now() + Duration::from_millis(25), 1);
//!
//! let timeout = timers.next_deadline().map(|d| d.saturating_duration_since(Instant::now()));
//! for event in poller.wait(timeout)? {
//!     if event.token == 0 {
//!         waker.drain();
//!     }
//! }
//! for token in timers.expired(Instant::now()) {
//!     assert_eq!(token, 1); // epoch tick due
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod poller;
pub mod sys;
pub mod timer;
pub mod waker;

pub use buffer::{ReadBuf, ReadOutcome, WriteBuf, WriteOutcome};
pub use poller::{Event, Interest, Poller};
pub use timer::{TimerId, TimerWheel};
pub use waker::Waker;

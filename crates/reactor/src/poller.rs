//! The readiness poller: a safe wrapper over one epoll instance.
//!
//! Registration is level-triggered — a descriptor with unread input (or
//! writable buffer space, when write interest is armed) is reported on
//! every [`Poller::wait`] until the condition clears. Level triggering
//! keeps the per-connection state machines simple: they never have to
//! drain a descriptor to "re-arm" it, they just do as much work as their
//! backpressure budget allows and get called again.

use crate::sys;
use std::io;
use std::time::Duration;

/// Which readiness conditions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Report when the descriptor has bytes to read (or a pending accept).
    pub readable: bool,
    /// Report when the descriptor can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Read + write interest.
    pub const BOTH: Interest = Interest { readable: true, writable: true };

    fn mask(self) -> u32 {
        let mut m = sys::EVENT_RDHUP;
        if self.readable {
            m |= sys::EVENT_READ;
        }
        if self.writable {
            m |= sys::EVENT_WRITE;
        }
        m
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable (includes pending accepts).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The peer hung up or an error condition is pending; the connection
    /// state machine should read to EOF and close.
    pub closed: bool,
}

/// A safe wrapper over one epoll instance plus its event buffer.
#[derive(Debug)]
pub struct Poller {
    ep: sys::OwnedFd,
    raw: Vec<sys::RawEvent>,
    events: Vec<Event>,
}

impl Poller {
    /// Creates a poller able to report up to `capacity` events per wait.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (or `Unsupported` off-Linux).
    pub fn with_capacity(capacity: usize) -> io::Result<Poller> {
        let cap = capacity.clamp(1, 4096);
        Ok(Poller {
            ep: sys::epoll_create()?,
            raw: vec![sys::RawEvent::default(); cap],
            events: Vec::with_capacity(cap),
        })
    }

    /// Creates a poller with a default event buffer (1024 events/wait).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (or `Unsupported` off-Linux).
    pub fn new() -> io::Result<Poller> {
        Poller::with_capacity(1024)
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd is already registered).
    pub fn register(&self, fd: sys::Fd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_add(self.ep.raw(), fd, interest.mask(), token)
    }

    /// Replaces the interest set of a registered `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd was never registered).
    pub fn reregister(&self, fd: sys::Fd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_modify(self.ep.raw(), fd, interest.mask(), token)
    }

    /// Removes `fd` from the poller. Safe to call for descriptors that are
    /// about to be closed; errors are returned but typically ignorable.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn deregister(&self, fd: sys::Fd) -> io::Result<()> {
        sys::epoll_delete(self.ep.raw(), fd)
    }

    /// Waits until at least one registered descriptor is ready or the
    /// timeout elapses (`None` blocks indefinitely), then returns the
    /// batch of readiness events. An empty slice means the wait timed out.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure; `EINTR` is retried internally.
    pub fn wait(&mut self, timeout: Option<Duration>) -> io::Result<&[Event]> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 0.5 ms deadline does not spin at timeout 0.
            Some(d) => d.as_millis().saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        let n = loop {
            match sys::epoll_wait(self.ep.raw(), &mut self.raw, timeout_ms) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        self.events.clear();
        for ev in self.raw.iter().take(n) {
            let bits = { ev.events };
            self.events.push(Event {
                token: { ev.data },
                readable: bits & sys::EVENT_READ != 0,
                writable: bits & sys::EVENT_WRITE != 0,
                closed: bits & (sys::EVENT_ERROR | sys::EVENT_HANGUP | sys::EVENT_RDHUP) != 0,
            });
        }
        Ok(&self.events)
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    #[test]
    fn level_triggered_read_readiness() {
        let (mut a, b) = tcp_pair();
        b.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::with_capacity(8).expect("poller");
        poller.register(b.as_raw_fd(), 7, Interest::READ).expect("register");

        // Idle: times out with no events.
        assert!(poller.wait(Some(Duration::from_millis(0))).expect("wait").is_empty());

        a.write_all(b"ping").expect("write");
        let events = poller.wait(Some(Duration::from_millis(1000))).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data keeps reporting.
        let events = poller.wait(Some(Duration::from_millis(1000))).expect("wait");
        assert_eq!(events.len(), 1, "unread bytes must re-report");

        // Draining the socket clears readiness.
        let mut sink = [0u8; 16];
        let mut b2 = &b;
        let n = b2.read(&mut sink).expect("read");
        assert_eq!(n, 4);
        assert!(poller.wait(Some(Duration::from_millis(0))).expect("wait").is_empty());
    }

    #[test]
    fn interest_can_be_switched_and_removed() {
        let (mut a, b) = tcp_pair();
        b.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::with_capacity(8).expect("poller");
        // Write interest on an idle socket reports writable immediately.
        poller.register(b.as_raw_fd(), 1, Interest::WRITE).expect("register");
        let events = poller.wait(Some(Duration::from_millis(1000))).expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Switch to read-only: writability stops reporting.
        poller.reregister(b.as_raw_fd(), 1, Interest::READ).expect("reregister");
        assert!(poller.wait(Some(Duration::from_millis(0))).expect("wait").is_empty());

        // Deregistered descriptors never report.
        a.write_all(b"x").expect("write");
        poller.deregister(b.as_raw_fd()).expect("deregister");
        assert!(poller.wait(Some(Duration::from_millis(10))).expect("wait").is_empty());
    }

    #[test]
    fn hangup_is_reported_as_closed() {
        let (a, b) = tcp_pair();
        b.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::with_capacity(8).expect("poller");
        poller.register(b.as_raw_fd(), 9, Interest::READ).expect("register");
        drop(a);
        let events = poller.wait(Some(Duration::from_millis(1000))).expect("wait");
        assert!(events.iter().any(|e| e.token == 9 && e.closed));
    }
}

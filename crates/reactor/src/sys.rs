//! The syscall shim: the one module in the workspace that contains
//! `unsafe` code.
//!
//! The build container has no cargo-registry access, so — exactly like the
//! in-workspace `rand`/`proptest`/`criterion` stand-ins — this is a
//! libc-crate-free FFI binding covering the five calls the reactor needs:
//! `epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`, and
//! `read`/`write`/`close` on the resulting descriptors. Every raw call is
//! wrapped in a safe function that translates `-1` into
//! [`std::io::Error::last_os_error`], and the only state that crosses the
//! boundary is plain integers and the fixed-layout [`RawEvent`] struct.
//!
//! On non-Linux targets every entry point compiles but returns
//! [`std::io::ErrorKind::Unsupported`], so the workspace still builds
//! there; the serve layer falls back to the thread frontend.

#![allow(unsafe_code)]

use std::io;

/// A raw file descriptor (matches `std::os::unix::io::RawFd` on Unix).
pub type Fd = i32;

/// Readable readiness (`EPOLLIN`).
pub const EVENT_READ: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EVENT_WRITE: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EVENT_ERROR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`) — always reported, never requested.
pub const EVENT_HANGUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EVENT_RDHUP: u32 = 0x2000;

/// One `struct epoll_event`: readiness mask plus the caller's token.
///
/// On x86-64 the kernel ABI packs this struct (no padding between the
/// 32-bit mask and the 64-bit data word); other architectures use natural
/// alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Debug, Clone, Copy, Default)]
pub struct RawEvent {
    /// Readiness bits (`EVENT_*`).
    pub events: u32,
    /// The token registered with the descriptor.
    pub data: u64,
}

/// One `struct epoll_event`: readiness mask plus the caller's token.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct RawEvent {
    /// Readiness bits (`EVENT_*`).
    pub events: u32,
    /// The token registered with the descriptor.
    pub data: u64,
}

/// An owned descriptor: closed on drop.
#[derive(Debug)]
pub struct OwnedFd(Fd);

impl OwnedFd {
    /// The raw descriptor number.
    pub fn raw(&self) -> Fd {
        self.0
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        // Best effort; a failed close on drop has no recovery path.
        let _ = close(self.0);
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{Fd, OwnedFd, RawEvent};
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut RawEvent, maxevents: c_int, timeout: c_int)
            -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn sys_epoll_create() -> io::Result<OwnedFd> {
        // SAFETY: epoll_create1 takes no pointers; a valid flag word is the
        // whole contract.
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(OwnedFd(fd))
    }

    fn ctl(epfd: Fd, op: c_int, fd: Fd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = RawEvent { events, data: token };
        // SAFETY: `ev` is a live, correctly-laid-out epoll_event for the
        // duration of the call; the kernel copies it before returning.
        check(unsafe { epoll_ctl(epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    pub fn sys_epoll_add(epfd: Fd, fd: Fd, events: u32, token: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_ADD, fd, events, token)
    }

    pub fn sys_epoll_modify(epfd: Fd, fd: Fd, events: u32, token: u64) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_MOD, fd, events, token)
    }

    pub fn sys_epoll_delete(epfd: Fd, fd: Fd) -> io::Result<()> {
        ctl(epfd, EPOLL_CTL_DEL, fd, 0, 0)
    }

    pub fn sys_epoll_wait(epfd: Fd, events: &mut [RawEvent], timeout_ms: i32) -> io::Result<usize> {
        let cap = events.len().min(c_int::MAX as usize) as c_int;
        // SAFETY: the out-buffer is valid for `cap` entries and the kernel
        // writes at most that many.
        let n = check(unsafe { epoll_wait(epfd, events.as_mut_ptr(), cap, timeout_ms) })?;
        Ok(n as usize)
    }

    pub fn sys_eventfd() -> io::Result<OwnedFd> {
        // SAFETY: eventfd takes no pointers.
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(OwnedFd(fd))
    }

    pub fn sys_read_u64(fd: Fd) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        // SAFETY: the buffer is valid for 8 bytes, the read count the
        // eventfd contract requires.
        let n = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else if n as usize != buf.len() {
            Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short eventfd read"))
        } else {
            Ok(u64::from_ne_bytes(buf))
        }
    }

    pub fn sys_write_u64(fd: Fd, value: u64) -> io::Result<()> {
        let buf = value.to_ne_bytes();
        // SAFETY: the buffer is valid for 8 bytes for the duration of the
        // call.
        let n = unsafe { write(fd, buf.as_ptr().cast::<c_void>(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn sys_close(fd: Fd) -> io::Result<()> {
        // SAFETY: close takes no pointers; the caller owns the descriptor.
        check(unsafe { close(fd) })?;
        Ok(())
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Fd, OwnedFd, RawEvent};
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "epoll reactor requires linux"))
    }

    pub fn sys_epoll_create() -> io::Result<OwnedFd> {
        unsupported()
    }

    pub fn sys_epoll_add(_epfd: Fd, _fd: Fd, _events: u32, _token: u64) -> io::Result<()> {
        unsupported()
    }

    pub fn sys_epoll_modify(_epfd: Fd, _fd: Fd, _events: u32, _token: u64) -> io::Result<()> {
        unsupported()
    }

    pub fn sys_epoll_delete(_epfd: Fd, _fd: Fd) -> io::Result<()> {
        unsupported()
    }

    pub fn sys_epoll_wait(
        _epfd: Fd,
        _events: &mut [RawEvent],
        _timeout_ms: i32,
    ) -> io::Result<usize> {
        unsupported()
    }

    pub fn sys_eventfd() -> io::Result<OwnedFd> {
        unsupported()
    }

    pub fn sys_read_u64(_fd: Fd) -> io::Result<u64> {
        unsupported()
    }

    pub fn sys_write_u64(_fd: Fd, _value: u64) -> io::Result<()> {
        unsupported()
    }

    pub fn sys_close(_fd: Fd) -> io::Result<()> {
        unsupported()
    }
}

/// Creates an epoll instance (close-on-exec).
pub fn epoll_create() -> io::Result<OwnedFd> {
    imp::sys_epoll_create()
}

/// Registers `fd` with interest `events` under `token`.
pub fn epoll_add(epfd: Fd, fd: Fd, events: u32, token: u64) -> io::Result<()> {
    imp::sys_epoll_add(epfd, fd, events, token)
}

/// Replaces the interest set of an already-registered `fd`.
pub fn epoll_modify(epfd: Fd, fd: Fd, events: u32, token: u64) -> io::Result<()> {
    imp::sys_epoll_modify(epfd, fd, events, token)
}

/// Removes `fd` from the epoll instance.
pub fn epoll_delete(epfd: Fd, fd: Fd) -> io::Result<()> {
    imp::sys_epoll_delete(epfd, fd)
}

/// Waits for readiness; `timeout_ms < 0` blocks indefinitely. Returns the
/// number of events written into `events`.
pub fn epoll_wait(epfd: Fd, events: &mut [RawEvent], timeout_ms: i32) -> io::Result<usize> {
    imp::sys_epoll_wait(epfd, events, timeout_ms)
}

/// Creates a nonblocking close-on-exec eventfd counter at zero.
pub fn eventfd_create() -> io::Result<OwnedFd> {
    imp::sys_eventfd()
}

/// Reads (and thereby resets) an eventfd counter.
pub fn eventfd_read(fd: Fd) -> io::Result<u64> {
    imp::sys_read_u64(fd)
}

/// Adds `value` to an eventfd counter, making it readable.
pub fn eventfd_write(fd: Fd, value: u64) -> io::Result<()> {
    imp::sys_write_u64(fd, value)
}

/// Closes a raw descriptor.
pub fn close(fd: Fd) -> io::Result<()> {
    imp::sys_close(fd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn eventfd_round_trips_a_counter() {
        let efd = eventfd_create().expect("eventfd");
        eventfd_write(efd.raw(), 3).expect("write");
        eventfd_write(efd.raw(), 4).expect("write");
        assert_eq!(eventfd_read(efd.raw()).expect("read"), 7);
        // Drained: a second read reports WouldBlock, not a hang.
        let err = eventfd_read(efd.raw()).expect_err("empty counter");
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_sees_an_armed_eventfd() {
        let ep = epoll_create().expect("epoll");
        let efd = eventfd_create().expect("eventfd");
        epoll_add(ep.raw(), efd.raw(), EVENT_READ, 42).expect("add");

        let mut events = [RawEvent::default(); 4];
        // Nothing armed yet: a zero timeout returns no events.
        assert_eq!(epoll_wait(ep.raw(), &mut events, 0).expect("wait"), 0);

        eventfd_write(efd.raw(), 1).expect("arm");
        let n = epoll_wait(ep.raw(), &mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 42);
        assert_ne!({ ev.events } & EVENT_READ, 0);

        epoll_delete(ep.raw(), efd.raw()).expect("delete");
    }
}

//! The reactor's timer wheel: deadlines that fire even when every
//! connection is idle.
//!
//! A lazy-deletion binary heap (the same idiom as the simulator's
//! completion heap): `unschedule` marks the timer id dead in O(log n) amortized
//! time and the heap entry is discarded when it surfaces. The reactor
//! derives its `epoll_wait` timeout from [`TimerWheel::next_deadline`], so
//! epoch ticks and slow-reader evictions fire on schedule with no traffic
//! at all.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::time::Instant;

/// Identifies a scheduled timer for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerId(u64);

/// Deadline-ordered timers carrying a caller token.
#[derive(Debug, Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    cancelled: BTreeSet<u64>,
    next_id: u64,
}

impl TimerWheel {
    /// Creates an empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel::default()
    }

    /// Schedules `token` to fire at `at`; returns the id for `unschedule`.
    pub fn schedule(&mut self, at: Instant, token: u64) -> TimerId {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.heap.push(Reverse((at, id, token)));
        TimerId(id)
    }

    /// Cancels a scheduled timer. Unscheduling an already-fired (or
    /// unknown) id is a no-op. (Named `unschedule`, not `cancel`, so the
    /// deep lint's name-based call graph cannot confuse it with the
    /// blocking client-side `cancel` RPC.)
    pub fn unschedule(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    /// The earliest live deadline, or `None` when the wheel is empty.
    /// Compacts surfaced cancelled entries as a side effect.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        while let Some(Reverse((at, id, _))) = self.heap.peek().copied() {
            if self.cancelled.remove(&id) {
                self.heap.pop();
                continue;
            }
            return Some(at);
        }
        None
    }

    /// Pops every timer due at or before `now`, in deadline order,
    /// returning their tokens. Cancelled entries are skipped.
    pub fn expired(&mut self, now: Instant) -> Vec<u64> {
        let mut due = Vec::new();
        while let Some(Reverse((at, id, token))) = self.heap.peek().copied() {
            if self.cancelled.remove(&id) {
                self.heap.pop();
                continue;
            }
            if at > now {
                break;
            }
            self.heap.pop();
            due.push(token);
        }
        due
    }

    /// Number of scheduled-and-not-yet-surfaced entries (cancelled timers
    /// count until they surface; this is a capacity signal, not a count of
    /// live timers).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries remain in the heap.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fires_in_deadline_order() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        wheel.schedule(base + Duration::from_millis(30), 3);
        wheel.schedule(base + Duration::from_millis(10), 1);
        wheel.schedule(base + Duration::from_millis(20), 2);

        assert_eq!(wheel.expired(base), Vec::<u64>::new());
        assert_eq!(wheel.expired(base + Duration::from_millis(15)), vec![1]);
        assert_eq!(wheel.expired(base + Duration::from_millis(100)), vec![2, 3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut wheel = TimerWheel::new();
        let at = Instant::now();
        wheel.schedule(at, 10);
        wheel.schedule(at, 20);
        wheel.schedule(at, 30);
        assert_eq!(wheel.expired(at), vec![10, 20, 30]);
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        let keep = wheel.schedule(base + Duration::from_millis(5), 1);
        let kill = wheel.schedule(base + Duration::from_millis(6), 2);
        wheel.unschedule(kill);
        assert_eq!(wheel.expired(base + Duration::from_millis(10)), vec![1]);
        // Cancelling a fired id is a no-op.
        wheel.unschedule(keep);
        assert!(wheel.next_deadline().is_none());
    }

    #[test]
    fn next_deadline_skips_cancelled_heads() {
        let mut wheel = TimerWheel::new();
        let base = Instant::now();
        let head = wheel.schedule(base + Duration::from_millis(1), 1);
        wheel.schedule(base + Duration::from_millis(50), 2);
        wheel.unschedule(head);
        let dl = wheel.next_deadline().expect("one live timer");
        assert!(dl >= base + Duration::from_millis(50));
        assert_eq!(wheel.len(), 1, "cancelled head was compacted");
    }
}

//! Per-connection read/write buffers for nonblocking sockets.
//!
//! [`ReadBuf`] accumulates inbound bytes until the connection's codec can
//! carve a complete frame; [`WriteBuf`] queues outbound frames and flushes
//! as far as the socket allows. Both expose their occupancy so the
//! connection state machine can apply backpressure: stop reading when too
//! many frames are in flight, evict the peer when the write buffer
//! exceeds its hard cap (a slow reader).

use std::io::{self, Read, Write};

/// How much a single `fill` call may pull off one socket before yielding
/// back to the event loop, so one firehose connection cannot starve the
/// rest of the reactor.
const MAX_FILL_PER_CALL: usize = 256 * 1024;

/// Outcome of draining readable bytes from a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// `n` new bytes were appended (the socket may have more pending).
    Read(usize),
    /// The socket had no bytes ready.
    WouldBlock,
    /// The peer closed its write half (EOF).
    Closed,
}

/// An append-only inbound buffer with O(1) amortized front consumption.
#[derive(Debug, Default)]
pub struct ReadBuf {
    buf: Vec<u8>,
    start: usize,
}

impl ReadBuf {
    /// Creates an empty buffer.
    pub fn new() -> ReadBuf {
        ReadBuf::default()
    }

    /// The unconsumed bytes.
    pub fn data(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops `n` bytes from the front (clamped to the available length),
    /// compacting the backing storage once the consumed prefix dominates.
    pub fn consume(&mut self, n: usize) {
        self.start = (self.start + n).min(self.buf.len());
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Reads from `src` until it would block, hits EOF, or the per-call
    /// budget is spent. Retries `EINTR` internally.
    ///
    /// # Errors
    ///
    /// Propagates genuine socket errors (connection reset, etc.).
    pub fn fill(&mut self, src: &mut impl Read) -> io::Result<ReadOutcome> {
        let mut total = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match src.read(&mut chunk) {
                Ok(0) => {
                    return Ok(if total > 0 { ReadOutcome::Read(total) } else { ReadOutcome::Closed })
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    total += n;
                    if total >= MAX_FILL_PER_CALL {
                        return Ok(ReadOutcome::Read(total));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(if total > 0 {
                        ReadOutcome::Read(total)
                    } else {
                        ReadOutcome::WouldBlock
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Outcome of flushing queued bytes to a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Everything queued has been written.
    Flushed,
    /// The socket filled up; bytes remain queued and write interest
    /// should stay armed.
    Partial,
}

/// An outbound byte queue with a write cursor.
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    start: usize,
}

impl WriteBuf {
    /// Creates an empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Queues `bytes` for transmission.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of queued, unwritten bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes as much as the socket accepts. Retries `EINTR` internally.
    ///
    /// # Errors
    ///
    /// Propagates genuine socket errors (broken pipe, reset, etc.).
    pub fn flush_to(&mut self, dst: &mut impl Write) -> io::Result<WriteOutcome> {
        while self.start < self.buf.len() {
            match dst.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "socket accepted 0 bytes"))
                }
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(WriteOutcome::Partial),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(WriteOutcome::Flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_buf_consume_and_compact() {
        let mut rb = ReadBuf::new();
        let mut src: &[u8] = b"hello world";
        assert_eq!(rb.fill(&mut src).expect("fill"), ReadOutcome::Read(11));
        assert_eq!(rb.data(), b"hello world");
        rb.consume(6);
        assert_eq!(rb.data(), b"world");
        rb.consume(5);
        assert!(rb.is_empty());
        // EOF on an empty read reports Closed.
        let mut eof: &[u8] = b"";
        assert_eq!(rb.fill(&mut eof).expect("fill"), ReadOutcome::Closed);
    }

    #[test]
    fn over_consume_is_clamped() {
        let mut rb = ReadBuf::new();
        let mut src: &[u8] = b"abc";
        rb.fill(&mut src).expect("fill");
        rb.consume(100);
        assert!(rb.is_empty());
    }

    struct Trickle {
        accepted: Vec<u8>,
        budget: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.budget);
            self.accepted.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_flushes_across_partial_writes() {
        let mut wb = WriteBuf::new();
        wb.push(b"0123456789");
        let mut sink = Trickle { accepted: Vec::new(), budget: 4 };
        assert_eq!(wb.flush_to(&mut sink).expect("flush"), WriteOutcome::Partial);
        assert_eq!(wb.len(), 6);

        sink.budget = 100;
        assert_eq!(wb.flush_to(&mut sink).expect("flush"), WriteOutcome::Flushed);
        assert!(wb.is_empty());
        assert_eq!(sink.accepted, b"0123456789");

        // More pushes after a full flush start clean.
        wb.push(b"ab");
        assert_eq!(wb.len(), 2);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn buffers_round_trip_over_a_nonblocking_socket() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let mut rb = ReadBuf::new();
        assert_eq!(rb.fill(&mut server).expect("fill"), ReadOutcome::WouldBlock);

        client.write_all(b"frame-1\nframe-2\n").expect("write");
        // Give the loopback a moment to deliver.
        std::thread::sleep(std::time::Duration::from_millis(20));
        match rb.fill(&mut server).expect("fill") {
            ReadOutcome::Read(n) => assert_eq!(n, 16),
            other => unreachable!("expected bytes, got {other:?}"),
        }
        assert_eq!(rb.data(), b"frame-1\nframe-2\n");
    }
}

//! Property tests for the simplex solver: optimality against random
//! feasible points, feasibility of reported optima, and monotonicity.

use proptest::prelude::*;
use rush_lp::{Problem, Relation, Solution};

/// A random bounded LP instance: objective, per-variable upper bounds, and
/// extra `a·x ≤ b` rows.
type LpInstance = (Vec<f64>, Vec<f64>, Vec<(Vec<f64>, f64)>);

/// Random bounded maximization problems: n vars with upper bounds and a
/// few random ≤ constraints (the origin is always feasible).
fn bounded_lp() -> impl Strategy<Value = LpInstance> {
    (1usize..5).prop_flat_map(|n| {
        (
            prop::collection::vec(-5.0f64..5.0, n),
            prop::collection::vec(0.5f64..10.0, n),
            prop::collection::vec((prop::collection::vec(0.0f64..3.0, n), 1.0f64..20.0), 0..4),
        )
    })
}

proptest! {
    /// The reported optimum is feasible and dominates random feasible
    /// points sampled inside the box.
    #[test]
    fn optimum_is_feasible_and_dominant(
        (c, bounds, extra) in bounded_lp(),
        samples in prop::collection::vec(0.0f64..1.0, 64),
    ) {
        let n = c.len();
        let mut p = Problem::maximize(c.clone());
        for (i, &u) in bounds.iter().enumerate() {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            p.constrain(row, Relation::Le, u);
        }
        for (a, b) in &extra {
            p.constrain(a.clone(), Relation::Le, *b);
        }
        let Solution::Optimal { x, objective } = p.solve() else {
            return Err(TestCaseError::fail("bounded feasible LP not optimal"));
        };
        for (i, &u) in bounds.iter().enumerate() {
            prop_assert!(x[i] >= -1e-7 && x[i] <= u + 1e-7);
        }
        for (a, b) in &extra {
            let lhs: f64 = a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum();
            prop_assert!(lhs <= b + 1e-6, "constraint violated: {lhs} > {b}");
        }
        for chunk in samples.chunks(n) {
            if chunk.len() < n {
                break;
            }
            let cand: Vec<f64> = chunk.iter().zip(&bounds).map(|(t, u)| t * u).collect();
            let feasible = extra
                .iter()
                .all(|(a, b)| a.iter().zip(&cand).map(|(ai, xi)| ai * xi).sum::<f64>() <= *b);
            if feasible {
                let val: f64 = c.iter().zip(&cand).map(|(ci, xi)| ci * xi).sum();
                prop_assert!(
                    objective >= val - 1e-6,
                    "random feasible point beats the optimum: {val} > {objective}"
                );
            }
        }
    }

    /// Scaling the objective scales the optimum (positive homogeneity).
    #[test]
    fn objective_scaling((c, bounds, extra) in bounded_lp(), k in 0.1f64..5.0) {
        let n = c.len();
        let build = |coef: Vec<f64>| {
            let mut p = Problem::maximize(coef);
            for (i, &u) in bounds.iter().enumerate() {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                p.constrain(row, Relation::Le, u);
            }
            for (a, b) in &extra {
                p.constrain(a.clone(), Relation::Le, *b);
            }
            p
        };
        let base = build(c.clone()).solve().objective().unwrap();
        let scaled = build(c.iter().map(|v| v * k).collect()).solve().objective().unwrap();
        prop_assert!(
            (scaled - k * base).abs() < 1e-5 * (1.0 + base.abs()),
            "scaling broke: {scaled} vs {}",
            k * base
        );
    }

    /// Tightening every extra constraint never improves the optimum.
    #[test]
    fn monotone_in_rhs((c, bounds, extra) in bounded_lp(), shrink in 0.1f64..0.9) {
        if extra.is_empty() {
            return Ok(());
        }
        let n = c.len();
        let build = |factor: f64| {
            let mut p = Problem::maximize(c.clone());
            for (i, &u) in bounds.iter().enumerate() {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                p.constrain(row, Relation::Le, u);
            }
            for (a, b) in &extra {
                p.constrain(a.clone(), Relation::Le, b * factor);
            }
            p.solve().objective().unwrap()
        };
        let loose = build(1.0);
        let tight = build(shrink);
        prop_assert!(tight <= loose + 1e-6, "tightening improved: {tight} > {loose}");
    }
}

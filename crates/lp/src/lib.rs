//! A small, dependency-free linear-programming solver.
//!
//! The RUSH paper notes (Sec. III-B) that the Time-Aware Scheduling problem
//! "can be transformed and efficiently solved using linear programming
//! techniques (e.g., simplex method)" — the approach of the authors' prior
//! CoRA scheduler — before motivating onion peeling as the faster
//! alternative. This crate provides that reference path: a dense two-phase
//! tableau [`simplex`](Problem::solve) with Bland's anti-cycling rule,
//! adequate for the problem sizes the cross-validation tests need
//! (tens of variables).
//!
//! # Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x ≤ 2`:
//!
//! ```
//! use rush_lp::{Problem, Relation, Solution};
//!
//! let mut p = Problem::maximize(vec![3.0, 2.0]);
//! p.constrain(vec![1.0, 1.0], Relation::Le, 4.0);
//! p.constrain(vec![1.0, 0.0], Relation::Le, 2.0);
//! match p.solve() {
//!     Solution::Optimal { objective, x } => {
//!         assert!((objective - 10.0).abs() < 1e-9); // x=2, y=2
//!         assert!((x[0] - 2.0).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Numerical tolerance for pivoting and feasibility decisions.
const EPS: f64 = 1e-9;

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum Solution {
    /// An optimal solution exists.
    Optimal {
        /// The optimal decision vector.
        x: Vec<f64>,
        /// The optimal objective value (in the *maximization* sense).
        objective: f64,
    },
    /// No point satisfies all constraints.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

impl Solution {
    /// The optimal objective, if any.
    pub fn objective(&self) -> Option<f64> {
        match self {
            Solution::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }
}

/// A linear program over non-negative variables `x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Problem {
    /// Objective coefficients (maximization).
    c: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

impl Problem {
    /// Starts a maximization problem over `c.len()` non-negative variables.
    pub fn maximize(c: Vec<f64>) -> Self {
        Problem { c, rows: Vec::new() }
    }

    /// Starts a minimization problem (internally negated).
    pub fn minimize(c: Vec<f64>) -> Self {
        Problem { c: c.into_iter().map(|v| -v).collect(), rows: Vec::new() }
    }

    /// Adds the constraint `a·x REL b`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len()` differs from the variable count.
    pub fn constrain(&mut self, a: Vec<f64>, rel: Relation, b: f64) -> &mut Self {
        assert_eq!(a.len(), self.c.len(), "constraint arity mismatch");
        self.rows.push((a, rel, b));
        self
    }

    /// Number of decision variables.
    pub fn vars(&self) -> usize {
        self.c.len()
    }

    /// Number of constraints.
    pub fn constraints(&self) -> usize {
        self.rows.len()
    }

    /// Solves with two-phase tableau simplex (Bland's rule).
    pub fn solve(&self) -> Solution {
        Tableau::new(self).solve()
    }
}

/// Dense simplex tableau.
///
/// Layout: columns `[structural | slack/surplus | artificial | rhs]`, one
/// row per constraint plus the objective row last.
struct Tableau {
    /// `rows × cols` matrix; last row is the objective, last column the rhs.
    a: Vec<Vec<f64>>,
    /// Basis variable (column index) per constraint row.
    basis: Vec<usize>,
    n_struct: usize,
    n_slack: usize,
    n_artificial: usize,
    /// Original (maximization) objective, padded to all columns.
    obj: Vec<f64>,
}

impl Tableau {
    fn new(p: &Problem) -> Self {
        let m = p.rows.len();
        let n = p.c.len();
        // Normalize to b ≥ 0.
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = p.rows.clone();
        for (a, rel, b) in &mut rows {
            if *b < 0.0 {
                for v in a.iter_mut() {
                    *v = -*v;
                }
                *b = -*b;
                *rel = match *rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }
        let n_slack = rows.iter().filter(|(_, r, _)| *r != Relation::Eq).count();
        // Artificial variables: for Ge and Eq rows.
        let n_artificial = rows.iter().filter(|(_, r, _)| *r != Relation::Le).count();
        let cols = n + n_slack + n_artificial + 1;
        let mut a = vec![vec![0.0; cols]; m + 1];
        let mut basis = vec![0usize; m];
        let mut slack_i = 0usize;
        let mut art_i = 0usize;
        for (i, (coef, rel, b)) in rows.iter().enumerate() {
            a[i][..n].copy_from_slice(coef);
            a[i][cols - 1] = *b;
            match rel {
                Relation::Le => {
                    a[i][n + slack_i] = 1.0;
                    basis[i] = n + slack_i;
                    slack_i += 1;
                }
                Relation::Ge => {
                    a[i][n + slack_i] = -1.0; // surplus
                    slack_i += 1;
                    a[i][n + n_slack + art_i] = 1.0;
                    basis[i] = n + n_slack + art_i;
                    art_i += 1;
                }
                Relation::Eq => {
                    a[i][n + n_slack + art_i] = 1.0;
                    basis[i] = n + n_slack + art_i;
                    art_i += 1;
                }
            }
        }
        let mut obj = vec![0.0; cols];
        obj[..n].copy_from_slice(&p.c);
        Tableau { a, basis, n_struct: n, n_slack, n_artificial, obj }
    }

    fn cols(&self) -> usize {
        // bound: the tableau always carries at least the objective row
        self.a[0].len()
    }

    fn rows(&self) -> usize {
        self.a.len() - 1
    }

    /// Pivot on (row, col) with full elimination.
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col];
        debug_assert!(piv.abs() > EPS, "pivot too small");
        for v in self.a[row].iter_mut() {
            *v /= piv;
        }
        let pivot_row = self.a[row].clone();
        for (r, arow) in self.a.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = arow[col];
            if factor.abs() > EPS {
                for (v, pv) in arow.iter_mut().zip(pivot_row.iter()) {
                    *v -= factor * pv;
                }
            }
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop on the current objective row (stored in the
    /// last tableau row, in "reduced cost" form where positive entries mean
    /// improvement is possible). Returns false if unbounded.
    fn iterate(&mut self, allowed_cols: usize) -> bool {
        loop {
            let last = self.a.len() - 1;
            // Bland's rule: smallest improving column index.
            let Some(col) =
                (0..allowed_cols).find(|&j| self.a[last][j] > EPS)
            else {
                return true; // optimal
            };
            // Ratio test, Bland tie-break on basis index.
            let rhs_col = self.cols() - 1;
            let mut best: Option<(f64, usize)> = None;
            for r in 0..self.rows() {
                let coef = self.a[r][col];
                if coef > EPS {
                    let ratio = self.a[r][rhs_col] / coef;
                    let better = match best {
                        None => true,
                        Some((bratio, brow)) => {
                            ratio < bratio - EPS
                                || (ratio < bratio + EPS && self.basis[r] < self.basis[brow])
                        }
                    };
                    if better {
                        best = Some((ratio, r));
                    }
                }
            }
            let Some((_, row)) = best else {
                return false; // unbounded
            };
            self.pivot(row, col);
        }
    }

    /// Loads an objective (maximization coefficients per column) into the
    /// last row in reduced-cost form given the current basis.
    fn load_objective(&mut self, coeffs: &[f64]) {
        let cols = self.cols();
        let last = self.a.len() - 1;
        for j in 0..cols {
            self.a[last][j] = if j < coeffs.len() { coeffs[j] } else { 0.0 };
        }
        // Eliminate basis columns from the objective row.
        for r in 0..self.rows() {
            let b = self.basis[r];
            let factor = self.a[last][b];
            if factor.abs() > EPS {
                let brow = self.a[r].clone();
                for (v, bv) in self.a[last].iter_mut().zip(brow.iter()) {
                    *v -= factor * bv;
                }
            }
        }
    }

    fn solve(mut self) -> Solution {
        let n_total = self.n_struct + self.n_slack + self.n_artificial;
        let rhs_col = self.cols() - 1;

        // Phase 1: minimize the sum of artificial variables, i.e. maximize
        // −Σ artificials.
        if self.n_artificial > 0 {
            let mut phase1 = vec![0.0; n_total];
            for v in phase1.iter_mut().skip(self.n_struct + self.n_slack) {
                *v = -1.0;
            }
            self.load_objective(&phase1);
            if !self.iterate(n_total) {
                // Phase 1 objective is bounded by construction.
                // rush-lint: allow(RUSH-L003): structurally impossible branch
                unreachable!("phase-1 cannot be unbounded");
            }
            let last = self.a.len() - 1;
            // Max of −Σ artificials must be ~0 for feasibility.
            if self.a[last][rhs_col].abs() > 1e-7 {
                return Solution::Infeasible;
            }
            // Drive any artificial still in the basis out of it.
            for r in 0..self.rows() {
                if self.basis[r] >= self.n_struct + self.n_slack {
                    if let Some(col) = (0..self.n_struct + self.n_slack)
                        .find(|&j| self.a[r][j].abs() > EPS)
                    {
                        self.pivot(r, col);
                    }
                    // Otherwise the row is all-zero (redundant constraint):
                    // the degenerate artificial stays at value 0, harmless.
                }
            }
        }

        // Phase 2: the real objective, restricted to structural + slack.
        let obj = self.obj.clone();
        self.load_objective(&obj);
        if !self.iterate(self.n_struct + self.n_slack) {
            return Solution::Unbounded;
        }

        let mut x = vec![0.0; self.n_struct];
        for r in 0..self.rows() {
            if self.basis[r] < self.n_struct {
                x[self.basis[r]] = self.a[r][rhs_col];
            }
        }
        let objective = self.obj[..self.n_struct]
            .iter()
            .zip(&x)
            .map(|(c, v)| c * v)
            .sum();
        Solution::Optimal { x, objective }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_opt(s: &Solution, expect: f64) {
        match s {
            Solution::Optimal { objective, .. } => {
                assert!((objective - expect).abs() < 1e-7, "objective {objective} != {expect}")
            }
            other => panic!("expected optimal {expect}, got {other:?}"),
        }
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y; x ≤ 4; 2y ≤ 12; 3x + 2y ≤ 18 → 36 at (2, 6).
        let mut p = Problem::maximize(vec![3.0, 5.0]);
        p.constrain(vec![1.0, 0.0], Relation::Le, 4.0);
        p.constrain(vec![0.0, 2.0], Relation::Le, 12.0);
        p.constrain(vec![3.0, 2.0], Relation::Le, 18.0);
        let s = p.solve();
        assert_opt(&s, 36.0);
        let Solution::Optimal { x, .. } = s else { unreachable!() };
        assert!((x[0] - 2.0).abs() < 1e-7 && (x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn minimization_with_ge() {
        // min x + 2y; x + y ≥ 3; y ≥ 1 → 4 at (2, 1).
        let mut p = Problem::minimize(vec![1.0, 2.0]);
        p.constrain(vec![1.0, 1.0], Relation::Ge, 3.0);
        p.constrain(vec![0.0, 1.0], Relation::Ge, 1.0);
        match p.solve() {
            // objective() is in maximization sense: −4.
            Solution::Optimal { objective, x } => {
                assert!((objective + 4.0).abs() < 1e-7);
                assert!((x[0] - 2.0).abs() < 1e-7);
                assert!((x[1] - 1.0).abs() < 1e-7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_constraints() {
        // max x + y; x + y = 5; x ≤ 3 → 5.
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.constrain(vec![1.0, 1.0], Relation::Eq, 5.0);
        p.constrain(vec![1.0, 0.0], Relation::Le, 3.0);
        assert_opt(&p.solve(), 5.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize(vec![1.0]);
        p.constrain(vec![1.0], Relation::Le, 1.0);
        p.constrain(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(p.solve(), Solution::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.constrain(vec![0.0, 1.0], Relation::Le, 1.0);
        assert_eq!(p.solve(), Solution::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x ≥ −1 written as −x ≤ 1: max −x → 0 at x = 0.
        let mut p = Problem::maximize(vec![-1.0]);
        p.constrain(vec![-1.0], Relation::Le, 1.0);
        assert_opt(&p.solve(), 0.0);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Classic Beale-style degeneracy; Bland's rule must terminate.
        let mut p = Problem::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        p.constrain(vec![0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0);
        p.constrain(vec![0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0);
        p.constrain(vec![0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        assert_opt(&p.solve(), 0.05);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 listed twice (redundant artificial stays degenerate).
        let mut p = Problem::maximize(vec![1.0, 0.0]);
        p.constrain(vec![1.0, 1.0], Relation::Eq, 2.0);
        p.constrain(vec![1.0, 1.0], Relation::Eq, 2.0);
        assert_opt(&p.solve(), 2.0);
    }

    #[test]
    fn transportation_style_feasibility() {
        // Two jobs, two intervals (len 10, cap 2 each): job A needs 15 by
        // interval 1 end, job B needs 5 total — feasible (total 20 = cap).
        // Variables: a1 a2 b1 b2.
        let mut p = Problem::maximize(vec![0.0; 4]);
        p.constrain(vec![1.0, 0.0, 1.0, 0.0], Relation::Le, 20.0); // int 1 cap
        p.constrain(vec![0.0, 1.0, 0.0, 1.0], Relation::Le, 20.0); // int 2 cap
        p.constrain(vec![1.0, 1.0, 0.0, 0.0], Relation::Ge, 15.0); // A total...
        p.constrain(vec![1.0, 0.0, 0.0, 0.0], Relation::Ge, 15.0); // ...by int 1
        p.constrain(vec![0.0, 0.0, 1.0, 1.0], Relation::Ge, 5.0); // B total
        assert!(matches!(p.solve(), Solution::Optimal { .. }));
        // Tighten beyond capacity: infeasible.
        let mut p2 = Problem::maximize(vec![0.0; 4]);
        p2.constrain(vec![1.0, 0.0, 1.0, 0.0], Relation::Le, 20.0);
        p2.constrain(vec![0.0, 1.0, 0.0, 1.0], Relation::Le, 20.0);
        p2.constrain(vec![1.0, 0.0, 0.0, 0.0], Relation::Ge, 15.0);
        p2.constrain(vec![0.0, 0.0, 1.0, 0.0], Relation::Ge, 10.0);
        assert_eq!(p2.solve(), Solution::Infeasible);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Problem::maximize(vec![1.0, 2.0]).constrain(vec![1.0], Relation::Le, 1.0);
    }

    #[test]
    fn accessors() {
        let mut p = Problem::maximize(vec![1.0]);
        p.constrain(vec![1.0], Relation::Le, 1.0);
        assert_eq!(p.vars(), 1);
        assert_eq!(p.constraints(), 1);
        assert_eq!(p.solve().objective(), Some(1.0));
        assert_eq!(Solution::Infeasible.objective(), None);
    }
}

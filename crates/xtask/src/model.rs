//! Workspace-wide semantic model for the deep lint pass.
//!
//! [`WorkspaceModel::build`] parses every scanned file with
//! [`crate::parser`], walks the trees once, and distills exactly the facts
//! the deep rules (RUSH-L009 … RUSH-L012) consume:
//!
//! * a **symbol table** of every function (free, associated, method) with
//!   its defining file, impl type, and test-gating;
//! * per-function **fact lists**: outgoing calls (the edges of the call
//!   graph), potential panic sites, slot/capacity arithmetic sites, and
//!   wildcard match arms over protocol enums;
//! * a per-function **lock dataflow summary**: which guards are held when
//!   other locks are acquired (the global acquisition-order graph) and
//!   which calls happen under a held guard;
//! * per-file metadata: pragma/bound-comment lines, `Enum::Variant` token
//!   pairs (for protocol coverage), enum definitions, and the manifest
//!   facts that scope each rule.
//!
//! Name resolution is deliberately *name-based and over-approximate*: a
//! method call `.foo()` may target any method named `foo` in the
//! workspace, and `Type::foo` targets any `foo` in an impl of a type
//! whose last path segment is `Type`. For reachability analyses an
//! over-approximation is sound: it can only claim *more* code reachable,
//! never less.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Block, EnumDef, Expr, Item, Pat, Stmt};
use crate::lexer::TokKind;
use crate::parser::{parse_file, ParseOutcome};
use crate::rules::{pragma_lines, bound_comment_lines, FileInput, SHIM_NAMES};

/// The target of a call edge, by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `foo(..)` — a free function (or a method called via `self.`-less
    /// path inside an impl, which also resolves associatively).
    Free(String),
    /// `Type::foo(..)` — associated call; `Self` is resolved to the
    /// surrounding impl type by the extractor.
    Assoc(String, String),
    /// `.foo(..)` — a method call on an unknown receiver type.
    Method(String),
}

/// One outgoing call from a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Who is being called.
    pub target: CallTarget,
    /// 1-based line of the call.
    pub line: u32,
}

/// The kind of potential panic at a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` / `assert*!`.
    Macro(String),
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)`.
    Expect,
    /// `base[index]` with a non-range index.
    Index {
        /// The index is an integer literal (bound comments can justify it).
        literal: bool,
    },
}

/// One potential panic site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What could panic.
    pub kind: PanicKind,
    /// 1-based line.
    pub line: u32,
}

/// One unchecked arithmetic site over slot/capacity-named operands.
#[derive(Debug, Clone)]
pub struct ArithSite {
    /// The operator (`+`, `-`, `*`, `+=`, `-=`, `*=`).
    pub op: String,
    /// The offending operand name (e.g. `slots`, `capacity`).
    pub operand: String,
    /// 1-based line of the operator.
    pub line: u32,
}

/// A wildcard arm in a `match` that also names protocol-enum variants.
#[derive(Debug, Clone)]
pub struct WildcardSite {
    /// The protocol enum the match destructures.
    pub enum_name: String,
    /// 1-based line of the `_` arm.
    pub line: u32,
}

/// Lock dataflow summary for one function.
#[derive(Debug, Clone, Default)]
pub struct LockSummary {
    /// `(held, acquired, line)` — `acquired` was taken while `held` was
    /// live. These are the edges of the global acquisition-order graph.
    pub order_pairs: Vec<(String, String, u32)>,
    /// `(held, callee, line)` — a named call made while `held` was live.
    pub held_calls: Vec<(String, String, u32)>,
}

/// One function in the workspace symbol table.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into [`WorkspaceModel::files`].
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Impl self-type for methods/associated functions (`Self` resolved).
    pub self_type: Option<String>,
    /// 1-based line of the definition.
    pub line: u32,
    /// Test-gated (own attribute or any enclosing `#[cfg(test)]` scope).
    pub is_test: bool,
    /// Outgoing call edges.
    pub calls: Vec<CallSite>,
    /// Potential panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Unchecked slot/capacity arithmetic sites.
    pub arith: Vec<ArithSite>,
    /// Wildcard arms over protocol enums.
    pub wildcards: Vec<WildcardSite>,
    /// Lock dataflow summary.
    pub locks: LockSummary,
}

/// Per-file metadata the deep rules need (owned, no borrows).
#[derive(Debug, Default)]
pub struct FileModel {
    /// Path relative to the scan root.
    pub rel_path: String,
    /// Path relative to the owning crate.
    pub crate_rel: String,
    /// Owning crate name.
    pub crate_name: String,
    /// The crate's L009 entry-point function names.
    pub entry_points: Vec<String>,
    /// The crate opts into L010.
    pub arith_hygiene: bool,
    /// The crate's protocol enums (L012).
    pub protocol_enums: Vec<String>,
    /// The crate's protocol surface files (crate-relative, L012).
    pub protocol_surfaces: Vec<String>,
    /// The crate's L013 reactor event-loop roots (`Type::name` or bare).
    pub reactor_loops: Vec<String>,
    /// The crate's L013 panic-free files (crate-relative).
    pub panic_free: Vec<String>,
    /// The crate owns a capacity seam (L014 exempts its mutator calls).
    pub capacity_authority: bool,
    /// Library code (in `src/`, not a bin target).
    pub is_library: bool,
    /// Belongs to a vendored shim crate.
    pub is_shim: bool,
    /// Source lines (for allowlist line matching).
    pub lines: Vec<String>,
    /// Line → allowed rule codes from inline pragmas.
    pub pragmas: BTreeMap<u32, BTreeSet<&'static str>>,
    /// Lines whose comments document a bound.
    pub bound_lines: BTreeSet<u32>,
    /// `Enum::Variant` adjacent ident pairs from the token stream, with
    /// the test-gated ones excluded (L012 coverage evidence).
    pub path_pairs: Vec<(String, String, u32)>,
    /// Non-test enum definitions: name → variants.
    pub enums: Vec<(String, Vec<String>)>,
    /// Structural parse errors in this file.
    pub parse_errors: usize,
    /// Tokens consumed by soft recovery.
    pub recovered: usize,
}

/// The whole-workspace model.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// Per-file metadata, in scan order.
    pub files: Vec<FileModel>,
    /// Every function found, workspace-wide.
    pub fns: Vec<FnInfo>,
}

impl WorkspaceModel {
    /// Parse and distill every file.
    pub fn build(inputs: &[FileInput<'_>]) -> WorkspaceModel {
        let mut model = WorkspaceModel::default();
        for input in inputs {
            let outcome = parse_file(input.lexed);
            model.add_file(input, &outcome);
        }
        model
    }

    /// Add one parsed file to the model.
    pub fn add_file(&mut self, input: &FileInput<'_>, outcome: &ParseOutcome) {
        let file_idx = self.files.len();
        let mut fm = FileModel {
            rel_path: input.rel_path.clone(),
            crate_rel: input.crate_rel.clone(),
            crate_name: input.manifest.name.clone(),
            entry_points: input.manifest.entry_points.clone(),
            arith_hygiene: input.manifest.arith_hygiene,
            protocol_enums: input.manifest.protocol_enums.clone(),
            protocol_surfaces: input.manifest.protocol_surfaces.clone(),
            reactor_loops: input.manifest.reactor_loops.clone(),
            panic_free: input.manifest.panic_free.clone(),
            capacity_authority: input.manifest.capacity_authority,
            is_library: input.is_library(),
            is_shim: SHIM_NAMES.contains(&input.manifest.name.as_str()),
            lines: input.src.lines().map(str::to_string).collect(),
            pragmas: pragma_lines(input),
            bound_lines: bound_comment_lines(input),
            path_pairs: collect_path_pairs(input),
            enums: Vec::new(),
            parse_errors: outcome.errors.len(),
            recovered: outcome.recovered.len(),
        };
        let protocol_enums = fm.protocol_enums.clone();
        let mut fns = Vec::new();
        collect_items(
            &outcome.file.items,
            &Ctx { file: file_idx, self_type: None, in_test: false, protocol_enums: &protocol_enums },
            &mut fns,
            &mut fm.enums,
        );
        self.files.push(fm);
        self.fns.extend(fns);
    }
}

/// Extraction context while walking the item tree.
struct Ctx<'a> {
    file: usize,
    self_type: Option<String>,
    in_test: bool,
    protocol_enums: &'a [String],
}

fn collect_items(
    items: &[Item],
    ctx: &Ctx<'_>,
    fns: &mut Vec<FnInfo>,
    enums: &mut Vec<(String, Vec<String>)>,
) {
    for item in items {
        match item {
            Item::Fn(f) => {
                let mut info = FnInfo {
                    file: ctx.file,
                    name: f.name.clone(),
                    self_type: ctx.self_type.clone(),
                    line: f.line,
                    is_test: ctx.in_test || f.is_test,
                    calls: Vec::new(),
                    panics: Vec::new(),
                    arith: Vec::new(),
                    wildcards: Vec::new(),
                    locks: LockSummary::default(),
                };
                if let Some(body) = &f.body {
                    let mut w = FactWalker {
                        self_type: ctx.self_type.clone(),
                        protocol_enums: ctx.protocol_enums,
                        info: &mut info,
                        held: Vec::new(),
                    };
                    w.walk_block(body);
                    // Nested items inside the body are hoisted as siblings.
                    let nested: Vec<&Item> = body
                        .stmts
                        .iter()
                        .filter_map(|s| match s {
                            Stmt::Item(i) => Some(&**i),
                            _ => None,
                        })
                        .collect();
                    for n in nested {
                        collect_items(
                            std::slice::from_ref(n),
                            &Ctx {
                                file: ctx.file,
                                self_type: ctx.self_type.clone(),
                                in_test: info.is_test,
                                protocol_enums: ctx.protocol_enums,
                            },
                            fns,
                            enums,
                        );
                    }
                }
                fns.push(info);
            }
            Item::Impl(imp) => {
                collect_items(
                    &imp.items,
                    &Ctx {
                        file: ctx.file,
                        self_type: Some(imp.self_type.clone()),
                        in_test: ctx.in_test || imp.is_test,
                        protocol_enums: ctx.protocol_enums,
                    },
                    fns,
                    enums,
                );
            }
            Item::Mod(m) => {
                collect_items(
                    &m.items,
                    &Ctx {
                        file: ctx.file,
                        self_type: None,
                        in_test: ctx.in_test || m.is_test,
                        protocol_enums: ctx.protocol_enums,
                    },
                    fns,
                    enums,
                );
            }
            Item::Enum(e) => {
                if !(ctx.in_test || e.is_test) {
                    record_enum(e, enums);
                }
            }
            Item::Skipped => {}
        }
    }
}

fn record_enum(e: &EnumDef, enums: &mut Vec<(String, Vec<String>)>) {
    enums.push((e.name.clone(), e.variants.clone()));
}

/// Macros that unconditionally (or conditionally) panic at runtime.
/// `debug_assert*` is excluded: it compiles out of release binaries and
/// the shallow lint already polices its use at kernel boundaries.
const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

/// A live lock guard during the dataflow walk.
struct Guard {
    /// Binding name (`g` in `let g = m.lock()`), empty for temporaries.
    binding: String,
    /// The lock's textual identity (receiver path of the acquisition).
    lock: String,
}

struct FactWalker<'a> {
    self_type: Option<String>,
    protocol_enums: &'a [String],
    info: &'a mut FnInfo,
    held: Vec<Guard>,
}

impl FactWalker<'_> {
    fn walk_block(&mut self, block: &Block) {
        let depth = self.held.len();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { name, init, else_block, .. } => {
                    if let Some(init) = init {
                        // walk_expr records the acquisition order pairs;
                        // here we only turn a let-bound acquisition into
                        // a guard that stays held for the rest of scope.
                        self.walk_expr(init);
                        if let Some(lock) = acquisition_of(init) {
                            self.held.push(Guard {
                                binding: name.clone().unwrap_or_default(),
                                lock,
                            });
                        }
                    }
                    if let Some(b) = else_block {
                        self.walk_block(b);
                    }
                }
                Stmt::Expr(e) => {
                    // `drop(g)` releases the guard bound to `g`.
                    if let Expr::Call { callee, args, .. } = e {
                        if let (Expr::Path { segs, .. }, [Expr::Path { segs: arg, .. }]) =
                            (&**callee, args.as_slice())
                        {
                            if segs.last().is_some_and(|s| s == "drop") && arg.len() == 1 {
                                let victim = &arg[0];
                                if let Some(pos) = self
                                    .held
                                    .iter()
                                    .rposition(|g| !g.binding.is_empty() && g.binding == *victim)
                                {
                                    self.walk_expr(e);
                                    self.held.remove(pos);
                                    continue;
                                }
                            }
                        }
                    }
                    self.walk_expr(e);
                    // A statement-level bare acquisition is a temporary:
                    // held only for its own statement, no persistent guard.
                }
                Stmt::Item(_) => {} // hoisted by collect_items
            }
        }
        self.held.truncate(depth); // scope end drops block-local guards
    }

    fn record_acquire(&mut self, lock: &str, line: u32) {
        for g in &self.held {
            self.info
                .locks
                .order_pairs
                .push((g.lock.clone(), lock.to_string(), line));
        }
    }

    fn record_call(&mut self, target: CallTarget, line: u32) {
        let callee_name = match &target {
            CallTarget::Free(n) | CallTarget::Method(n) | CallTarget::Assoc(_, n) => n.clone(),
        };
        for g in &self.held {
            self.info.locks.held_calls.push((g.lock.clone(), callee_name.clone(), line));
        }
        self.info.calls.push(CallSite { target, line });
    }

    fn walk_expr(&mut self, e: &Expr) {
        match e {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown { .. } => {}
            Expr::Call { callee, args, line } => {
                match &**callee {
                    Expr::Path { segs, .. } => match segs.as_slice() {
                        [one] => self.record_call(CallTarget::Free(one.clone()), *line),
                        [.., ty, name] => {
                            let ty = if ty == "Self" {
                                self.self_type.clone().unwrap_or_else(|| ty.clone())
                            } else {
                                ty.clone()
                            };
                            self.record_call(CallTarget::Assoc(ty, name.clone()), *line);
                        }
                        [] => {}
                    },
                    other => self.walk_expr(other),
                }
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::MethodCall { recv, name, args, line } => {
                self.walk_expr(recv);
                match name.as_str() {
                    "unwrap" if args.is_empty() => {
                        // `.lock().unwrap()` is part of the acquisition
                        // idiom, not an independent panic site *and* it
                        // still panics — record the panic regardless.
                        self.info.panics.push(PanicSite { kind: PanicKind::Unwrap, line: *line });
                    }
                    "expect" => {
                        self.info.panics.push(PanicSite { kind: PanicKind::Expect, line: *line });
                    }
                    _ => {}
                }
                self.record_call(CallTarget::Method(name.clone()), *line);
                if is_lock_method(name, args) {
                    // Acquisition visible to the order analysis even when
                    // not let-bound (temporary guard for this statement).
                    let lock = receiver_path(recv);
                    if !lock.is_empty() {
                        self.record_acquire(&lock, *line);
                    }
                }
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::Field { base, .. } => self.walk_expr(base),
            Expr::Index { base, index, line } => {
                self.walk_expr(base);
                self.walk_expr(index);
                if !matches!(&**index, Expr::Range { .. }) {
                    let literal = matches!(&**index, Expr::Lit { is_int: true, .. });
                    self.info.panics.push(PanicSite { kind: PanicKind::Index { literal }, line: *line });
                }
            }
            Expr::Binary { op, lhs, rhs, line } => {
                self.walk_expr(lhs);
                self.walk_expr(rhs);
                if matches!(op.as_str(), "+" | "-" | "*" | "+=" | "-=" | "*=") {
                    for side in [&**lhs, &**rhs] {
                        if let Some(name) = slot_operand_name(side) {
                            self.info.arith.push(ArithSite {
                                op: op.clone(),
                                operand: name,
                                line: *line,
                            });
                        }
                    }
                }
            }
            Expr::Unary { operand, .. } => self.walk_expr(operand),
            Expr::Macro { name, args, line } => {
                if PANIC_MACROS.contains(&name.as_str()) {
                    self.info
                        .panics
                        .push(PanicSite { kind: PanicKind::Macro(name.clone()), line: *line });
                }
                for a in args {
                    self.walk_expr(a);
                }
            }
            Expr::Match { scrutinee, arms, .. } => {
                self.walk_expr(scrutinee);
                // A wildcard arm alongside protocol-enum variant patterns.
                let mut enum_hit: Option<String> = None;
                for arm in arms {
                    if let Pat::Variants(paths) = &arm.pat {
                        for path in paths {
                            if path.len() >= 2 {
                                let ty = &path[path.len() - 2];
                                if self.protocol_enums.iter().any(|e| e == ty) {
                                    enum_hit = Some(ty.clone());
                                }
                            }
                        }
                    }
                }
                for arm in arms {
                    if let (Pat::Wild, Some(en)) = (&arm.pat, &enum_hit) {
                        self.info
                            .wildcards
                            .push(WildcardSite { enum_name: en.clone(), line: arm.line });
                    }
                    self.walk_expr(&arm.body);
                }
            }
            Expr::If { cond, then_block, else_expr, .. } => {
                self.walk_expr(cond);
                self.walk_block(then_block);
                if let Some(e) = else_expr {
                    self.walk_expr(e);
                }
            }
            Expr::While { cond, body, .. } => {
                self.walk_expr(cond);
                self.walk_block(body);
            }
            Expr::ForLoop { iter, body, .. } => {
                self.walk_expr(iter);
                self.walk_block(body);
            }
            Expr::Loop { body, .. } => self.walk_block(body),
            Expr::Closure { body, .. } => self.walk_expr(body),
            Expr::BlockExpr(b) => self.walk_block(b),
            Expr::Jump { value, .. } => {
                if let Some(v) = value {
                    self.walk_expr(v);
                }
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for e in elems {
                    self.walk_expr(e);
                }
            }
            Expr::StructLit { fields, .. } => {
                for f in fields {
                    self.walk_expr(f);
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(lo) = lo {
                    self.walk_expr(lo);
                }
                if let Some(hi) = hi {
                    self.walk_expr(hi);
                }
            }
            Expr::Try { operand, .. } | Expr::Cast { operand, .. } => self.walk_expr(operand),
        }
    }
}

/// Zero-argument `.lock()` / `.read()` / `.write()` — the argument
/// requirement keeps `io::Read::read(&mut buf)` / `Write::write(&buf)`
/// out of the lock analysis.
fn is_lock_method(name: &str, args: &[Expr]) -> bool {
    args.is_empty() && matches!(name, "lock" | "read" | "write")
}

/// The textual identity of a lock from an acquisition's receiver chain:
/// `self.inner.state.lock()` → `self.inner.state`.
fn receiver_path(recv: &Expr) -> String {
    match recv {
        Expr::Path { segs, .. } => segs.join("::"),
        Expr::Field { base, name, .. } => {
            let b = receiver_path(base);
            if b.is_empty() {
                name.clone()
            } else {
                format!("{b}.{name}")
            }
        }
        Expr::MethodCall { recv, name, .. } => {
            // `self.shard(i).lock()` — include the method for identity.
            let b = receiver_path(recv);
            if b.is_empty() {
                format!("{name}()")
            } else {
                format!("{b}.{name}()")
            }
        }
        Expr::Unary { operand, .. } | Expr::Try { operand, .. } | Expr::Cast { operand, .. } => {
            receiver_path(operand)
        }
        _ => String::new(),
    }
}

/// If `e` (an initializer) is a lock acquisition, the lock's identity.
/// Unwraps the usual `m.lock().unwrap()` / `m.lock().expect(..)` /
/// `m.read()?` wrappers around the acquisition itself.
fn acquisition_of(e: &Expr) -> Option<String> {
    match e {
        Expr::MethodCall { recv, name, args, .. } => {
            if is_lock_method(name, args) {
                let path = receiver_path(recv);
                if path.is_empty() {
                    None
                } else {
                    Some(path)
                }
            } else if matches!(name.as_str(), "unwrap" | "expect" | "unwrap_or_else") {
                // `unwrap_or_else(|e| e.into_inner())` is the standard
                // poison-recovery idiom; the guard is still acquired.
                acquisition_of(recv)
            } else {
                None
            }
        }
        Expr::Try { operand, .. } => acquisition_of(operand),
        _ => None,
    }
}

/// The offending operand name for L010: a path or field whose final
/// segment names a slot/capacity quantity. Method-call results and casts
/// are excluded (a computed value is the caller's responsibility).
fn slot_operand_name(e: &Expr) -> Option<String> {
    let name = match e {
        Expr::Path { segs, .. } => segs.last()?.clone(),
        Expr::Field { name, .. } => name.clone(),
        // `*used_slots += eta` mutates the slot quantity through a
        // reference; the deref does not launder the name.
        Expr::Unary { operand, .. } => return slot_operand_name(operand),
        _ => return None,
    };
    let lower = name.to_ascii_lowercase();
    if lower.contains("slot") || lower.contains("capacit") {
        Some(name)
    } else {
        None
    }
}

/// Token-level `Enum::Variant` adjacency pairs outside test code — the
/// evidence L012 uses for variant coverage on protocol surfaces.
fn collect_path_pairs(input: &FileInput<'_>) -> Vec<(String, String, u32)> {
    let toks = &input.lexed.tokens;
    let mask = crate::rules::test_mask(toks);
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(2) {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let (a, sep, b) = (&toks[i], &toks[i + 1], &toks[i + 2]);
        if a.kind == TokKind::Ident
            && sep.is_punct("::")
            && b.kind == TokKind::Ident
            && a.text.chars().next().is_some_and(char::is_uppercase)
            && b.text.chars().next().is_some_and(char::is_uppercase)
        {
            out.push((a.text.clone(), b.text.clone(), b.line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::manifest::Manifest;

    fn build_one(src: &str, manifest: &Manifest) -> WorkspaceModel {
        let lexed = lex(src);
        let input = FileInput {
            rel_path: "crates/x/src/lib.rs".into(),
            crate_rel: "src/lib.rs".into(),
            manifest,
            src,
            lexed: &lexed,
        };
        WorkspaceModel::build(std::slice::from_ref(&input))
    }

    fn manifest() -> Manifest {
        crate::manifest::parse_str(
            "[package]\nname = \"x\"\n[package.metadata.rush-lint]\narith-hygiene = true\n\
             protocol-enums = [\"Request\"]\n",
        )
    }

    #[test]
    fn calls_and_panics_extracted() {
        let m = manifest();
        let model = build_one(
            "pub fn a(v: &[u32]) -> u32 {\n\
                 b();\n\
                 Helper::assoc();\n\
                 let x = v.first().unwrap();\n\
                 v[0] + *x\n\
             }\n\
             fn b() { panic!(\"no\"); }\n",
            &m,
        );
        assert_eq!(model.fns.len(), 2);
        let a = &model.fns[0];
        assert!(a.calls.iter().any(|c| c.target == CallTarget::Free("b".into())));
        assert!(a
            .calls
            .iter()
            .any(|c| c.target == CallTarget::Assoc("Helper".into(), "assoc".into())));
        assert!(a.panics.iter().any(|p| p.kind == PanicKind::Unwrap));
        assert!(a
            .panics
            .iter()
            .any(|p| matches!(p.kind, PanicKind::Index { literal: true })));
        let b = &model.fns[1];
        assert!(b.panics.iter().any(|p| p.kind == PanicKind::Macro("panic".into())));
    }

    #[test]
    fn self_resolved_in_assoc_calls() {
        let m = manifest();
        let model = build_one(
            "struct S;\nimpl S {\n    fn new() -> S { Self::init() }\n    fn init() -> S { S }\n}\n",
            &m,
        );
        let new = model.fns.iter().find(|f| f.name == "new").expect("fn new");
        assert_eq!(new.self_type.as_deref(), Some("S"));
        assert!(new
            .calls
            .iter()
            .any(|c| c.target == CallTarget::Assoc("S".into(), "init".into())));
    }

    #[test]
    fn lock_order_and_held_calls() {
        let m = manifest();
        let model = build_one(
            "fn f(a: &M, b: &M, s: &mut TcpStream) {\n\
                 let ga = a.state.lock().unwrap();\n\
                 let gb = b.other.lock().unwrap();\n\
                 drop(gb);\n\
                 s.write_all(&[1]).unwrap();\n\
                 drop(ga);\n\
                 let gc = b.other.lock().unwrap();\n\
                 let _ = gc;\n\
             }\n",
            &m,
        );
        let f = &model.fns[0];
        assert!(f
            .locks
            .order_pairs
            .iter()
            .any(|(h, a, _)| h == "a.state" && a == "b.other"));
        // write_all happened after drop(gb) but while ga was held.
        assert!(f
            .locks
            .held_calls
            .iter()
            .any(|(h, c, _)| h == "a.state" && c == "write_all"));
        // gc was acquired after ga was dropped: no a.state→b.other pair
        // from that second acquisition (only the first).
        let pairs = f
            .locks
            .order_pairs
            .iter()
            .filter(|(h, a, _)| h == "a.state" && a == "b.other")
            .count();
        assert_eq!(pairs, 1);
    }

    #[test]
    fn arith_and_wildcards() {
        let m = manifest();
        let model = build_one(
            "fn g(slots: u32, used: u32, r: Request) -> u32 {\n\
                 let free = slots - used;\n\
                 match r {\n\
                     Request::Submit => 1,\n\
                     _ => 0,\n\
                 };\n\
                 free\n\
             }\n",
            &m,
        );
        let g = &model.fns[0];
        assert!(g.arith.iter().any(|a| a.op == "-" && a.operand == "slots"));
        assert!(g.wildcards.iter().any(|w| w.enum_name == "Request"));
    }

    #[test]
    fn test_gated_fns_marked() {
        let m = manifest();
        let model = build_one(
            "#[cfg(test)]\nmod tests {\n    fn helper() { panic!(\"t\"); }\n}\n\
             fn live() {}\n",
            &m,
        );
        let helper = model.fns.iter().find(|f| f.name == "helper").expect("helper");
        assert!(helper.is_test);
        let live = model.fns.iter().find(|f| f.name == "live").expect("live");
        assert!(!live.is_test);
    }

    #[test]
    fn enums_and_path_pairs_recorded() {
        let m = manifest();
        let model = build_one(
            "pub enum Request { Submit, Cancel }\n\
             fn h(r: &Request) -> u32 { match r { Request::Submit => 1, Request::Cancel => 2 } }\n",
            &m,
        );
        let fm = &model.files[0];
        assert_eq!(fm.enums, vec![("Request".into(), vec!["Submit".into(), "Cancel".into()])]);
        assert!(fm.path_pairs.iter().any(|(e, v, _)| e == "Request" && v == "Submit"));
        assert!(fm.path_pairs.iter().any(|(e, v, _)| e == "Request" && v == "Cancel"));
    }
}

//! The deep lint pass: RUSH-L009 … RUSH-L014 over the workspace model.
//!
//! Shallow rules look at one token stream at a time; these rules consume
//! the [`crate::model::WorkspaceModel`] — the symbol table, the name-based
//! call graph, the per-function lock dataflow summaries, and the protocol
//! metadata — so they can state *cross-function* properties:
//!
//! * **RUSH-L009** — no panic site reachable from a declared entry point,
//!   proven by BFS over the call graph with a witness path per finding;
//! * **RUSH-L010** — no unchecked slot/capacity arithmetic in the crates
//!   that opt into kernel arithmetic hygiene;
//! * **RUSH-L011** — a globally consistent lock-acquisition order and no
//!   lock held across socket I/O or planner fan-out;
//! * **RUSH-L012** — every protocol-enum variant covered on every declared
//!   protocol surface, and no wildcard arms that would swallow new ones;
//! * **RUSH-L013** — no blocking primitive reachable from a declared
//!   reactor event loop, and declared codec files panic-free;
//! * **RUSH-L014** — cluster capacity mutated only by the crates that
//!   declare `capacity-authority` (the planner event path, the sim
//!   engine); everyone else routes through `PlannerEvent::CapacityChange`.
//!
//! Suppression matches the shallow engine: inline
//! `// rush-lint: allow(CODE)` pragmas (own line + next line) and the
//! checked-in `xtask-lint.allow` allowlist. L009 additionally honors
//! RUSH-L003 escapes — both rules police panic hygiene, and a site a
//! human already justified for L003 needs no second justification.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::model::{CallTarget, FnInfo, PanicKind, WorkspaceModel};
use crate::report::{Finding, Report, Rule};
use crate::rules::Allowlist;

/// Socket/stream calls that must not run under a lock (blocking I/O).
const IO_METHODS: &[&str] = &[
    "write_all", "write_fmt", "flush", "read_line", "read_exact", "read_to_end",
    "read_to_string", "recv", "recv_timeout", "accept", "connect",
];

/// Planner fan-out entry points that must not run under a lock: they
/// dispatch to per-shard planner threads and block on the slowest shard.
const FANOUT_FNS: &[&str] = &["plan_at", "plan_roster"];

/// Blocking primitives that must be unreachable from a reactor event
/// loop (RUSH-L013). Deliberately narrower than [`IO_METHODS`]: `send`
/// on an unbounded channel, `accept`/`read`/`write` on a nonblocking fd
/// and `epoll_wait` with a timeout are the loop's bread and butter.
const BLOCKING_FNS: &[&str] = &[
    "sleep", "recv", "recv_timeout", "join", "park", "park_timeout", "write_all",
    "write_fmt", "read_exact", "read_line", "read_to_end", "read_to_string",
];

/// Capacity mutators fenced by RUSH-L014: the planner resize entry point
/// and the simulator free-pool revocation pair. Only crates declaring
/// `capacity-authority = true` may call them from library code.
const CAPACITY_MUTATORS: &[&str] = &["set_capacity", "revoke", "restore"];

/// Run the deep rules, appending suppressed-aware findings to `report`.
pub fn check(model: &WorkspaceModel, allow: &Allowlist, report: &mut Report) {
    let mut pending: Vec<Finding> = Vec::new();
    check_panic_reachability(model, &mut pending);
    check_arith_hygiene(model, &mut pending);
    check_lock_discipline(model, &mut pending);
    check_protocol_exhaustiveness(model, &mut pending);
    check_reactor_discipline(model, &mut pending);
    check_capacity_fence(model, &mut pending);

    // Suppression: pragmas (own line + previous line) and allowlist.
    // RUSH-L009 shares RUSH-L003's escape hatch (both are panic hygiene).
    for finding in pending {
        let codes: &[&str] = match finding.rule {
            Rule::PanicReachability => &["RUSH-L009", "RUSH-L003"],
            Rule::ArithHygiene => &["RUSH-L010"],
            Rule::LockDiscipline => &["RUSH-L011"],
            Rule::ReactorDiscipline => &["RUSH-L013"],
            Rule::CapacityFence => &["RUSH-L014"],
            _ => &["RUSH-L012"],
        };
        let fm = model.files.iter().find(|f| f.rel_path == finding.file);
        let mut suppressed = false;
        if let Some(fm) = fm {
            let pragma_hit = [finding.line, finding.line.saturating_sub(1)].iter().any(|l| {
                fm.pragmas
                    .get(l)
                    .is_some_and(|set| codes.iter().any(|c| set.contains(c)))
            });
            let line_text = fm
                .lines
                .get(finding.line.saturating_sub(1) as usize)
                .map(String::as_str)
                .unwrap_or("");
            suppressed = pragma_hit
                || codes.iter().any(|c| allow.covers(c, &finding.file, line_text));
        }
        if suppressed {
            report.suppressed += 1;
        } else {
            report.findings.push(finding);
        }
    }
}

/// Index of every resolvable callee name → function indices. Targets are
/// restricted to *live* code: non-test functions in non-shim library
/// files (test helpers and vendored shims are not linked into the
/// daemon, and a binary's `main` is not callable).
struct CallIndex {
    free: BTreeMap<String, Vec<usize>>,
    assoc: BTreeMap<(String, String), Vec<usize>>,
    methods: BTreeMap<String, Vec<usize>>,
}

impl CallIndex {
    fn build(model: &WorkspaceModel) -> CallIndex {
        let mut idx = CallIndex {
            free: BTreeMap::new(),
            assoc: BTreeMap::new(),
            methods: BTreeMap::new(),
        };
        for (i, f) in model.fns.iter().enumerate() {
            if !fn_is_live(model, f) {
                continue;
            }
            match &f.self_type {
                None => idx.free.entry(f.name.clone()).or_default().push(i),
                Some(ty) => {
                    idx.assoc.entry((ty.clone(), f.name.clone())).or_default().push(i);
                    idx.methods.entry(f.name.clone()).or_default().push(i);
                }
            }
        }
        idx
    }

    fn resolve(&self, target: &CallTarget) -> &[usize] {
        match target {
            CallTarget::Free(n) => self.free.get(n).map_or(&[], Vec::as_slice),
            CallTarget::Assoc(ty, n) => self
                .assoc
                .get(&(ty.clone(), n.clone()))
                .map_or(&[], Vec::as_slice),
            CallTarget::Method(n) => self.methods.get(n).map_or(&[], Vec::as_slice),
        }
    }
}

/// Live code for reachability purposes: non-test library code outside the
/// vendored shims.
fn fn_is_live(model: &WorkspaceModel, f: &FnInfo) -> bool {
    let fm = &model.files[f.file];
    !f.is_test && fm.is_library && !fm.is_shim
}

// ---- RUSH-L009: panic reachability -------------------------------------

fn check_panic_reachability(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    let idx = CallIndex::build(model);

    // Roots: functions named in their crate's `entry-points` metadata.
    let mut roots: Vec<usize> = model
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test && model.files[f.file].entry_points.iter().any(|e| e == &f.name)
        })
        .map(|(i, _)| i)
        .collect();
    roots.sort_unstable();
    if roots.is_empty() {
        return;
    }

    // BFS with parent pointers for witness paths.
    let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in &roots {
        if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
            e.insert(None);
            queue.push_back(r);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for call in &model.fns[cur].calls {
            for &next in idx.resolve(&call.target) {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some(cur));
                    queue.push_back(next);
                }
            }
        }
    }

    for &fi in parent.keys() {
        let f = &model.fns[fi];
        if !fn_is_live(model, f) {
            continue;
        }
        let fm = &model.files[f.file];
        let path = witness_path(model, &parent, fi);
        for p in &f.panics {
            let what = match &p.kind {
                PanicKind::Macro(m) => format!("`{m}!`"),
                PanicKind::Unwrap => "`.unwrap()`".to_string(),
                PanicKind::Expect => "`.expect(..)`".to_string(),
                PanicKind::Index { literal } => {
                    // Bare indexing is only policed inside crates that
                    // declare entry points — the daemon's own code, where
                    // a slip drops a connection. Literal indexes carry a
                    // documented bound like the shallow rule.
                    if fm.entry_points.is_empty() {
                        continue;
                    }
                    if *literal
                        && (fm.bound_lines.contains(&p.line)
                            || fm.bound_lines.contains(&p.line.saturating_sub(1)))
                    {
                        continue;
                    }
                    "`[]` indexing".to_string()
                }
            };
            out.push(Finding {
                rule: Rule::PanicReachability,
                file: fm.rel_path.clone(),
                line: p.line,
                message: format!("{what} in `{}`, reachable via {path}", f.name),
            });
        }
    }
}

/// Reconstruct `root → ... → target` as a readable arrow chain.
fn witness_path(
    model: &WorkspaceModel,
    parent: &BTreeMap<usize, Option<usize>>,
    target: usize,
) -> String {
    let mut chain = vec![target];
    let mut cur = target;
    while let Some(Some(p)) = parent.get(&cur) {
        chain.push(*p);
        cur = *p;
        if chain.len() > 32 {
            break; // cycles cannot happen with parent pointers, but stay safe
        }
    }
    chain.reverse();
    let names: Vec<&str> = chain.iter().map(|&i| model.fns[i].name.as_str()).collect();
    if names.len() <= 6 {
        names.join(" -> ")
    } else {
        format!(
            "{} -> ... -> {}",
            names[..3].join(" -> "),
            names[names.len() - 2..].join(" -> ")
        )
    }
}

// ---- RUSH-L010: slot/capacity arithmetic hygiene -----------------------

fn check_arith_hygiene(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    for f in &model.fns {
        let fm = &model.files[f.file];
        if f.is_test || !fm.arith_hygiene || !fm.is_library || fm.is_shim {
            continue;
        }
        for a in &f.arith {
            out.push(Finding {
                rule: Rule::ArithHygiene,
                file: fm.rel_path.clone(),
                line: a.line,
                message: format!(
                    "unchecked `{}` on `{}` in `{}` — use checked_/saturating_ arithmetic",
                    a.op, a.operand, f.name
                ),
            });
        }
    }
}

// ---- RUSH-L011: lock discipline ----------------------------------------

fn check_lock_discipline(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    // Global acquisition-order graph: lock -> lock, with one witness site.
    let mut edges: BTreeMap<(String, String), (String, u32, String)> = BTreeMap::new();
    for f in &model.fns {
        let fm = &model.files[f.file];
        if f.is_test || fm.is_shim || !fm.is_library {
            continue;
        }
        for (held, acq, line) in &f.locks.order_pairs {
            if held == acq {
                out.push(Finding {
                    rule: Rule::LockDiscipline,
                    file: fm.rel_path.clone(),
                    line: *line,
                    message: format!(
                        "lock `{held}` re-acquired while already held in `{}` (self-deadlock)",
                        f.name
                    ),
                });
                continue;
            }
            edges
                .entry((held.clone(), acq.clone()))
                .or_insert_with(|| (fm.rel_path.clone(), *line, f.name.clone()));
        }
        for (held, callee, line) in &f.locks.held_calls {
            let io = IO_METHODS.contains(&callee.as_str());
            let fanout = FANOUT_FNS.contains(&callee.as_str());
            if io || fanout {
                out.push(Finding {
                    rule: Rule::LockDiscipline,
                    file: fm.rel_path.clone(),
                    line: *line,
                    message: format!(
                        "lock `{held}` held across {} `{callee}` in `{}`",
                        if io { "blocking I/O" } else { "planner fan-out" },
                        f.name
                    ),
                });
            }
        }
    }

    // Cycle detection over the order graph (DFS, deterministic order).
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    for &start in &nodes {
        if state.contains_key(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        state.insert(start, 1);
        while let Some((node, i)) = stack.pop() {
            let nexts = adj.get(node).map_or(&[][..], Vec::as_slice);
            if i < nexts.len() {
                stack.push((node, i + 1));
                let next = nexts[i];
                match state.get(next) {
                    Some(1) => {
                        // Back edge `node -> next` closes a cycle. Report
                        // at the witness for this edge, citing the reverse
                        // path's witness.
                        let (file, line, in_fn) = &edges[&(node.to_string(), next.to_string())];
                        let reverse = edges
                            .iter()
                            .find(|((a, b), _)| a == next && b == node)
                            .map(|(_, (rf, rl, _))| format!("{rf}:{rl}"))
                            .unwrap_or_else(|| "another path".to_string());
                        out.push(Finding {
                            rule: Rule::LockDiscipline,
                            file: file.clone(),
                            line: *line,
                            message: format!(
                                "inconsistent lock order in `{in_fn}`: `{node}` taken before `{next}` here, but the opposite order exists ({reverse})"
                            ),
                        });
                    }
                    Some(_) => {}
                    None => {
                        state.insert(next, 1);
                        stack.push((next, 0));
                    }
                }
            } else {
                state.insert(node, 2);
            }
        }
    }
}

// ---- RUSH-L012: protocol exhaustiveness --------------------------------

fn check_protocol_exhaustiveness(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    // Group files by crate; only crates declaring both enums and surfaces
    // participate.
    let mut crates: BTreeSet<&str> = BTreeSet::new();
    for fm in &model.files {
        if !fm.protocol_enums.is_empty() && !fm.protocol_surfaces.is_empty() {
            crates.insert(fm.crate_name.as_str());
        }
    }
    for krate in crates {
        let files: Vec<usize> = (0..model.files.len())
            .filter(|&i| model.files[i].crate_name == krate)
            .collect();
        let meta = &model.files[files[0]];
        let enums = meta.protocol_enums.clone();
        let surfaces = meta.protocol_surfaces.clone();
        // Crate root as a root-relative prefix (rel_path ends with crate_rel).
        let crate_prefix = meta
            .rel_path
            .strip_suffix(&meta.crate_rel)
            .unwrap_or("")
            .to_string();

        // Variant lists from the crate's own enum definitions.
        let mut variants: BTreeMap<&str, &[String]> = BTreeMap::new();
        for &fi in &files {
            for (name, vs) in &model.files[fi].enums {
                if enums.iter().any(|e| e == name) {
                    variants.entry(name.as_str()).or_insert(vs.as_slice());
                }
            }
        }
        for e in &enums {
            if !variants.contains_key(e.as_str()) {
                out.push(Finding {
                    rule: Rule::ProtocolExhaustiveness,
                    file: format!("{crate_prefix}Cargo.toml"),
                    line: 1,
                    message: format!(
                        "protocol enum `{e}` declared in rush-lint metadata but not defined in `{krate}`"
                    ),
                });
            }
        }

        for surface in &surfaces {
            let Some(&fi) = files.iter().find(|&&i| model.files[i].crate_rel == *surface)
            else {
                out.push(Finding {
                    rule: Rule::ProtocolExhaustiveness,
                    file: format!("{crate_prefix}{surface}"),
                    line: 1,
                    message: format!(
                        "declared protocol surface `{surface}` not found in `{krate}`"
                    ),
                });
                continue;
            };
            let fm = &model.files[fi];
            // (1) token-level variant coverage.
            for (ename, vs) in &variants {
                for v in vs.iter() {
                    let covered = fm
                        .path_pairs
                        .iter()
                        .any(|(a, b, _)| a == ename && b == v);
                    if !covered {
                        out.push(Finding {
                            rule: Rule::ProtocolExhaustiveness,
                            file: fm.rel_path.clone(),
                            line: 1,
                            message: format!(
                                "`{ename}::{v}` is never handled in protocol surface `{surface}`"
                            ),
                        });
                    }
                }
            }
            // (2) AST-level wildcard fencing.
            for f in model.fns.iter().filter(|f| f.file == fi && !f.is_test) {
                for w in &f.wildcards {
                    out.push(Finding {
                        rule: Rule::ProtocolExhaustiveness,
                        file: fm.rel_path.clone(),
                        line: w.line,
                        message: format!(
                            "wildcard `_` arm in a match over protocol enum `{}` in `{}` — enumerate the variants so new ones fail to compile",
                            w.enum_name, f.name
                        ),
                    });
                }
            }
        }
    }
}

// ---- RUSH-L013: reactor discipline -------------------------------------

/// Does `f` match a `reactor-loops` entry? `Type::name` requires a method
/// of `Type`; a bare name matches any function with that name.
fn matches_loop_entry(f: &FnInfo, entry: &str) -> bool {
    match entry.split_once("::") {
        Some((ty, name)) => f.self_type.as_deref() == Some(ty) && f.name == name,
        None => f.name == entry,
    }
}

fn check_reactor_discipline(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    // (1) Blocking reachability from the declared event loops, on the
    // same over-approximate call graph L009 walks.
    let idx = CallIndex::build(model);
    let roots: Vec<usize> = model
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test
                && model.files[f.file]
                    .reactor_loops
                    .iter()
                    .any(|e| matches_loop_entry(f, e))
        })
        .map(|(i, _)| i)
        .collect();
    if !roots.is_empty() {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &r in &roots {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(None);
                queue.push_back(r);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for call in &model.fns[cur].calls {
                for &next in idx.resolve(&call.target) {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                        e.insert(Some(cur));
                        queue.push_back(next);
                    }
                }
            }
        }
        for &fi in parent.keys() {
            let f = &model.fns[fi];
            if !fn_is_live(model, f) && !roots.contains(&fi) {
                continue;
            }
            let fm = &model.files[f.file];
            for call in &f.calls {
                let callee = match &call.target {
                    CallTarget::Free(n) | CallTarget::Method(n) | CallTarget::Assoc(_, n) => n,
                };
                if BLOCKING_FNS.contains(&callee.as_str()) {
                    let path = witness_path(model, &parent, fi);
                    out.push(Finding {
                        rule: Rule::ReactorDiscipline,
                        file: fm.rel_path.clone(),
                        line: call.line,
                        message: format!(
                            "blocking `{callee}` in `{}`, reachable from a reactor event loop via {path}",
                            f.name
                        ),
                    });
                }
            }
        }
    }

    // (2) Panic freedom of the declared codec files: the wire decoders
    // run on the event loop against attacker-controlled bytes.
    for f in &model.fns {
        let fm = &model.files[f.file];
        if f.is_test || fm.is_shim || !fm.panic_free.iter().any(|p| p == &fm.crate_rel) {
            continue;
        }
        for p in &f.panics {
            let what = match &p.kind {
                PanicKind::Macro(m) => format!("`{m}!`"),
                PanicKind::Unwrap => "`.unwrap()`".to_string(),
                PanicKind::Expect => "`.expect(..)`".to_string(),
                PanicKind::Index { literal } => {
                    if *literal
                        && (fm.bound_lines.contains(&p.line)
                            || fm.bound_lines.contains(&p.line.saturating_sub(1)))
                    {
                        continue;
                    }
                    "`[]` indexing".to_string()
                }
            };
            out.push(Finding {
                rule: Rule::ReactorDiscipline,
                file: fm.rel_path.clone(),
                line: p.line,
                message: format!(
                    "{what} in `{}` of panic-free file `{}` — wire codecs must return errors, never panic",
                    f.name, fm.crate_rel
                ),
            });
        }
    }
}

// ---- RUSH-L014: capacity fence -----------------------------------------

fn check_capacity_fence(model: &WorkspaceModel, out: &mut Vec<Finding>) {
    for f in &model.fns {
        let fm = &model.files[f.file];
        if f.is_test || fm.is_shim || !fm.is_library || fm.capacity_authority {
            continue;
        }
        for call in &f.calls {
            let callee = match &call.target {
                CallTarget::Free(n) | CallTarget::Method(n) | CallTarget::Assoc(_, n) => n,
            };
            if CAPACITY_MUTATORS.contains(&callee.as_str()) {
                out.push(Finding {
                    rule: Rule::CapacityFence,
                    file: fm.rel_path.clone(),
                    line: call.line,
                    message: format!(
                        "capacity mutator `{callee}` called in `{}` of `{}`, which declares no capacity-authority — route the resize through `PlannerEvent::CapacityChange` (or the sim capacity-event queue)",
                        f.name, fm.crate_name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::manifest::Manifest;
    use crate::rules::FileInput;

    fn run(src: &str, manifest_text: &str) -> Report {
        let manifest: Manifest = crate::manifest::parse_str(manifest_text);
        let lexed = lex(src);
        let input = FileInput {
            rel_path: "crates/x/src/lib.rs".into(),
            crate_rel: "src/lib.rs".into(),
            manifest: &manifest,
            src,
            lexed: &lexed,
        };
        let model = WorkspaceModel::build(std::slice::from_ref(&input));
        let allow = Allowlist::parse("");
        let mut report = Report::default();
        check(&model, &allow, &mut report);
        report.finalize();
        report
    }

    const ENTRY_MANIFEST: &str = "[package]\nname = \"x\"\n\
        [package.metadata.rush-lint]\nentry-points = [\"serve_loop\"]\n";

    #[test]
    fn l009_reports_reachable_panic_with_path() {
        let rep = run(
            "pub fn serve_loop() { step(); }\n\
             fn step() { inner(); }\n\
             fn inner(v: Option<u32>) -> u32 { v.unwrap() }\n\
             fn unreached() { panic!(\"not reachable\"); }\n",
            ENTRY_MANIFEST,
        );
        let l9: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PanicReachability)
            .collect();
        assert_eq!(l9.len(), 1, "{:?}", rep.findings);
        assert!(l9[0].message.contains("serve_loop -> step -> inner"));
        assert_eq!(l9[0].line, 3);
    }

    #[test]
    fn l009_honors_l003_pragma() {
        let rep = run(
            "pub fn serve_loop(v: Option<u32>) -> u32 {\n\
                 // rush-lint: allow(RUSH-L003): startup-validated\n\
                 v.unwrap()\n\
             }\n",
            ENTRY_MANIFEST,
        );
        assert!(
            rep.findings.iter().all(|f| f.rule != Rule::PanicReachability),
            "{:?}",
            rep.findings
        );
        assert_eq!(rep.suppressed, 1);
    }

    #[test]
    fn l009_index_needs_entry_point_crate_and_honors_bounds() {
        let rep = run(
            "pub fn serve_loop(v: &[u32]) -> u32 {\n\
                 let a = v[idx()];\n\
                 // bound: probe count checked at construction\n\
                 let b = v[0];\n\
                 a + b\n\
             }\n\
             fn idx() -> usize { 0 }\n",
            ENTRY_MANIFEST,
        );
        let l9: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PanicReachability)
            .collect();
        assert_eq!(l9.len(), 1, "{:?}", rep.findings);
        assert_eq!(l9[0].line, 2);
    }

    #[test]
    fn l010_flags_bare_slot_math() {
        let rep = run(
            "pub fn split(capacity: u64, used: u64) -> u64 { capacity - used }\n\
             pub fn safe(capacity: u64, used: u64) -> u64 { capacity.saturating_sub(used) }\n",
            "[package]\nname = \"x\"\n[package.metadata.rush-lint]\narith-hygiene = true\n",
        );
        let l10: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.rule == Rule::ArithHygiene)
            .collect();
        assert_eq!(l10.len(), 1, "{:?}", rep.findings);
        assert_eq!(l10[0].line, 1);
    }

    #[test]
    fn l011_order_cycle_and_held_io() {
        let rep = run(
            "pub fn ab(s: &S) {\n\
                 let a = s.a.lock().unwrap();\n\
                 let b = s.b.lock().unwrap();\n\
                 let _ = (a, b);\n\
             }\n\
             pub fn ba(s: &S) {\n\
                 let b = s.b.lock().unwrap();\n\
                 let a = s.a.lock().unwrap();\n\
                 let _ = (a, b);\n\
             }\n\
             pub fn io(s: &S, w: &mut W) {\n\
                 let g = s.a.lock().unwrap();\n\
                 w.write_all(&[0]).ok();\n\
                 drop(g);\n\
                 w.flush().ok();\n\
             }\n",
            "[package]\nname = \"x\"\n",
        );
        let l11: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.rule == Rule::LockDiscipline)
            .collect();
        assert!(
            l11.iter().any(|f| f.message.contains("inconsistent lock order")),
            "{:?}",
            rep.findings
        );
        let held: Vec<_> = l11
            .iter()
            .filter(|f| f.message.contains("held across"))
            .collect();
        assert_eq!(held.len(), 1, "{:?}", rep.findings);
        assert!(held[0].message.contains("write_all"));
    }

    #[test]
    fn l012_coverage_and_wildcards() {
        let rep = run(
            "pub enum Request { Submit, Cancel, Stats }\n\
             pub fn dispatch(r: Request) -> u32 {\n\
                 match r {\n\
                     Request::Submit => 1,\n\
                     Request::Cancel => 2,\n\
                     _ => 0,\n\
                 }\n\
             }\n",
            "[package]\nname = \"x\"\n[package.metadata.rush-lint]\n\
             protocol-enums = [\"Request\"]\nprotocol-surfaces = [\"src/lib.rs\"]\n",
        );
        let l12: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.rule == Rule::ProtocolExhaustiveness)
            .collect();
        assert!(
            l12.iter().any(|f| f.message.contains("`Request::Stats` is never handled")),
            "{:?}",
            rep.findings
        );
        assert!(
            l12.iter().any(|f| f.message.contains("wildcard `_` arm")),
            "{:?}",
            rep.findings
        );
    }

    const REACTOR_MANIFEST: &str = "[package]\nname = \"x\"\n\
        [package.metadata.rush-lint]\nreactor-loops = [\"Reactor::run\"]\n";

    #[test]
    fn l013_reports_blocking_call_with_path() {
        let rep = run(
            "struct Reactor;\n\
             impl Reactor {\n\
                 pub fn run(&mut self) { self.tick(); }\n\
                 fn tick(&self) { helper(); }\n\
             }\n\
             fn helper() { std::thread::sleep(std::time::Duration::from_millis(5)); }\n\
             fn unreached(s: &mut W) { s.write_all(&[0]).ok(); }\n",
            REACTOR_MANIFEST,
        );
        let l13: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.rule == Rule::ReactorDiscipline)
            .collect();
        assert_eq!(l13.len(), 1, "{:?}", rep.findings);
        assert!(l13[0].message.contains("blocking `sleep`"));
        assert!(l13[0].message.contains("run -> tick -> helper"));
        assert_eq!(l13[0].line, 6);
    }

    #[test]
    fn l013_nonblocking_loop_is_clean() {
        let rep = run(
            "struct Reactor;\n\
             impl Reactor {\n\
                 pub fn run(&mut self) {\n\
                     let evs = self.poller.wait(timeout);\n\
                     let _ = self.tx.send(msg);\n\
                     let n = self.stream.read(&mut buf);\n\
                     let _ = (evs, n);\n\
                 }\n\
             }\n",
            REACTOR_MANIFEST,
        );
        assert!(
            rep.findings.iter().all(|f| f.rule != Rule::ReactorDiscipline),
            "{:?}",
            rep.findings
        );
    }

    #[test]
    fn l013_panic_free_file_flags_unwrap_and_honors_pragma() {
        let manifest = "[package]\nname = \"x\"\n\
            [package.metadata.rush-lint]\npanic-free = [\"src/lib.rs\"]\n";
        let rep = run(
            "pub fn decode(v: Option<u32>) -> u32 { v.unwrap() }\n\
             pub fn checked(v: Option<u32>) -> u32 {\n\
                 // rush-lint: allow(RUSH-L013): validated at the frame scanner\n\
                 v.unwrap()\n\
             }\n\
             #[cfg(test)]\nmod tests {\n\
                 fn helper(v: Option<u32>) -> u32 { v.unwrap() }\n\
             }\n",
            manifest,
        );
        let l13: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.rule == Rule::ReactorDiscipline)
            .collect();
        assert_eq!(l13.len(), 1, "{:?}", rep.findings);
        assert_eq!(l13[0].line, 1);
        assert!(l13[0].message.contains("panic-free file `src/lib.rs`"));
        assert_eq!(rep.suppressed, 1);
    }

    #[test]
    fn l014_flags_mutation_without_authority() {
        let rep = run(
            "pub fn resize(kernel: &mut K, pool: &mut P) {\n\
                 kernel.set_capacity(8);\n\
                 pool.revoke(2);\n\
                 pool.restore(2);\n\
             }\n\
             #[cfg(test)]\nmod tests {\n\
                 fn probe(k: &mut super::K) { k.set_capacity(4); }\n\
             }\n",
            "[package]\nname = \"x\"\n",
        );
        let l14: Vec<_> = rep
            .findings
            .iter()
            .filter(|f| f.rule == Rule::CapacityFence)
            .collect();
        assert_eq!(l14.len(), 3, "{:?}", rep.findings);
        assert!(l14[0].message.contains("`set_capacity`"));
        assert!(l14[0].message.contains("PlannerEvent::CapacityChange"));
        assert_eq!([l14[0].line, l14[1].line, l14[2].line], [2, 3, 4]);
    }

    #[test]
    fn l014_authority_crate_and_pragma_are_exempt() {
        let authority = "[package]\nname = \"x\"\n\
            [package.metadata.rush-lint]\ncapacity-authority = true\n";
        let rep = run("pub fn resize(k: &mut K) { k.set_capacity(8); }\n", authority);
        assert!(
            rep.findings.iter().all(|f| f.rule != Rule::CapacityFence),
            "{:?}",
            rep.findings
        );

        let rep = run(
            "pub fn dispatch(state: &mut S, slice: u32) {\n\
                 // rush-lint: allow(RUSH-L014): lowers onto the planner event path\n\
                 state.set_capacity(slice);\n\
             }\n",
            "[package]\nname = \"x\"\n",
        );
        assert!(
            rep.findings.iter().all(|f| f.rule != Rule::CapacityFence),
            "{:?}",
            rep.findings
        );
        assert_eq!(rep.suppressed, 1);
    }

    #[test]
    fn l012_named_catch_all_allowed() {
        let rep = run(
            "pub enum Request { Submit, Cancel }\n\
             pub fn dispatch(r: Request) -> u32 {\n\
                 match r {\n\
                     Request::Submit => 1,\n\
                     Request::Cancel => 2,\n\
                 }\n\
             }\n\
             pub fn classify(r: &Request) -> u32 {\n\
                 match r {\n\
                     Request::Submit => 1,\n\
                     other => fallback(other),\n\
                 }\n\
             }\n\
             fn fallback(_r: &Request) -> u32 { 0 }\n",
            "[package]\nname = \"x\"\n[package.metadata.rush-lint]\n\
             protocol-enums = [\"Request\"]\nprotocol-surfaces = [\"src/lib.rs\"]\n",
        );
        assert!(
            rep.findings.iter().all(|f| f.rule != Rule::ProtocolExhaustiveness),
            "{:?}",
            rep.findings
        );
    }
}

//! CLI entry point: `cargo xtask lint [--deep] [--json] [--root PATH]`,
//! `cargo xtask lint --explain RUSH-LNNN` and
//! `cargo xtask bench-gate --baseline A.json --candidate B.json`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::report::{Rule, ALL_RULES};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  lint [--json] [--root PATH]   run the RUSH static-analysis pass
  lint --deep                   also run the AST + call-graph rules
                                (RUSH-L009..L014: panic reachability,
                                arithmetic hygiene, lock discipline,
                                protocol exhaustiveness, reactor
                                discipline, capacity fence)
  lint --explain RUSH-LNNN      print the documentation for one rule
  lint --list                   list rule codes and summaries
  bench-gate --baseline A.json --candidate B.json [--jobs N] [--factor F]
                                fail if the candidate fig5 cached cost at
                                N jobs (default 200) exceeds F x baseline
                                (default 2.0)
  bench-gate --sharded --candidate B.json [--jobs N] [--shards S]
             [--min-speedup F]  fail if the candidate's S-shard point
                                (default 8) at N jobs (default 10000) is
                                not at least F x (default 3.0) faster
                                than its own 1-shard point
  bench-gate --serve --candidate B.json [--min-conn-ratio F]
             [--p99-slack S]    fail if the best reactor run in the
                                serve-latency report does not hold at
                                least F x (default 5.0) the connections
                                of the best thread-frontend run at a
                                client p99 within S x (default 1.10,
                                the log2-histogram's resolution) of
                                that baseline
  bench-gate --capacity --candidate B.json
                                fail if, at the capacity ablation's
                                highest revocation rate, RUSH's
                                deadline-hit rate falls below the
                                deterministic delta=0 planner's (reads
                                the report's own gate object; the sim
                                is seeded, so the check is exact)

Exit codes: 0 = clean, 1 = findings/regression, 2 = usage error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_cmd(&args[1..]),
        Some("bench-gate") => bench_gate_cmd(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Default scan root: two levels above this crate's manifest dir.
fn default_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn lint_cmd(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut deep = false;
    let mut root = default_root();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--deep" => deep = true,
            "--list" => {
                for &r in ALL_RULES {
                    println!("{}  {}", r.code(), r.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(code) = args.get(i + 1) else {
                    eprintln!("--explain needs a rule code (RUSH-L001..RUSH-L014)");
                    return ExitCode::from(2);
                };
                let Some(rule) = Rule::from_code(code) else {
                    eprintln!("unknown rule code `{code}`; known codes:");
                    for &r in ALL_RULES {
                        eprintln!("  {}  {}", r.code(), r.summary());
                    }
                    return ExitCode::from(2);
                };
                println!("{}", rule.explain());
                return ExitCode::SUCCESS;
            }
            "--root" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(p);
                i += 1;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    match xtask::lint_with(&root, xtask::LintOptions { deep }) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn bench_gate_cmd(args: &[String]) -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut candidate: Option<PathBuf> = None;
    let mut sharded = false;
    let mut serve = false;
    let mut capacity = false;
    let mut jobs: Option<u64> = None;
    let mut shards: u64 = 8;
    let mut factor: f64 = 2.0;
    let mut min_speedup: f64 = 3.0;
    let mut min_conn_ratio: f64 = 5.0;
    let mut p99_slack: f64 = 1.10;
    let mut i = 0usize;
    while i < args.len() {
        let take = |j: usize| args.get(j + 1).cloned();
        match args[i].as_str() {
            "--sharded" => sharded = true,
            "--serve" => serve = true,
            "--capacity" => capacity = true,
            "--min-conn-ratio" => match take(i).and_then(|v| v.parse().ok()) {
                Some(f) => {
                    min_conn_ratio = f;
                    i += 1;
                }
                None => {
                    eprintln!("--min-conn-ratio needs a number");
                    return ExitCode::from(2);
                }
            },
            "--p99-slack" => match take(i).and_then(|v| v.parse().ok()) {
                Some(f) => {
                    p99_slack = f;
                    i += 1;
                }
                None => {
                    eprintln!("--p99-slack needs a number");
                    return ExitCode::from(2);
                }
            },
            "--shards" => match take(i).and_then(|v| v.parse().ok()) {
                Some(s) => {
                    shards = s;
                    i += 1;
                }
                None => {
                    eprintln!("--shards needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--min-speedup" => match take(i).and_then(|v| v.parse().ok()) {
                Some(f) => {
                    min_speedup = f;
                    i += 1;
                }
                None => {
                    eprintln!("--min-speedup needs a number");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match take(i) {
                Some(p) => {
                    baseline = Some(PathBuf::from(p));
                    i += 1;
                }
                None => {
                    eprintln!("--baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            "--candidate" => match take(i) {
                Some(p) => {
                    candidate = Some(PathBuf::from(p));
                    i += 1;
                }
                None => {
                    eprintln!("--candidate needs a path");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match take(i).and_then(|v| v.parse().ok()) {
                Some(n) => {
                    jobs = Some(n);
                    i += 1;
                }
                None => {
                    eprintln!("--jobs needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--factor" => match take(i).and_then(|v| v.parse().ok()) {
                Some(f) => {
                    factor = f;
                    i += 1;
                }
                None => {
                    eprintln!("--factor needs a number");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    let read = |p: &PathBuf| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("cannot read {}: {e}", p.display());
            None
        }
    };
    if capacity {
        // Self-contained robustness check: the ablation report's own gate
        // object carries both hit rates, no baseline file involved.
        let Some(candidate) = candidate else {
            eprintln!("bench-gate --capacity needs --candidate");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        };
        let Some(cand_json) = read(&candidate) else {
            return ExitCode::from(2);
        };
        return match xtask::bench_gate::capacity_gate(&cand_json) {
            Ok(o) => {
                println!(
                    "bench-gate --capacity: at revocation rate {:.2} RUSH hits {:.4}, deterministic delta=0 hits {:.4} -> {}",
                    o.revocation_rate,
                    o.rush,
                    o.deterministic,
                    if o.pass { "PASS" } else { "FAIL" }
                );
                if o.pass {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("bench-gate --capacity: {e}");
                ExitCode::from(2)
            }
        };
    }
    if serve {
        // Self-contained frontend-scaling check: the report's own
        // thread-frontend run is the reference, no baseline file involved.
        let Some(candidate) = candidate else {
            eprintln!("bench-gate --serve needs --candidate");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        };
        let Some(cand_json) = read(&candidate) else {
            return ExitCode::from(2);
        };
        return match xtask::bench_gate::serve_gate(&cand_json, min_conn_ratio, p99_slack) {
            Ok(o) => {
                println!(
                    "bench-gate --serve: threads {} conns p99 {:.0}us vs reactor ({}) {} conns p99 {:.0}us ({:.2}x conns, floor {:.2}x; p99 slack {p99_slack:.2}x) -> {}",
                    o.threads.connections,
                    o.threads.p99_us,
                    o.reactor.codec,
                    o.reactor.connections,
                    o.reactor.p99_us,
                    o.conn_ratio,
                    min_conn_ratio,
                    if o.pass { "PASS" } else { "FAIL" }
                );
                if o.pass {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("bench-gate --serve: {e}");
                ExitCode::from(2)
            }
        };
    }
    if sharded {
        // Self-contained scaling check: the candidate's own 1-shard
        // point is the reference, no baseline file involved.
        let Some(candidate) = candidate else {
            eprintln!("bench-gate --sharded needs --candidate");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        };
        let Some(cand_json) = read(&candidate) else {
            return ExitCode::from(2);
        };
        let jobs = jobs.unwrap_or(10_000);
        return match xtask::bench_gate::shard_gate(&cand_json, jobs, shards, min_speedup) {
            Ok(o) => {
                println!(
                    "bench-gate --sharded: ns/event at {jobs} jobs: 1 shard {:.0}, {shards} shards {:.0} ({:.2}x speedup, floor {:.2}x) -> {}",
                    o.single,
                    o.sharded,
                    o.speedup,
                    min_speedup,
                    if o.pass { "PASS" } else { "FAIL" }
                );
                if o.pass {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("bench-gate --sharded: {e}");
                ExitCode::from(2)
            }
        };
    }
    let (Some(baseline), Some(candidate)) = (baseline, candidate) else {
        eprintln!("bench-gate needs --baseline and --candidate");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let (Some(base_json), Some(cand_json)) = (read(&baseline), read(&candidate)) else {
        return ExitCode::from(2);
    };
    let jobs = jobs.unwrap_or(200);
    match xtask::bench_gate::gate(&base_json, &cand_json, jobs, factor) {
        Ok(o) => {
            println!(
                "bench-gate: cached ns/event at {jobs} jobs: baseline {:.0}, candidate {:.0} ({:.2}x, limit {:.2}x) -> {}",
                o.baseline,
                o.candidate,
                o.ratio,
                factor,
                if o.pass { "PASS" } else { "FAIL" }
            );
            if o.pass {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::from(2)
        }
    }
}

//! CLI entry point: `cargo xtask lint [--json] [--root PATH]` and
//! `cargo xtask lint --explain RUSH-LNNN`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::report::{Rule, ALL_RULES};

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  lint [--json] [--root PATH]   run the RUSH static-analysis pass
  lint --explain RUSH-LNNN      print the documentation for one rule
  lint --list                   list rule codes and summaries

Exit codes: 0 = clean, 1 = findings, 2 = usage error.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_cmd(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Default scan root: two levels above this crate's manifest dir.
fn default_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn lint_cmd(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root = default_root();
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--list" => {
                for &r in ALL_RULES {
                    println!("{}  {}", r.code(), r.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(code) = args.get(i + 1) else {
                    eprintln!("--explain needs a rule code (RUSH-L001..RUSH-L006)");
                    return ExitCode::from(2);
                };
                let Some(rule) = Rule::from_code(code) else {
                    eprintln!("unknown rule code `{code}`; known codes:");
                    for &r in ALL_RULES {
                        eprintln!("  {}  {}", r.code(), r.summary());
                    }
                    return ExitCode::from(2);
                };
                println!("{}", rule.explain());
                return ExitCode::SUCCESS;
            }
            "--root" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(p);
                i += 1;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    match xtask::lint(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lint failed: {e}");
            ExitCode::from(2)
        }
    }
}

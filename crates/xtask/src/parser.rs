//! A from-scratch recursive-descent parser over [`crate::lexer`], producing
//! the lightweight AST in [`crate::ast`].
//!
//! The parser is *lenient by construction*: it must accept every source
//! file in the workspace (a self-test enforces exactly that) without
//! depending on `syn`. Three techniques make that tractable:
//!
//! 1. **Skip what the analyses never read.** Generics, types, visibility,
//!    where-clauses, attribute bodies and patterns (beyond their top-level
//!    shape) are consumed by balanced skipping, not parsed.
//! 2. **Precedence-climbing expressions.** A conventional Pratt-style
//!    expression grammar covers calls, method chains, indexing, arithmetic,
//!    ranges, casts, closures, and the block-like expressions (`if`,
//!    `match`, `while`, `for`, `loop`).
//! 3. **Soft recovery.** A token that fits no production is consumed as an
//!    [`Expr::Unknown`] atom and recorded in [`ParseOutcome::recovered`],
//!    so parsing always terminates with a tree. Structural problems
//!    (an unclosed delimiter, a missing item name) are recorded in
//!    [`ParseOutcome::errors`]; the workspace corpus must produce none.

use crate::ast::{Arm, Block, EnumDef, Expr, Function, ImplBlock, Item, Module, Pat, SourceFile, Stmt};
use crate::lexer::{Lexed, TokKind, Token};

/// A structural parse problem (workspace sources must produce none).
#[derive(Debug, Clone)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// What went wrong.
    pub msg: String,
}

/// The result of parsing one file.
#[derive(Debug, Default)]
pub struct ParseOutcome {
    /// The parsed tree.
    pub file: SourceFile,
    /// Structural errors (empty on valid Rust).
    pub errors: Vec<ParseError>,
    /// Lines where soft recovery consumed an uninterpretable token.
    pub recovered: Vec<u32>,
}

/// Parse one lexed file.
pub fn parse_file(lexed: &Lexed) -> ParseOutcome {
    let mut p = Parser { toks: &lexed.tokens, i: 0, errors: Vec::new(), recovered: Vec::new() };
    let items = p.parse_items(false);
    ParseOutcome {
        file: SourceFile { items },
        errors: p.errors,
        recovered: p.recovered,
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
    errors: Vec<ParseError>,
    recovered: Vec<u32>,
}

impl<'a> Parser<'a> {
    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.i)
    }

    fn peek_at(&self, k: usize) -> Option<&'a Token> {
        self.toks.get(self.i + k)
    }

    fn line(&self) -> u32 {
        self.peek()
            .map(|t| t.line)
            .or_else(|| self.toks.last().map(|t| t.line))
            .unwrap_or(1)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    /// At a block-like expression (`{`, `if`, `match`, `loop`, `while`,
    /// `for`, `unsafe`)? In statement and match-arm position these are
    /// complete on their own — Rust does not continue them with postfix
    /// or binary operators there (`match x {}` followed by `[` starts a
    /// new statement/arm, not an index).
    fn at_block_like(&self) -> bool {
        self.at_punct("{")
            || self.at_ident("if")
            || self.at_ident("match")
            || self.at_ident("loop")
            || self.at_ident("while")
            || self.at_ident("for")
            || self.at_ident("unsafe")
    }

    fn at_ident(&self, id: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(id))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, id: &str) -> bool {
        if self.at_ident(id) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn error(&mut self, msg: impl Into<String>) {
        let line = self.line();
        self.errors.push(ParseError { line, msg: msg.into() });
    }

    // ---- balanced skipping ---------------------------------------------

    /// At an opening `(`/`[`/`{`: skip past its matching close, balancing
    /// all three delimiter kinds. Records an error at EOF.
    fn skip_balanced(&mut self) {
        let mut stack: Vec<&str> = Vec::new();
        loop {
            let Some(t) = self.bump() else {
                self.errors.push(ParseError {
                    line: self.toks.last().map_or(1, |t| t.line),
                    msg: "unclosed delimiter at end of file".into(),
                });
                return;
            };
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => stack.push(")"),
                    "[" => stack.push("]"),
                    "{" => stack.push("}"),
                    ")" | "]" | "}" => {
                        // A mismatched close still unwinds (lenient).
                        stack.pop();
                        if stack.is_empty() {
                            return;
                        }
                    }
                    _ => {}
                }
            }
            if stack.is_empty() {
                // First token was not an opener; nothing to balance.
                return;
            }
        }
    }

    /// At a `<`: skip a generic-argument group, counting `<<`/`>>` as two
    /// and balancing nested `(`/`[`/`{` groups (const generics).
    fn skip_angles(&mut self) {
        let mut depth: i64 = 0;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" | "<=" => depth += 1,
                    "<<" => depth += 2,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    ">=" | "->" | "=>" => {}
                    "(" | "[" | "{" => {
                        self.skip_balanced();
                        continue;
                    }
                    ";" => break, // never part of a generic group
                    _ => {}
                }
            }
            self.i += 1;
            if depth <= 0 {
                return;
            }
        }
        self.error("unclosed `<` generic group");
    }

    /// Skip a type position: paths, references, slices, tuples, fn
    /// pointers, `dyn`/`impl` bounds. Stops at any token that cannot
    /// continue a type (`;`, `,`, `=`, `{`, `)`, ...).
    fn skip_type(&mut self) {
        let mut made_progress = true;
        while made_progress {
            made_progress = false;
            let Some(t) = self.peek() else { return };
            match (&t.kind, t.text.as_str()) {
                (TokKind::Ident, "dyn" | "impl" | "mut" | "const" | "unsafe" | "fn" | "as") => {
                    self.i += 1;
                    made_progress = true;
                }
                (TokKind::Ident, _) => {
                    self.i += 1;
                    made_progress = true;
                }
                (TokKind::Lifetime, _) => {
                    self.i += 1;
                    made_progress = true;
                }
                (TokKind::Punct, "::") => {
                    self.i += 1;
                    made_progress = true;
                }
                (TokKind::Punct, "<") => {
                    self.skip_angles();
                    made_progress = true;
                }
                (TokKind::Punct, "&" | "&&" | "*" | "!" | "+") => {
                    self.i += 1;
                    made_progress = true;
                }
                (TokKind::Punct, "(" | "[") => {
                    self.skip_balanced();
                    made_progress = true;
                }
                (TokKind::Punct, "->") => {
                    self.i += 1;
                    made_progress = true;
                }
                _ => {}
            }
        }
    }

    // ---- attributes ----------------------------------------------------

    /// Consume any `#[...]` / `#![...]` attributes. Returns true when one
    /// of them is test-gating (`#[test]`, `#[cfg(test)]`, `#[cfg_attr(test, ..)]`).
    fn eat_attrs(&mut self) -> bool {
        let mut test = false;
        while self.at_punct("#") {
            let start = self.i;
            self.i += 1;
            self.eat_punct("!");
            if self.at_punct("[") {
                let open = self.i;
                self.skip_balanced();
                if attr_is_test(&self.toks[open + 1..self.i.saturating_sub(1)]) {
                    test = true;
                }
            } else {
                // A bare `#` that is not an attribute: rewind and stop.
                self.i = start;
                break;
            }
        }
        test
    }

    // ---- items ---------------------------------------------------------

    /// Parse items until EOF (or until the `}` closing the enclosing
    /// block when `stop_at_brace` is set — the brace is not consumed).
    fn parse_items(&mut self, stop_at_brace: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.peek().is_none() {
                break;
            }
            if stop_at_brace && self.at_punct("}") {
                break;
            }
            let is_test = self.eat_attrs();
            // Visibility.
            if self.eat_ident("pub") && self.at_punct("(") {
                self.skip_balanced();
            }
            // Modifier keywords before `fn` (const/unsafe/async/extern "C").
            loop {
                if (self.at_ident("const") || self.at_ident("unsafe"))
                    && self.peek_at(1).is_some_and(|t| {
                        t.is_ident("fn")
                            || t.is_ident("unsafe")
                            || t.is_ident("extern")
                            || t.is_ident("async")
                            || t.is_ident("impl")
                            || t.is_ident("trait")
                    })
                {
                    self.i += 1;
                    continue;
                }
                if self.at_ident("async") || self.at_ident("default") || self.at_ident("auto") {
                    self.i += 1;
                    continue;
                }
                if self.at_ident("extern")
                    && self.peek_at(1).is_some_and(|t| t.kind == TokKind::Str)
                    && self.peek_at(2).is_some_and(|t| t.is_ident("fn"))
                {
                    self.i += 2;
                    continue;
                }
                break;
            }
            let Some(t) = self.peek() else { break };
            match (&t.kind, t.text.as_str()) {
                (TokKind::Ident, "fn") => items.push(self.parse_fn(is_test)),
                (TokKind::Ident, "impl") => items.push(self.parse_impl(is_test)),
                (TokKind::Ident, "mod") => items.push(self.parse_mod(is_test)),
                (TokKind::Ident, "enum") => items.push(self.parse_enum(is_test)),
                (TokKind::Ident, "trait") => items.push(self.parse_trait(is_test)),
                (TokKind::Ident, "struct" | "union") => {
                    items.push(self.parse_struct());
                }
                (TokKind::Ident, "use") => {
                    self.skip_to_semi();
                    items.push(Item::Skipped);
                }
                (TokKind::Ident, "type") => {
                    self.skip_to_semi();
                    items.push(Item::Skipped);
                }
                (TokKind::Ident, "const" | "static") => {
                    self.skip_to_semi();
                    items.push(Item::Skipped);
                }
                (TokKind::Ident, "macro_rules") => {
                    // macro_rules ! name { ... }
                    self.i += 1;
                    self.eat_punct("!");
                    if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                        self.i += 1;
                    }
                    if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
                        self.skip_balanced();
                    }
                    self.eat_punct(";");
                    items.push(Item::Skipped);
                }
                (TokKind::Ident, "macro") => {
                    // macros 2.0: macro name { ... }
                    self.i += 1;
                    if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                        self.i += 1;
                    }
                    if self.at_punct("{") || self.at_punct("(") {
                        self.skip_balanced();
                    }
                    items.push(Item::Skipped);
                }
                (TokKind::Ident, "extern") => {
                    // extern crate x; | extern "C" { ... }
                    self.i += 1;
                    if self.eat_ident("crate") {
                        self.skip_to_semi();
                    } else {
                        if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                            self.i += 1;
                        }
                        if self.at_punct("{") {
                            self.skip_balanced();
                        }
                    }
                    items.push(Item::Skipped);
                }
                (TokKind::Ident, _) if self.peek_at(1).is_some_and(|n| n.is_punct("!")) => {
                    // Item-level macro invocation: name!( ... );
                    self.i += 2;
                    if self.at_punct("(") || self.at_punct("[") || self.at_punct("{") {
                        self.skip_balanced();
                    }
                    self.eat_punct(";");
                    items.push(Item::Skipped);
                }
                _ => {
                    self.error(format!("unexpected token `{}` at item level", t.text));
                    self.i += 1;
                }
            }
        }
        items
    }

    /// Skip to (and past) the next `;` at delimiter depth zero.
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.peek() {
            if t.is_punct(";") {
                self.i += 1;
                return;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                self.skip_balanced();
                continue;
            }
            if t.is_punct("<") {
                self.skip_angles();
                continue;
            }
            self.i += 1;
        }
    }

    fn parse_fn(&mut self, is_test: bool) -> Item {
        let line = self.line();
        self.i += 1; // `fn`
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.i += 1;
                n
            }
            _ => {
                self.error("`fn` without a name");
                String::new()
            }
        };
        if self.at_punct("<") {
            self.skip_angles();
        }
        if self.at_punct("(") {
            self.skip_balanced();
        }
        // Return type and where-clause: skip until the body `{` or a `;`.
        let mut body = None;
        while let Some(t) = self.peek() {
            if t.is_punct(";") {
                self.i += 1;
                break;
            }
            if t.is_punct("{") {
                body = Some(self.parse_block());
                break;
            }
            if t.is_punct("<") {
                self.skip_angles();
                continue;
            }
            if t.is_punct("(") || t.is_punct("[") {
                self.skip_balanced();
                continue;
            }
            self.i += 1;
        }
        Item::Fn(Function { name, line, is_test, body })
    }

    fn parse_impl(&mut self, is_test: bool) -> Item {
        self.i += 1; // `impl`
        if self.at_punct("<") {
            self.skip_angles();
        }
        // Type path (possibly `Trait for Type`); the self type is the last
        // identifier segment before the body, after any `for`.
        let mut last_seg = String::new();
        while let Some(t) = self.peek() {
            match (&t.kind, t.text.as_str()) {
                (TokKind::Ident, "for") => {
                    last_seg.clear();
                    self.i += 1;
                }
                (TokKind::Ident, "where") => break,
                (TokKind::Ident, _) => {
                    last_seg = t.text.clone();
                    self.i += 1;
                }
                (TokKind::Punct, "<") => self.skip_angles(),
                (TokKind::Punct, "{") => break,
                (TokKind::Punct, "(") | (TokKind::Punct, "[") => self.skip_balanced(),
                (TokKind::Punct, ";") => {
                    self.i += 1;
                    return Item::Skipped;
                }
                _ => {
                    self.i += 1;
                }
            }
        }
        // where-clause.
        while let Some(t) = self.peek() {
            if t.is_punct("{") {
                break;
            }
            if t.is_punct("<") {
                self.skip_angles();
            } else {
                self.i += 1;
            }
        }
        if !self.eat_punct("{") {
            self.error("`impl` without a body");
            return Item::Skipped;
        }
        let items = self.parse_items(true);
        self.eat_punct("}");
        Item::Impl(ImplBlock { self_type: last_seg, is_test, items })
    }

    fn parse_trait(&mut self, is_test: bool) -> Item {
        self.i += 1; // `trait`
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.i += 1;
                n
            }
            _ => String::new(),
        };
        // Generics, supertraits, where-clause.
        while let Some(t) = self.peek() {
            if t.is_punct("{") {
                break;
            }
            if t.is_punct(";") {
                self.i += 1;
                return Item::Skipped;
            }
            if t.is_punct("<") {
                self.skip_angles();
            } else {
                self.i += 1;
            }
        }
        if !self.eat_punct("{") {
            return Item::Skipped;
        }
        let items = self.parse_items(true);
        self.eat_punct("}");
        // A trait behaves like a module for analysis: default method
        // bodies are real code.
        Item::Mod(Module { name, is_test, items })
    }

    fn parse_mod(&mut self, is_test: bool) -> Item {
        self.i += 1; // `mod`
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.i += 1;
                n
            }
            _ => String::new(),
        };
        if self.eat_punct(";") {
            return Item::Skipped; // out-of-line module: its file is scanned separately
        }
        if !self.eat_punct("{") {
            self.error("`mod` without `;` or body");
            return Item::Skipped;
        }
        let items = self.parse_items(true);
        self.eat_punct("}");
        Item::Mod(Module { name, is_test, items })
    }

    fn parse_enum(&mut self, is_test: bool) -> Item {
        let line = self.line();
        self.i += 1; // `enum`
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.i += 1;
                n
            }
            _ => {
                self.error("`enum` without a name");
                String::new()
            }
        };
        if self.at_punct("<") {
            self.skip_angles();
        }
        // where-clause.
        while let Some(t) = self.peek() {
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            if t.is_punct("<") {
                self.skip_angles();
            } else {
                self.i += 1;
            }
        }
        if self.eat_punct(";") {
            return Item::Skipped;
        }
        if !self.eat_punct("{") {
            return Item::Skipped;
        }
        let mut variants = Vec::new();
        while let Some(t) = self.peek() {
            if t.is_punct("}") {
                self.i += 1;
                break;
            }
            self.eat_attrs();
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident => {
                    variants.push(t.text.clone());
                    self.i += 1;
                }
                _ => {
                    self.i += 1;
                    continue;
                }
            }
            // Payload and/or discriminant.
            while let Some(t) = self.peek() {
                if t.is_punct(",") {
                    self.i += 1;
                    break;
                }
                if t.is_punct("}") {
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    self.skip_balanced();
                    continue;
                }
                if t.is_punct("<") {
                    self.skip_angles();
                    continue;
                }
                self.i += 1;
            }
        }
        Item::Enum(EnumDef { name, variants, is_test, line })
    }

    fn parse_struct(&mut self) -> Item {
        self.i += 1; // `struct` / `union`
        if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
            self.i += 1;
        }
        if self.at_punct("<") {
            self.skip_angles();
        }
        // Unit / tuple / braced body, with optional where-clause.
        while let Some(t) = self.peek() {
            if t.is_punct(";") {
                self.i += 1;
                return Item::Skipped;
            }
            if t.is_punct("(") {
                self.skip_balanced();
                continue; // tuple struct: `;` (or where-clause) follows
            }
            if t.is_punct("{") {
                self.skip_balanced();
                return Item::Skipped;
            }
            if t.is_punct("<") {
                self.skip_angles();
                continue;
            }
            self.i += 1;
        }
        Item::Skipped
    }

    // ---- statements ----------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let mut block = Block::default();
        if !self.eat_punct("{") {
            self.error("expected `{`");
            return block;
        }
        loop {
            let Some(t) = self.peek() else {
                self.error("unclosed block at end of file");
                break;
            };
            if t.is_punct("}") {
                self.i += 1;
                break;
            }
            if t.is_punct(";") {
                self.i += 1;
                continue;
            }
            let is_test_attr = if t.is_punct("#") { self.eat_attrs() } else { false };
            let Some(t) = self.peek() else { continue };
            if t.is_ident("let") {
                block.stmts.push(self.parse_let());
                continue;
            }
            // Nested items inside a body. `const` needs a following
            // identifier (`const X: ..` / `const fn ..`) to distinguish
            // it from `const { .. }` block expressions.
            let is_item = match (&t.kind, t.text.as_str()) {
                (
                    TokKind::Ident,
                    "fn" | "struct" | "enum" | "union" | "trait" | "impl" | "mod" | "use"
                    | "type" | "static" | "macro_rules" | "pub",
                ) => true,
                (TokKind::Ident, "const") => {
                    self.peek_at(1).is_some_and(|n| n.kind == TokKind::Ident)
                }
                _ => false,
            };
            if is_item {
                let before = self.i;
                let mut items = self.parse_single_item(is_test_attr);
                if self.i == before {
                    // No progress: force one token to avoid a loop.
                    self.i += 1;
                    continue;
                }
                block.stmts.extend(items.drain(..).map(|it| Stmt::Item(Box::new(it))));
                continue;
            }
            let expr = if self.at_block_like() {
                // Statement-position block-like expressions are complete —
                // unless `.`/`?` follows, where rustc resumes the
                // expression (`match e { .. }.0` as a tail expression).
                let e = self.parse_primary(false);
                if self.at_punct(".") || self.at_punct("?") {
                    self.postfix_chain(e)
                } else {
                    e
                }
            } else {
                self.parse_expr(false)
            };
            self.eat_punct(";");
            block.stmts.push(Stmt::Expr(expr));
        }
        block
    }

    /// Parse exactly one item (used for items nested in blocks).
    fn parse_single_item(&mut self, is_test: bool) -> Vec<Item> {
        if self.eat_ident("pub") && self.at_punct("(") {
            self.skip_balanced();
        }
        while (self.at_ident("const") || self.at_ident("unsafe") || self.at_ident("async"))
            && self.peek_at(1).is_some_and(|t| t.is_ident("fn") || t.is_ident("extern"))
        {
            self.i += 1;
        }
        let Some(t) = self.peek() else { return vec![] };
        match t.text.as_str() {
            "fn" => vec![self.parse_fn(is_test)],
            "impl" => vec![self.parse_impl(is_test)],
            "mod" => vec![self.parse_mod(is_test)],
            "enum" => vec![self.parse_enum(is_test)],
            "trait" => vec![self.parse_trait(is_test)],
            "struct" | "union" => vec![self.parse_struct()],
            "use" | "type" | "const" | "static" => {
                self.skip_to_semi();
                vec![Item::Skipped]
            }
            "macro_rules" => {
                self.i += 1;
                self.eat_punct("!");
                if self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                    self.i += 1;
                }
                if self.at_punct("{") || self.at_punct("(") {
                    self.skip_balanced();
                }
                vec![Item::Skipped]
            }
            _ => vec![],
        }
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.i += 1; // `let`
        // Pattern: record the bound name for plain `[mut] name` patterns.
        while self.at_ident("mut") || self.at_ident("ref") {
            self.i += 1;
        }
        let mut name = None;
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Ident && !t.is_ident("_") {
                // Only a *plain* binding: the next token must end the pattern.
                if self
                    .peek_at(1)
                    .is_some_and(|n| n.is_punct("=") || n.is_punct(":") || n.is_punct(";"))
                {
                    name = Some(t.text.clone());
                }
            }
        }
        // Skip the rest of the pattern up to `:`, `=`, `;` or `else`.
        while let Some(t) = self.peek() {
            if t.is_punct("=") || t.is_punct(":") || t.is_punct(";") || t.is_ident("else") {
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                self.skip_balanced();
                continue;
            }
            if t.is_punct("<") {
                self.skip_angles();
                continue;
            }
            self.i += 1;
        }
        if self.eat_punct(":") {
            self.skip_type();
        }
        let mut init = None;
        if self.eat_punct("=") {
            init = Some(self.parse_expr(false));
        }
        let mut else_block = None;
        if self.eat_ident("else") {
            if self.at_punct("{") {
                else_block = Some(self.parse_block());
            } else {
                self.error("`let ... else` without a block");
            }
        }
        self.eat_punct(";");
        Stmt::Let { name, init, else_block, line }
    }

    // ---- expressions ---------------------------------------------------

    /// Parse a full expression. `no_struct` suppresses struct-literal
    /// parsing (condition / scrutinee positions, where `Path {` starts the
    /// block instead).
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        self.parse_assign(no_struct)
    }

    fn parse_assign(&mut self, no_struct: bool) -> Expr {
        let lhs = self.parse_range(no_struct);
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Punct
                && matches!(
                    t.text.as_str(),
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
                )
            {
                let op = t.text.clone();
                let line = t.line;
                self.i += 1;
                let rhs = self.parse_assign(no_struct);
                return Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
            }
        }
        lhs
    }

    fn parse_range(&mut self, no_struct: bool) -> Expr {
        // Prefix / nullary range: `..hi`, `..`.
        if self.at_punct("..") || self.at_punct("..=") {
            let line = self.line();
            self.i += 1;
            let hi = if self.can_start_expr() {
                Some(Box::new(self.parse_binary(0, no_struct)))
            } else {
                None
            };
            return Expr::Range { lo: None, hi, line };
        }
        let lo = self.parse_binary(0, no_struct);
        if self.at_punct("..") || self.at_punct("..=") {
            let line = self.line();
            self.i += 1;
            let hi = if self.can_start_expr() {
                Some(Box::new(self.parse_binary(0, no_struct)))
            } else {
                None
            };
            return Expr::Range { lo: Some(Box::new(lo)), hi, line };
        }
        lo
    }

    /// Can the current token start an expression? (Used for open ranges.)
    fn can_start_expr(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match (&t.kind, t.text.as_str()) {
                (TokKind::Punct, ")" | "]" | "}" | "," | ";" | "=>" | "=") => false,
                (TokKind::Punct, _) => {
                    matches!(t.text.as_str(), "(" | "[" | "{" | "!" | "-" | "*" | "&" | "&&" | "|" | "||" | "<" | "#")
                }
                (TokKind::Ident, "in" | "else" | "as" | "where") => false,
                _ => true,
            },
        }
    }

    /// Binary-operator precedence (higher binds tighter). Assignment and
    /// ranges are handled above; unary and postfix below.
    fn bin_prec(op: &str) -> Option<u8> {
        Some(match op {
            "||" => 1,
            "&&" => 2,
            "==" | "!=" | "<" | ">" | "<=" | ">=" => 3,
            "|" => 4,
            "^" => 5,
            "&" => 6,
            "<<" | ">>" => 7,
            "+" | "-" => 8,
            "*" | "/" | "%" => 9,
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_unary(no_struct);
        while let Some(t) = self.peek() {
            if t.kind != TokKind::Punct {
                break;
            }
            let Some(prec) = Self::bin_prec(&t.text) else { break };
            if prec < min_prec {
                break;
            }
            let op = t.text.clone();
            let line = t.line;
            self.i += 1;
            let rhs = self.parse_binary(prec + 1, no_struct);
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        lhs
    }

    fn parse_unary(&mut self, no_struct: bool) -> Expr {
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Punct && matches!(t.text.as_str(), "!" | "-" | "*" | "&" | "&&") {
                let line = t.line;
                let op = if t.text == "&&" { "&".to_string() } else { t.text.clone() };
                let double_ref = t.text == "&&";
                self.i += 1;
                if op == "&" {
                    self.eat_ident("mut");
                    self.eat_ident("raw");
                    self.eat_ident("const");
                }
                let inner = self.parse_unary(no_struct);
                let one = Expr::Unary { op: op.clone(), operand: Box::new(inner), line };
                return if double_ref {
                    Expr::Unary { op, operand: Box::new(one), line }
                } else {
                    one
                };
            }
        }
        self.parse_postfix(no_struct)
    }

    fn parse_postfix(&mut self, no_struct: bool) -> Expr {
        let expr = self.parse_primary(no_struct);
        self.postfix_chain(expr)
    }

    /// Continue an already-parsed expression with postfix operators
    /// (`.m()`, `.f`, `(..)`, `[..]`, `?`, `as`).
    fn postfix_chain(&mut self, mut expr: Expr) -> Expr {
        while let Some(t) = self.peek() {
            match (&t.kind, t.text.as_str()) {
                (TokKind::Punct, ".") => {
                    let after = self.peek_at(1);
                    match after {
                        Some(n) if n.kind == TokKind::Ident => {
                            if n.is_ident("await") {
                                self.i += 2;
                                continue; // treat `.await` as transparent
                            }
                            let name = n.text.clone();
                            let line = n.line;
                            self.i += 2;
                            // Optional turbofish: `.collect::<T>()`.
                            if self.at_punct("::") {
                                self.i += 1;
                                if self.at_punct("<") {
                                    self.skip_angles();
                                }
                            }
                            if self.at_punct("(") {
                                let args = self.parse_paren_args();
                                expr = Expr::MethodCall {
                                    recv: Box::new(expr),
                                    name,
                                    args,
                                    line,
                                };
                            } else {
                                expr = Expr::Field { base: Box::new(expr), name, line };
                            }
                        }
                        Some(n) if n.kind == TokKind::Int || n.kind == TokKind::Float => {
                            // Tuple field access `t.0` (and `t.0.1`, which
                            // the lexer yields as a float token).
                            let name = n.text.clone();
                            let line = n.line;
                            self.i += 2;
                            expr = Expr::Field { base: Box::new(expr), name, line };
                        }
                        _ => break,
                    }
                }
                (TokKind::Punct, "(") => {
                    let line = t.line;
                    let args = self.parse_paren_args();
                    expr = Expr::Call { callee: Box::new(expr), args, line };
                }
                (TokKind::Punct, "[") => {
                    let line = t.line;
                    self.i += 1;
                    let index = self.parse_expr(false);
                    // Consume garbage up to the `]` (lenient).
                    while let Some(t) = self.peek() {
                        if t.is_punct("]") {
                            break;
                        }
                        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                            self.skip_balanced();
                            continue;
                        }
                        self.recovered.push(t.line);
                        self.i += 1;
                    }
                    self.eat_punct("]");
                    expr = Expr::Index { base: Box::new(expr), index: Box::new(index), line };
                }
                (TokKind::Punct, "?") => {
                    let line = t.line;
                    self.i += 1;
                    expr = Expr::Try { operand: Box::new(expr), line };
                }
                (TokKind::Ident, "as") => {
                    let line = t.line;
                    self.i += 1;
                    self.skip_type();
                    expr = Expr::Cast { operand: Box::new(expr), line };
                }
                _ => break,
            }
        }
        expr
    }

    /// Macro arguments between the opener (current token) and `close`.
    /// Macros embed non-expression DSL fragments (`matches!` guards,
    /// `vec![x; n]` repeats, format specs), so each comma-separated chunk
    /// is parsed as an expression and any unparseable remainder is
    /// *silently* skipped to the next top-level separator — macro bodies
    /// never produce structural errors or recovery records.
    fn parse_macro_args(&mut self, close: &str) -> Vec<Expr> {
        self.i += 1; // opener
        let mut args = Vec::new();
        loop {
            match self.peek() {
                None => {
                    self.error("unclosed macro arguments");
                    break;
                }
                Some(t) if t.is_punct(close) => {
                    self.i += 1;
                    break;
                }
                Some(t) if t.is_punct(",") || t.is_punct(";") => {
                    self.i += 1;
                    continue;
                }
                _ => {}
            }
            let err_mark = self.errors.len();
            let rec_mark = self.recovered.len();
            let before = self.i;
            args.push(self.parse_expr(false));
            if self.i == before {
                self.i += 1;
            }
            let at_sep = self.peek().is_none()
                || self.at_punct(close)
                || self.at_punct(",")
                || self.at_punct(";");
            if !at_sep {
                // DSL remnant: forget any diagnostics from this chunk and
                // resynchronize at the next separator.
                self.errors.truncate(err_mark);
                self.recovered.truncate(rec_mark);
                while let Some(t) = self.peek() {
                    if t.is_punct(close) || t.is_punct(",") || t.is_punct(";") {
                        break;
                    }
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        self.skip_balanced();
                        continue;
                    }
                    self.i += 1;
                }
            }
        }
        args
    }

    /// `( a, b, ... )` — the caller sits on the `(`.
    fn parse_paren_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        self.eat_punct("(");
        loop {
            let Some(t) = self.peek() else {
                self.error("unclosed call arguments");
                break;
            };
            if t.is_punct(")") {
                self.i += 1;
                break;
            }
            if t.is_punct(",") {
                self.i += 1;
                continue;
            }
            let before = self.i;
            args.push(self.parse_expr(false));
            if self.i == before {
                self.recovered.push(self.line());
                self.i += 1;
            }
        }
        args
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Unknown { line: self.line() };
        };
        let line = t.line;
        match (&t.kind, t.text.as_str()) {
            (TokKind::Int, _) => {
                self.i += 1;
                Expr::Lit { line, is_int: true }
            }
            (TokKind::Float, _) | (TokKind::Str, _) | (TokKind::Char, _) => {
                self.i += 1;
                Expr::Lit { line, is_int: false }
            }
            (TokKind::Lifetime, _) => {
                // Loop label: `'outer: loop { ... }`.
                self.i += 1;
                self.eat_punct(":");
                self.parse_primary(no_struct)
            }
            (TokKind::Punct, "(") => {
                self.i += 1;
                let mut elems = Vec::new();
                let mut saw_comma = false;
                loop {
                    let Some(t) = self.peek() else {
                        self.error("unclosed parenthesis");
                        break;
                    };
                    if t.is_punct(")") {
                        self.i += 1;
                        break;
                    }
                    if t.is_punct(",") {
                        saw_comma = true;
                        self.i += 1;
                        continue;
                    }
                    let before = self.i;
                    elems.push(self.parse_expr(false));
                    if self.i == before {
                        self.recovered.push(self.line());
                        self.i += 1;
                    }
                }
                if elems.len() == 1 && !saw_comma {
                    elems.pop().unwrap_or(Expr::Unknown { line })
                } else {
                    Expr::Tuple { elems, line }
                }
            }
            (TokKind::Punct, "[") => {
                self.i += 1;
                let mut elems = Vec::new();
                loop {
                    let Some(t) = self.peek() else {
                        self.error("unclosed array literal");
                        break;
                    };
                    if t.is_punct("]") {
                        self.i += 1;
                        break;
                    }
                    if t.is_punct(",") || t.is_punct(";") {
                        self.i += 1;
                        continue;
                    }
                    let before = self.i;
                    elems.push(self.parse_expr(false));
                    if self.i == before {
                        self.recovered.push(self.line());
                        self.i += 1;
                    }
                }
                Expr::Array { elems, line }
            }
            (TokKind::Punct, "{") => Expr::BlockExpr(self.parse_block()),
            (TokKind::Punct, "|") | (TokKind::Punct, "||") => {
                // Closure: skip parameters up to the closing `|`.
                if t.is_punct("||") {
                    self.i += 1;
                } else {
                    self.i += 1;
                    while let Some(t) = self.peek() {
                        if t.is_punct("|") {
                            self.i += 1;
                            break;
                        }
                        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                            self.skip_balanced();
                            continue;
                        }
                        if t.is_punct("<") {
                            self.skip_angles();
                            continue;
                        }
                        self.i += 1;
                    }
                }
                // Optional return type: `|x| -> T { .. }`.
                if self.at_punct("->") {
                    self.i += 1;
                    self.skip_type();
                }
                let body = self.parse_expr(false);
                Expr::Closure { body: Box::new(body), line }
            }
            (TokKind::Punct, "<") => {
                // Qualified path: `<T as Trait>::method(..)`.
                self.skip_angles();
                let mut segs = vec!["<qualified>".to_string()];
                while self.at_punct("::") {
                    self.i += 1;
                    if self.at_punct("<") {
                        self.skip_angles();
                        continue;
                    }
                    match self.peek() {
                        Some(t) if t.kind == TokKind::Ident => {
                            segs.push(t.text.clone());
                            self.i += 1;
                        }
                        _ => break,
                    }
                }
                self.finish_path(segs, line, no_struct)
            }
            (TokKind::Punct, "#") => {
                // Expression-position attribute (e.g. on a literal): skip.
                self.eat_attrs();
                self.parse_primary(no_struct)
            }
            (TokKind::Ident, "if") => self.parse_if(),
            (TokKind::Ident, "match") => self.parse_match(),
            (TokKind::Ident, "while") => {
                self.i += 1;
                let cond = self.parse_cond();
                let body = self.parse_block();
                Expr::While { cond: Box::new(cond), body, line }
            }
            (TokKind::Ident, "loop") => {
                self.i += 1;
                let body = self.parse_block();
                Expr::Loop { body, line }
            }
            (TokKind::Ident, "for") => {
                self.i += 1;
                // Skip the pattern up to `in` at depth zero.
                while let Some(t) = self.peek() {
                    if t.is_ident("in") {
                        self.i += 1;
                        break;
                    }
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        self.skip_balanced();
                        continue;
                    }
                    self.i += 1;
                }
                let iter = self.parse_expr(true);
                let body = self.parse_block();
                Expr::ForLoop { iter: Box::new(iter), body, line }
            }
            (TokKind::Ident, "unsafe") | (TokKind::Ident, "async") => {
                self.i += 1;
                self.eat_ident("move");
                if self.at_punct("{") {
                    Expr::BlockExpr(self.parse_block())
                } else {
                    self.parse_primary(no_struct)
                }
            }
            (TokKind::Ident, "move") => {
                self.i += 1;
                self.parse_primary(no_struct) // closure follows
            }
            (TokKind::Ident, "return" | "break" | "continue") => {
                self.i += 1;
                // Loop label on break/continue.
                if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.i += 1;
                }
                let value = if self.can_start_expr() {
                    Some(Box::new(self.parse_expr(no_struct)))
                } else {
                    None
                };
                Expr::Jump { value, line }
            }
            (TokKind::Ident, "let") => {
                // `let`-chain fragment inside a condition: `cond && let P = e`.
                self.i += 1;
                while let Some(t) = self.peek() {
                    if t.is_punct("=") {
                        self.i += 1;
                        break;
                    }
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        self.skip_balanced();
                        continue;
                    }
                    if t.is_punct("<") {
                        self.skip_angles();
                        continue;
                    }
                    if t.is_punct("&&") || t.is_punct("{") || t.is_punct(";") {
                        break;
                    }
                    self.i += 1;
                }
                self.parse_unary(no_struct)
            }
            (TokKind::Ident, _) => {
                let mut segs = vec![t.text.clone()];
                self.i += 1;
                while self.at_punct("::") {
                    self.i += 1;
                    if self.at_punct("<") {
                        self.skip_angles();
                        continue;
                    }
                    match self.peek() {
                        Some(t) if t.kind == TokKind::Ident => {
                            segs.push(t.text.clone());
                            self.i += 1;
                        }
                        _ => break,
                    }
                }
                // Macro invocation?
                if self.at_punct("!")
                    && self
                        .peek_at(1)
                        .is_some_and(|n| n.is_punct("(") || n.is_punct("[") || n.is_punct("{"))
                {
                    self.i += 1;
                    let name = segs.last().cloned().unwrap_or_default();
                    let args = if self.at_punct("{") {
                        // Brace macro bodies are frequently non-expression
                        // DSLs (`proptest! { .. }`): skip, don't parse.
                        self.skip_balanced();
                        Vec::new()
                    } else if self.at_punct("(") {
                        self.parse_macro_args(")")
                    } else {
                        self.parse_macro_args("]")
                    };
                    return Expr::Macro { name, args, line };
                }
                self.finish_path(segs, line, no_struct)
            }
            _ => {
                self.recovered.push(line);
                self.i += 1;
                Expr::Unknown { line }
            }
        }
    }

    /// A parsed path: struct literal when allowed and followed by `{`,
    /// plain path otherwise.
    fn finish_path(&mut self, segs: Vec<String>, line: u32, no_struct: bool) -> Expr {
        if !no_struct && self.at_punct("{") {
            self.i += 1;
            let mut fields = Vec::new();
            loop {
                let Some(t) = self.peek() else {
                    self.error("unclosed struct literal");
                    break;
                };
                if t.is_punct("}") {
                    self.i += 1;
                    break;
                }
                if t.is_punct(",") {
                    self.i += 1;
                    continue;
                }
                if t.is_punct("..") {
                    // Functional update: `..base`.
                    self.i += 1;
                    if self.can_start_expr() {
                        fields.push(self.parse_expr(false));
                    }
                    continue;
                }
                // `name: expr` or shorthand `name`.
                if t.kind == TokKind::Ident && self.peek_at(1).is_some_and(|n| n.is_punct(":")) {
                    self.i += 2;
                }
                let before = self.i;
                fields.push(self.parse_expr(false));
                if self.i == before {
                    self.recovered.push(self.line());
                    self.i += 1;
                }
            }
            return Expr::StructLit { segs, fields, line };
        }
        Expr::Path { segs, line }
    }

    /// An `if`/`while` condition (or `if let` / `while let` scrutinee):
    /// struct literals are suppressed; `let` patterns are skipped down to
    /// their scrutinee.
    fn parse_cond(&mut self) -> Expr {
        if self.at_ident("let") {
            self.i += 1;
            // Skip the pattern to the `=` at depth zero.
            while let Some(t) = self.peek() {
                if t.is_punct("=") {
                    self.i += 1;
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    self.skip_balanced();
                    continue;
                }
                if t.is_punct("<") {
                    self.skip_angles();
                    continue;
                }
                self.i += 1;
            }
        }
        self.parse_expr(true)
    }

    fn parse_if(&mut self) -> Expr {
        let line = self.line();
        self.i += 1; // `if`
        let cond = self.parse_cond();
        let then_block = self.parse_block();
        let mut else_expr = None;
        if self.eat_ident("else") {
            if self.at_ident("if") {
                else_expr = Some(Box::new(self.parse_if()));
            } else if self.at_punct("{") {
                else_expr = Some(Box::new(Expr::BlockExpr(self.parse_block())));
            } else {
                self.error("`else` without a block or `if`");
            }
        }
        Expr::If { cond: Box::new(cond), then_block, else_expr, line }
    }

    fn parse_match(&mut self) -> Expr {
        let line = self.line();
        self.i += 1; // `match`
        let scrutinee = self.parse_expr(true);
        let mut arms = Vec::new();
        if !self.eat_punct("{") {
            self.error("`match` without a body");
            return Expr::Match { scrutinee: Box::new(scrutinee), arms, line };
        }
        loop {
            let Some(t) = self.peek() else {
                self.error("unclosed match body");
                break;
            };
            if t.is_punct("}") {
                self.i += 1;
                break;
            }
            if t.is_punct(",") || t.is_punct("|") {
                self.i += 1;
                continue;
            }
            self.eat_attrs();
            let arm_line = self.line();
            let pat = self.parse_arm_pattern();
            if !self.eat_punct("=>") {
                // Malformed arm: resynchronize at the next `,` / `}`.
                self.recovered.push(self.line());
                while let Some(t) = self.peek() {
                    if t.is_punct(",") || t.is_punct("}") {
                        break;
                    }
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        self.skip_balanced();
                        continue;
                    }
                    self.i += 1;
                }
                continue;
            }
            let body = if self.at_block_like() {
                // Arm-position: a block-like body ends the arm (same
                // `.`/`?` continuation rule as statement position).
                let e = self.parse_primary(false);
                if self.at_punct(".") || self.at_punct("?") {
                    self.postfix_chain(e)
                } else {
                    e
                }
            } else {
                self.parse_expr(false)
            };
            arms.push(Arm { pat, body, line: arm_line });
        }
        Expr::Match { scrutinee: Box::new(scrutinee), arms, line }
    }

    /// Scan one arm pattern up to its `=>` (exclusive), classifying the
    /// top-level shape. Guards (`if ...`) end the pattern proper.
    fn parse_arm_pattern(&mut self) -> Pat {
        let mut toks: Vec<&Token> = Vec::new();
        // Collect the pattern tokens at depth zero; payloads are skipped
        // but their presence is irrelevant to the classification.
        let mut saw_payload = false;
        while let Some(t) = self.peek() {
            if t.is_punct("=>") {
                break;
            }
            if t.is_ident("if") {
                // Guard: consume its expression, then stop at `=>`.
                self.i += 1;
                let _ = self.parse_expr(true);
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                saw_payload = toks.iter().any(|t| t.kind == TokKind::Ident);
                self.skip_balanced();
                continue;
            }
            if t.is_punct("<") && toks.last().is_some_and(|p| p.is_punct("::")) {
                self.skip_angles();
                continue;
            }
            if t.is_punct(",") || t.is_punct("}") {
                break;
            }
            toks.push(t);
            self.i += 1;
        }
        classify_pattern(&toks, saw_payload)
    }
}

/// Classify a collected top-level arm pattern.
fn classify_pattern(toks: &[&Token], _saw_payload: bool) -> Pat {
    // Strip binding prefixes `name @`, `ref`, `mut`, leading `&`.
    let mut toks: Vec<&Token> = toks.to_vec();
    if let Some(at) = toks.iter().position(|t| t.is_punct("@")) {
        toks.drain(..=at);
    }
    while toks.first().is_some_and(|t| {
        t.is_ident("ref") || t.is_ident("mut") || t.is_punct("&") || t.is_punct("&&")
    }) {
        toks.remove(0);
    }
    if toks.is_empty() {
        return Pat::Other;
    }
    if toks.len() == 1 && toks[0].is_ident("_") {
        return Pat::Wild;
    }
    // Or-patterns: split on `|` and classify each alternative; paths win.
    let mut paths: Vec<Vec<String>> = Vec::new();
    let mut has_wild = false;
    let mut single_binding: Option<String> = None;
    for alt in toks.split(|t| t.is_punct("|")) {
        if alt.is_empty() {
            continue;
        }
        if alt.len() == 1 && alt[0].is_ident("_") {
            has_wild = true;
            continue;
        }
        // A path alternative: idents joined by `::`.
        let mut segs = Vec::new();
        let mut ok = true;
        for (k, t) in alt.iter().enumerate() {
            if k % 2 == 0 {
                if t.kind == TokKind::Ident && !t.is_ident("_") {
                    segs.push(t.text.clone());
                } else {
                    ok = false;
                    break;
                }
            } else if !t.is_punct("::") {
                ok = false;
                break;
            }
        }
        if ok && !segs.is_empty() {
            if segs.len() == 1 {
                let lower = segs[0].chars().next().is_some_and(char::is_lowercase);
                if lower {
                    single_binding = Some(segs[0].clone());
                } else {
                    // `None`, `Ack`-style unit variants in scope.
                    paths.push(segs);
                }
            } else {
                paths.push(segs);
            }
        } else {
            return Pat::Other;
        }
    }
    if !paths.is_empty() {
        return Pat::Variants(paths);
    }
    if has_wild {
        return Pat::Wild;
    }
    if let Some(b) = single_binding {
        return Pat::Binding(b);
    }
    Pat::Other
}

/// Is this attribute token run (between `[` and `]`) test-gating?
fn attr_is_test(inner: &[Token]) -> bool {
    if inner.len() == 1 && inner[0].is_ident("test") {
        return true;
    }
    if inner.first().map(|t| t.is_ident("cfg") || t.is_ident("cfg_attr")) != Some(true) {
        return false;
    }
    for (j, t) in inner.iter().enumerate() {
        if t.is_ident("test") {
            let negated = j >= 2 && inner[j - 1].is_punct("(") && inner[j - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Item, Pat, Stmt};
    use crate::lexer::lex;

    fn parse(src: &str) -> ParseOutcome {
        parse_file(&lex(src))
    }

    fn first_fn(out: &ParseOutcome) -> &crate::ast::Function {
        for item in &out.file.items {
            if let Item::Fn(f) = item {
                return f;
            }
        }
        panic!("no function parsed");
    }

    #[test]
    fn parses_items_and_bodies() {
        let out = parse(
            r#"
            use std::collections::BTreeMap;
            pub struct S { x: u32 }
            pub enum E { A, B(u32), C { f: f64 } }
            impl S {
                pub fn get(&self) -> u32 { self.x }
            }
            mod inner {
                pub fn helper(v: &[u8]) -> u8 { v[0] }
            }
            fn free<T: Clone>(t: T) -> T where T: Copy { t }
            "#,
        );
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert!(out.recovered.is_empty(), "recovered at {:?}", out.recovered);
        let names: Vec<&str> = out
            .file
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Enum(e) => Some(e.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["E"]);
        if let Some(Item::Enum(e)) = out
            .file
            .items
            .iter()
            .find(|i| matches!(i, Item::Enum(_)))
        {
            assert_eq!(e.variants, ["A", "B", "C"]);
        }
    }

    #[test]
    fn expression_shapes() {
        let out = parse(
            "fn f(xs: &[u32], m: &std::collections::BTreeMap<u64, u32>) -> u32 {\n\
                 let a = xs[0] + m[&3] * 2;\n\
                 let b = xs.get(1).copied().unwrap_or(0);\n\
                 a - b\n\
             }\n",
        );
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let f = first_fn(&out);
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 3);
        // `xs[0] + m[&3] * 2` — top-level binary `+` with an index inside.
        let Stmt::Let { init: Some(e), name, .. } = &body.stmts[0] else {
            panic!("expected let")
        };
        assert_eq!(name.as_deref(), Some("a"));
        let Expr::Binary { op, .. } = e else { panic!("expected binary, got {e:?}") };
        assert_eq!(op, "+");
    }

    #[test]
    fn match_arms_classified() {
        let out = parse(
            "fn f(r: R) -> u32 {\n\
                 match r {\n\
                     R::A => 1,\n\
                     R::B(x) | R::C { y } => 2,\n\
                     other => 3,\n\
                 }\n\
             }\n\
             fn g(r: R) -> u32 { match r { R::A => 1, _ => 0 } }\n",
        );
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let f = first_fn(&out);
        let Some(Stmt::Expr(Expr::Match { arms, .. })) =
            f.body.as_ref().and_then(|b| b.stmts.first())
        else {
            panic!("expected match")
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].pat, Pat::Variants(vec![vec!["R".into(), "A".into()]]));
        assert_eq!(
            arms[1].pat,
            Pat::Variants(vec![
                vec!["R".into(), "B".into()],
                vec!["R".into(), "C".into()]
            ])
        );
        assert_eq!(arms[2].pat, Pat::Binding("other".into()));
    }

    #[test]
    fn closures_ranges_casts_turbofish() {
        let out = parse(
            "fn f(v: Vec<u32>) -> Vec<u64> {\n\
                 let total = v.iter().map(|x| *x as u64).sum::<u64>();\n\
                 let s = &v[1..v.len() - 1];\n\
                 let t = (total, s.len());\n\
                 if let Some(first) = v.first() { let _ = first; }\n\
                 v.into_iter().map(u64::from).collect::<Vec<_>>()\n\
             }\n",
        );
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert!(out.recovered.is_empty(), "recovered at {:?}", out.recovered);
    }

    #[test]
    fn struct_literals_vs_condition_blocks() {
        let out = parse(
            "fn f(x: u32) -> S {\n\
                 if x > 0 { return S { x }; }\n\
                 while x < 10 { break; }\n\
                 for i in 0..x { let _ = i; }\n\
                 S { x: x + 1 }\n\
             }\n",
        );
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert!(out.recovered.is_empty(), "recovered at {:?}", out.recovered);
    }

    #[test]
    fn let_else_and_macros() {
        let out = parse(
            "fn f(o: Option<u32>) -> u32 {\n\
                 let Some(v) = o else { return 0; };\n\
                 let w = vec![v; 3];\n\
                 assert_eq!(w.len(), 3);\n\
                 panic!(\"boom {v}\");\n\
             }\n",
        );
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let f = first_fn(&out);
        let body = f.body.as_ref().expect("body");
        assert!(matches!(&body.stmts[0], Stmt::Let { else_block: Some(_), .. }));
        let macros: Vec<&str> = body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Expr(Expr::Macro { name, .. }) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(macros, ["assert_eq", "panic"]);
    }

    #[test]
    fn test_gating_detected() {
        let out = parse(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(true); }\n}\n\
             fn lib() {}\n",
        );
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let Some(Item::Mod(m)) = out.file.items.iter().find(|i| matches!(i, Item::Mod(_)))
        else {
            panic!("expected mod")
        };
        assert!(m.is_test);
    }
}

//! Findings, stable rule codes, `--explain` documentation and JSON output.

use std::fmt;

/// Stable rule codes. The numeric part never changes once shipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// RUSH-L001 — determinism: no hash-order iteration in deterministic crates.
    Determinism,
    /// RUSH-L002 — float hygiene: no `==`/`!=` on floats, no `partial_cmp().unwrap()`.
    FloatHygiene,
    /// RUSH-L003 — panic hygiene: no `unwrap`/`expect`/`panic!` in library code.
    PanicHygiene,
    /// RUSH-L004 — feature-gate hygiene: `cfg(feature = ...)` must be declared.
    FeatureGate,
    /// RUSH-L005 — shim drift: only use the API the vendored shims implement.
    ShimDrift,
    /// RUSH-L006 — planner layering: `compute_plan_cached`/`PlanCache` are
    /// kernel-internal; adapters go through `rush_planner::PlannerCore`.
    PlannerLayering,
    /// RUSH-L007 — full rebuild: `compute_plan`/`peel`/`map_continuous` are
    /// oracle/bench entry points; steady-state callers use the delta path.
    FullRebuild,
    /// RUSH-L008 — shard isolation: per-shard planner state is reached only
    /// through the `ShardedPlanner` API, never via raw `shard_core` handles.
    ShardIsolation,
    /// RUSH-L009 — panic reachability (deep): no panic path reachable from
    /// the daemon's declared entry points on the workspace call graph.
    PanicReachability,
    /// RUSH-L010 — arithmetic hygiene (deep): unchecked `+`/`-`/`*` on
    /// slot/capacity integers in kernel crates.
    ArithHygiene,
    /// RUSH-L011 — lock discipline (deep): consistent acquisition order;
    /// no lock held across I/O or planner fan-out.
    LockDiscipline,
    /// RUSH-L012 — protocol exhaustiveness (deep): every protocol-enum
    /// variant handled on every declared protocol surface, no wildcards.
    ProtocolExhaustiveness,
    /// RUSH-L013 — reactor discipline (deep): no blocking call reachable
    /// from a declared reactor event loop; declared codec files panic-free.
    ReactorDiscipline,
    /// RUSH-L014 — capacity fence (deep): cluster capacity is mutated only
    /// by the crates that own it (the planner event path and the sim
    /// engine); adapters route resizes through `PlannerEvent::CapacityChange`.
    CapacityFence,
}

/// All rules, in code order.
pub const ALL_RULES: &[Rule] = &[
    Rule::Determinism,
    Rule::FloatHygiene,
    Rule::PanicHygiene,
    Rule::FeatureGate,
    Rule::ShimDrift,
    Rule::PlannerLayering,
    Rule::FullRebuild,
    Rule::ShardIsolation,
    Rule::PanicReachability,
    Rule::ArithHygiene,
    Rule::LockDiscipline,
    Rule::ProtocolExhaustiveness,
    Rule::ReactorDiscipline,
    Rule::CapacityFence,
];

/// The rules that only run under `cargo xtask lint --deep` (they need the
/// AST + call-graph model, not just the token stream).
pub const DEEP_RULES: &[Rule] = &[
    Rule::PanicReachability,
    Rule::ArithHygiene,
    Rule::LockDiscipline,
    Rule::ProtocolExhaustiveness,
    Rule::ReactorDiscipline,
    Rule::CapacityFence,
];

impl Rule {
    /// The stable `RUSH-LNNN` code.
    pub fn code(self) -> &'static str {
        match self {
            Rule::Determinism => "RUSH-L001",
            Rule::FloatHygiene => "RUSH-L002",
            Rule::PanicHygiene => "RUSH-L003",
            Rule::FeatureGate => "RUSH-L004",
            Rule::ShimDrift => "RUSH-L005",
            Rule::PlannerLayering => "RUSH-L006",
            Rule::FullRebuild => "RUSH-L007",
            Rule::ShardIsolation => "RUSH-L008",
            Rule::PanicReachability => "RUSH-L009",
            Rule::ArithHygiene => "RUSH-L010",
            Rule::LockDiscipline => "RUSH-L011",
            Rule::ProtocolExhaustiveness => "RUSH-L012",
            Rule::ReactorDiscipline => "RUSH-L013",
            Rule::CapacityFence => "RUSH-L014",
        }
    }

    /// Parse a `RUSH-LNNN` code (case-insensitive).
    pub fn from_code(code: &str) -> Option<Rule> {
        let c = code.to_ascii_uppercase();
        ALL_RULES.iter().copied().find(|r| r.code() == c)
    }

    /// One-line summary used in finding output.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::Determinism => "hash-ordered collection in a determinism-critical crate",
            Rule::FloatHygiene => "float comparison hazard",
            Rule::PanicHygiene => "panic path in library code",
            Rule::FeatureGate => "cfg(feature) names an undeclared feature",
            Rule::ShimDrift => "API not implemented by the vendored shim",
            Rule::PlannerLayering => "planner-kernel internals used outside rush-planner",
            Rule::FullRebuild => "full-rebuild CA entry point used outside rush-core",
            Rule::ShardIsolation => "per-shard planner state reached outside rush-planner",
            Rule::PanicReachability => "panic path reachable from a daemon entry point",
            Rule::ArithHygiene => "unchecked slot/capacity arithmetic in kernel code",
            Rule::LockDiscipline => "lock-order or held-across-I/O hazard",
            Rule::ProtocolExhaustiveness => "protocol enum variant not exhaustively handled",
            Rule::ReactorDiscipline => "blocking call or panic in reactor/codec hot path",
            Rule::CapacityFence => "direct capacity mutation outside the planner event path",
        }
    }

    /// Long-form documentation for `--explain`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::Determinism => {
                "RUSH-L001: determinism\n\
                 \n\
                 The fast CA pipeline and the event-indexed simulation engine are both\n\
                 validated against naive twins by *bit-identical* differential tests.\n\
                 Iterating a `HashMap`/`HashSet` yields platform- and run-dependent order,\n\
                 which silently breaks that property. In crates marked\n\
                 `[package.metadata.rush-lint] deterministic = true` (rush-core, rush-sim,\n\
                 rush-prob), non-test code must not name `HashMap`/`HashSet` or import\n\
                 `std::collections::hash_map`/`hash_set`. Use `BTreeMap`/`BTreeSet`, `Vec`,\n\
                 or index-keyed structures instead.\n\
                 \n\
                 A map that is provably never iterated (pure point lookups) may be kept\n\
                 with a pragma on the line:  // rush-lint: allow(RUSH-L001): <why>\n"
            }
            Rule::FloatHygiene => {
                "RUSH-L002: float hygiene\n\
                 \n\
                 `==`/`!=` against float literals is almost always a rounding bug in the\n\
                 REM/WCDE/onion math; compare against a tolerance or restructure.\n\
                 `partial_cmp(..).unwrap()`/`.expect(..)` panics on NaN and orders\n\
                 `-0.0`/`+0.0` unstably across refactors — use `f64::total_cmp`, which is a\n\
                 total order and cannot panic.\n\
                 \n\
                 Limitation (token-level analyzer): only comparisons with a float *literal*\n\
                 operand are detected; variable-vs-variable float equality is not.\n\
                 Intentional exact comparisons (e.g. sentinel values) take a pragma:\n\
                 // rush-lint: allow(RUSH-L002): <why>\n"
            }
            Rule::PanicHygiene => {
                "RUSH-L003: panic hygiene\n\
                 \n\
                 Library code (non-test, non-bench, non-bin) of the algorithm crates marked\n\
                 `[package.metadata.rush-lint] library-hygiene = true` must not call\n\
                 `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` or index\n\
                 slices with bare integer literals. Return `Result`/`Option` instead, or\n\
                 document the bound.\n\
                 \n\
                 Grandfathered sites live in the checked-in allowlist `xtask-lint.allow`\n\
                 (format: CODE|path-suffix|line-substring|justification). New sites need a\n\
                 pragma with a justification:  // rush-lint: allow(RUSH-L003): <why>\n\
                 Integer-literal indexing is accepted when the line (or the line above)\n\
                 carries a `bound:`-style comment explaining why it cannot be out of range.\n"
            }
            Rule::FeatureGate => {
                "RUSH-L004: feature-gate hygiene\n\
                 \n\
                 Every `#[cfg(feature = \"name\")]` / `#[cfg_attr(feature = \"name\", ..)]`\n\
                 and `cfg!(feature = \"name\")` must name a feature declared in that crate's\n\
                 `Cargo.toml` `[features]` table (or an implicit optional-dependency\n\
                 feature). A typo here silently compiles the gated code out forever —\n\
                 rustc only warns under `-W unexpected_cfgs` with extra configuration,\n\
                 and the offline container has no external linting.\n"
            }
            Rule::ShimDrift => {
                "RUSH-L005: shim drift\n\
                 \n\
                 The workspace vendors minimal offline shims for `rand`, `proptest` and\n\
                 `criterion` (the container cannot reach a registry). The shims implement a\n\
                 deliberate subset of the upstream API. This rule lexes the shim sources to\n\
                 collect the names they actually define and flags any `rand::...`,\n\
                 `proptest::...` or `criterion::...` path whose segments are not in that\n\
                 set, plus a curated denylist of well-known upstream API the shims omit\n\
                 (`thread_rng`, `shuffle`, `choose`, `StdRng`, `from_entropy`, ...).\n\
                 Either extend the shim or stay inside the implemented subset.\n"
            }
            Rule::PlannerLayering => {
                "RUSH-L006: planner layering\n\
                 \n\
                 The event-driven planner kernel (`rush-planner`) is the single owner of\n\
                 the CA pipeline's incremental machinery: the `PlanCache` memo table and\n\
                 the `compute_plan_cached` entry point it feeds. Adapters (the simulator\n\
                 scheduler, the `rushd` daemon, the CLI) must drive planning through\n\
                 `rush_planner::PlannerCore` — never by calling `compute_plan_cached` or\n\
                 holding a `PlanCache` of their own. A second cache outside the kernel\n\
                 reintroduces exactly the duplicated freshness/invalidation state the\n\
                 kernel refactor removed, and its hit/miss counters silently diverge\n\
                 from the ones `stats` reports.\n\
                 \n\
                 The rule flags any reference to `compute_plan_cached` or `PlanCache` in\n\
                 non-test library code of crates other than `rush-planner` and\n\
                 `rush-core` (which defines them). Test code, benches and binaries are\n\
                 exempt, as are the two owning crates. If a new layer legitimately needs\n\
                 the raw cache, put it behind a kernel API instead, or justify the site:\n\
                 // rush-lint: allow(RUSH-L006): <why>\n"
            }
            Rule::FullRebuild => {
                "RUSH-L007: full rebuild\n\
                 \n\
                 Delta-peeling made the incremental path (`compute_plan_incremental`,\n\
                 `peel_incremental`, `map_continuous_incremental`) the only planner-facing\n\
                 entry into the CA pipeline: steady-state replans patch the previous\n\
                 onion layering and mapping instead of recomputing them, which is what\n\
                 takes a 1000-job replan from tens of milliseconds to under one. The\n\
                 batch entry points — `compute_plan`, the full `onion::peel`, and\n\
                 `map_continuous` — exist as the differential oracle the delta path is\n\
                 proven bit-identical against, and as bench baselines. An adapter that\n\
                 calls them on the hot path silently forfeits the entire speedup and\n\
                 bypasses the cache-coherence invariants the kernel maintains.\n\
                 \n\
                 The rule flags any reference to `compute_plan`, `peel` or\n\
                 `map_continuous` in non-test library code of crates other than\n\
                 `rush-core` (which owns the full pipeline and the naive oracle).\n\
                 Test code, benches and binaries are exempt — differential suites and\n\
                 figure reproductions are exactly where the full rebuild belongs. A\n\
                 cold-start or recovery path that genuinely needs a from-scratch plan\n\
                 should seed a fresh `PlanState` and go through the kernel, or justify\n\
                 the site:  // rush-lint: allow(RUSH-L007): <why>\n"
            }
            Rule::ShardIsolation => {
                "RUSH-L008: shard isolation\n\
                 \n\
                 `ShardedPlanner` partitions the job registry across per-shard\n\
                 `PlannerCore` instances and owns every invariant that makes the split\n\
                 sound: label-hash routing, globally unique job ids, capacity slices\n\
                 that sum to the configured total, and the periodic headroom-driven\n\
                 rebalance. `shard_core(i)` exists so tests and diagnostics can inspect\n\
                 one shard, but an adapter that holds a per-shard handle is coupled to\n\
                 the current partition: the rebalancer may resize the slice, a cancel\n\
                 may drop the job it cached, and any state derived from one shard\n\
                 silently goes stale without the wrapper's freshness tracking.\n\
                 \n\
                 The rule flags any reference to `shard_core` in non-test library code\n\
                 of crates other than `rush-planner` (which defines the sharded\n\
                 wrapper). Test code, benches and binaries are exempt — the invariant\n\
                 suites and the fig5 sweep are exactly where per-shard inspection\n\
                 belongs. Adapters route events and read merged state through the\n\
                 `ShardedPlanner` API (`admit`, `ingest_sample`, `plan_at`, `planned`,\n\
                 `jobs`, `slices`, `headrooms`); a genuinely missing view should become\n\
                 a wrapper method, or justify the site:\n\
                 // rush-lint: allow(RUSH-L008): <why>\n"
            }
            Rule::PanicReachability => {
                "RUSH-L009: panic reachability (deep)\n\
                 \n\
                 RUSH's robustness guarantees (Theorems 2/3) only hold if the daemon\n\
                 survives every request: a panic mid-epoch tears down a connection\n\
                 worker or the planner thread and silently drops committed work. This\n\
                 rule parses the whole workspace (the from-scratch recursive-descent\n\
                 parser over the lint lexer), builds a name-based call graph, and walks\n\
                 it from the entry points each crate declares in\n\
                 `[package.metadata.rush-lint] entry-points = [\"connection_loop\", ...]`\n\
                 (for rush-serve: the per-connection handler and the epoch planner\n\
                 loop). Any `panic!`-family macro, `.unwrap()`, `.expect(..)` or\n\
                 non-range `[]`-index reachable on that graph in non-test library code\n\
                 is reported together with one call path that reaches it.\n\
                 \n\
                 Resolution is deliberately over-approximate (a `.m()` call may target\n\
                 any method named `m`), which is sound for reachability: it can only\n\
                 claim more code reachable, never miss a path. Bare `[]`-indexing is\n\
                 reported only inside crates that declare entry points; integer-literal\n\
                 indexes justified by a `bound:` comment are accepted, as are sites\n\
                 covered by existing RUSH-L003 pragmas or allowlist entries — the two\n\
                 rules share the panic-hygiene escape hatch:\n\
                 // rush-lint: allow(RUSH-L009): <why>\n"
            }
            Rule::ArithHygiene => {
                "RUSH-L010: slot/capacity arithmetic hygiene (deep)\n\
                 \n\
                 Slot counts and capacity totals are the load-bearing integers of the\n\
                 planner: the sharded capacity slices must sum to `C`, the onion peel\n\
                 trusts committed-prefix demand, and an unchecked subtraction that\n\
                 wraps (or an addition that overflows) corrupts every downstream\n\
                 admission decision without failing loudly in release builds. In\n\
                 crates opting in via `[package.metadata.rush-lint] arith-hygiene =\n\
                 true` (rush-core, rush-planner), this rule walks every parsed\n\
                 function body and flags bare `+`, `-`, `*`, `+=`, `-=`, `*=` where\n\
                 either operand is a path or field whose name mentions `slot` or\n\
                 `capacity`.\n\
                 \n\
                 Use `checked_sub`/`checked_add`/`saturating_*` (or restructure so the\n\
                 invariant is explicit) instead. A site whose bounds are genuinely\n\
                 guaranteed by a maintained invariant carries a pragma with the\n\
                 justification:  // rush-lint: allow(RUSH-L010): <why>\n"
            }
            Rule::LockDiscipline => {
                "RUSH-L011: lock discipline (deep)\n\
                 \n\
                 The sharded daemon runs one planner thread per shard plus a thread\n\
                 per connection; a deadlock freezes every epoch deadline at once, and\n\
                 a lock held across socket I/O lets one slow client stall unrelated\n\
                 requests. This rule runs a small dataflow over each parsed function:\n\
                 `let g = x.lock()/.read()/.write()` (zero-argument, so `io::Read`/\n\
                 `io::Write` calls don't alias) starts a held region that ends at\n\
                 scope exit or `drop(g)`. Two checks follow:\n\
                 \n\
                 1. Acquisition order: every (held → acquired) pair feeds a global\n\
                    order graph; a cycle (lock A taken before B on one path, B before\n\
                    A on another) is reported with both witness sites.\n\
                 2. Held-across-blocking: a call to socket/stream I/O (`write_all`,\n\
                    `read_line`, `flush`, ...) or planner fan-out (`plan_at`,\n\
                    `plan_roster`) while any guard is live is reported.\n\
                 \n\
                 The workspace currently sidesteps locks entirely (channels + owned\n\
                 state per thread) — this rule is the fence that keeps future shared-\n\
                 state shortcuts honest. Intentional exceptions take a pragma:\n\
                 // rush-lint: allow(RUSH-L011): <why>\n"
            }
            Rule::ProtocolExhaustiveness => {
                "RUSH-L012: protocol-match exhaustiveness (deep)\n\
                 \n\
                 The wire protocol is versioned and about to grow a second (binary)\n\
                 codec; a `Request`/`Response` variant that one surface forgets is a\n\
                 silent drift bug that only shows up as a live daemon rejecting or\n\
                 mis-framing traffic. Crates declare their protocol enums and the\n\
                 surfaces that must stay in lockstep in\n\
                 `[package.metadata.rush-lint]`:\n\
                 protocol-enums = [\"Request\", \"Response\"]\n\
                 protocol-surfaces = [\"src/protocol.rs\", \"src/server.rs\", ...]\n\
                 \n\
                 Two checks per surface: (1) token-level coverage — every declared\n\
                 variant must appear as `Enum::Variant` somewhere in the surface's\n\
                 non-test code (constructing, matching, or encoding it); (2) AST-level\n\
                 wildcard fencing — a `match` whose arms name protocol-enum variants\n\
                 must not also contain a bare `_` arm, because a wildcard silently\n\
                 swallows the next variant added. A named catch-all binding (e.g.\n\
                 `other => fail(other)`) stays allowed: it is explicit in the source\n\
                 and typically routes to an error path. Genuine don't-care surfaces\n\
                 take a pragma:  // rush-lint: allow(RUSH-L012): <why>\n"
            }
            Rule::ReactorDiscipline => {
                "RUSH-L013: reactor discipline (deep)\n\
                 \n\
                 The epoll frontend multiplexes thousands of connections onto a handful\n\
                 of event-loop threads. One blocking call anywhere in a loop's call\n\
                 graph — a `sleep`, a channel `recv`, a `join`, or buffered stream I/O\n\
                 like `write_all`/`read_line` — stalls *every* connection that loop\n\
                 owns, turning a single slow peer into whole-daemon tail latency. And a\n\
                 panic inside the wire codec tears the loop down entirely. Crates\n\
                 declare their loops and their panic-free files in\n\
                 `[package.metadata.rush-lint]`:\n\
                 reactor-loops = [\"Reactor::run\", \"Engine::drive\"]\n\
                 panic-free = [\"src/binary.rs\"]\n\
                 \n\
                 Two checks: (1) the rule reuses the RUSH-L009 name-based call graph\n\
                 and walks it from every function matching a `reactor-loops` entry\n\
                 (`Type::name` matches a method of `Type`; a bare name matches any\n\
                 function with that name in the declaring crate); any reachable call\n\
                 to a blocking primitive (`sleep`, `recv`, `recv_timeout`, `join`,\n\
                 `park`, `park_timeout`, `write_all`, `write_fmt`, `read_exact`,\n\
                 `read_line`, `read_to_end`, `read_to_string`) is reported with one\n\
                 witness path. Nonblocking-by-construction calls (`send` on an\n\
                 unbounded channel, `epoll_wait` with a timeout, raw `read`/`write`\n\
                 on a nonblocking fd) stay allowed. (2) every non-test function in a\n\
                 `panic-free` file must itself be panic-free: no `panic!`-family\n\
                 macro, `.unwrap()`, `.expect(..)` or non-range `[]`-indexing\n\
                 (integer-literal indexes justified by a `bound:` comment are\n\
                 accepted, as under RUSH-L003/L009). The codec runs on the event\n\
                 loop against attacker-controlled bytes; \"returns WireError, never\n\
                 panics\" is its load-bearing contract.\n\
                 \n\
                 Resolution is over-approximate (a `.m()` call may target any method\n\
                 named `m` in the workspace), which is sound for reachability. Where\n\
                 that over-approximation misfires, rename the colliding function or\n\
                 justify the site:  // rush-lint: allow(RUSH-L013): <why>\n"
            }
            Rule::CapacityFence => {
                "RUSH-L014: capacity fence (deep)\n\
                 \n\
                 Dynamic cluster capacity (tiered supply, spot revocation, restock)\n\
                 flows through exactly one seam per layer: the simulator's typed\n\
                 capacity-event queue mutates the free pool (`FreePool::revoke`/\n\
                 `restore`), and the planner kernel resizes itself when\n\
                 `PlannerEvent::CapacityChange` reaches `apply` — which re-splits the\n\
                 shard slices, re-admits against the shrunk prefix capacity and feeds\n\
                 the delta-peel divergence machinery. An adapter that calls\n\
                 `set_capacity` (or the pool mutators) directly skips all of that:\n\
                 admission keeps trusting a stale capacity, the rebalancer's slice\n\
                 invariant (slices sum to C) silently breaks, and the replan does a\n\
                 full rebuild instead of a delta patch.\n\
                 \n\
                 Crates that own a capacity seam declare it in their manifest:\n\
                 [package.metadata.rush-lint]\n\
                 capacity-authority = true   (rush-planner, rush-sim)\n\
                 \n\
                 This rule walks every parsed non-test library function in crates\n\
                 *without* that declaration and flags any call to `set_capacity`,\n\
                 `revoke` or `restore`. Resolution is name-based and deliberately\n\
                 over-approximate, like RUSH-L009/L013: a `.set_capacity(..)` call on\n\
                 a wire client is still reported, because at the lint's resolution it\n\
                 is indistinguishable from a kernel mutation. Sanctioned adapters —\n\
                 e.g. the serve dispatcher lowering a `set-capacity` request onto\n\
                 `ServeState::set_capacity`, which itself applies\n\
                 `PlannerEvent::CapacityChange` — justify the site with a pragma:\n\
                 // rush-lint: allow(RUSH-L014): <why>\n\
                 Tests, benches and binaries are exempt; so are the vendored shims.\n"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A single lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Path relative to the scan root (always with `/` separators).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// The result of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, code).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of crates scanned.
    pub crates_scanned: usize,
    /// Findings suppressed by pragma or allowlist (for the summary line).
    pub suppressed: usize,
    /// The deep (AST + call-graph) pass ran.
    pub deep: bool,
    /// Wall-clock time of the whole lint run, in milliseconds.
    pub wall_ms: u64,
}

impl Report {
    /// Sort findings into a stable order.
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            a.file
                .cmp(&b.file)
                .then(a.line.cmp(&b.line))
                .then(a.rule.code().cmp(b.rule.code()))
        });
    }

    /// Render the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {} {}: {}\n",
                f.file,
                f.line,
                f.rule.code(),
                f.rule.summary(),
                f.message
            ));
        }
        out.push_str(&format!(
            "lint{}: {} finding(s) in {} file(s) across {} crate(s) ({} suppressed, {} ms)\n",
            if self.deep { " --deep" } else { "" },
            self.findings.len(),
            self.files_scanned,
            self.crates_scanned,
            self.suppressed,
            self.wall_ms
        ));
        out
    }

    /// Render the report as JSON (hand-rolled; no serde in the toolchain).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"code\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(f.rule.code()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let mut counts: Vec<(Rule, usize)> = ALL_RULES.iter().map(|&r| (r, 0usize)).collect();
        for f in &self.findings {
            if let Some(c) = counts.iter_mut().find(|(r, _)| *r == f.rule) {
                c.1 += 1;
            }
        }
        out.push_str("  \"counts\": {");
        out.push_str(
            &counts
                .iter()
                .map(|(r, c)| format!("{}: {}", json_str(r.code()), c))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"files_scanned\": {},\n  \"crates_scanned\": {},\n  \"suppressed\": {},\n  \"deep\": {},\n  \"wall_ms\": {},\n  \"total\": {}\n}}\n",
            self.files_scanned,
            self.crates_scanned,
            self.suppressed,
            self.deep,
            self.wall_ms,
            self.findings.len()
        ));
        out
    }
}

/// Escape a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for &r in ALL_RULES {
            assert_eq!(Rule::from_code(r.code()), Some(r));
        }
        assert_eq!(Rule::from_code("rush-l001"), Some(Rule::Determinism));
        assert_eq!(Rule::from_code("RUSH-L999"), None);
    }

    #[test]
    fn json_escapes() {
        let mut rep = Report::default();
        rep.findings.push(Finding {
            rule: Rule::FloatHygiene,
            file: "a \"b\".rs".into(),
            line: 3,
            message: "x\ny".into(),
        });
        let j = rep.render_json();
        assert!(j.contains("a \\\"b\\\".rs"));
        assert!(j.contains("x\\ny"));
        assert!(j.contains("\"RUSH-L002\": 1"));
    }
}

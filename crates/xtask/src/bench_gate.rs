//! `cargo xtask bench-gate` — steady-state benchmark regression gate.
//!
//! Compares the cached (delta-path) cost per event at one job count between
//! a baseline `BENCH_fig5_scheduler_cost.json` (the checked-in numbers) and
//! a freshly produced candidate, and fails when the candidate regresses by
//! more than a configurable factor. The parser is a tiny purpose-built
//! scanner (the toolchain has no serde): it walks `"jobs": N` keys and reads
//! the `"cached_ns_per_event"` value that follows inside the same point.

/// Extract `cached_ns_per_event` for the point with `"jobs": <jobs>`.
///
/// Returns `None` when the point is absent or the JSON is malformed enough
/// that the value cannot be located.
pub fn cached_ns_at(json: &str, jobs: u64) -> Option<f64> {
    const JOBS_KEY: &str = "\"jobs\":";
    const CACHED_KEY: &str = "\"cached_ns_per_event\":";
    let mut search = 0usize;
    while let Some(off) = json[search..].find(JOBS_KEY) {
        let at = search + off + JOBS_KEY.len();
        search = at;
        let Some(n) = leading_number(&json[at..]) else { continue };
        if n != jobs as f64 {
            continue;
        }
        // The point is one JSON object on one conceptual record; the next
        // cached key after its jobs key belongs to it.
        let rest = &json[at..];
        let cached_at = rest.find(CACHED_KEY)? + CACHED_KEY.len();
        return leading_number(&rest[cached_at..]);
    }
    None
}

/// Extract `ns_per_event` from the `"sharded_points"` array for the entry
/// with `"jobs": <jobs>` and `"shards": <shards>`.
///
/// Returns `None` when the sweep, the entry, or the value is absent.
pub fn sharded_ns_at(json: &str, jobs: u64, shards: u64) -> Option<f64> {
    const SWEEP_KEY: &str = "\"sharded_points\":";
    const JOBS_KEY: &str = "\"jobs\":";
    const SHARDS_KEY: &str = "\"shards\":";
    const NS_KEY: &str = "\"ns_per_event\":";
    let sweep = &json[json.find(SWEEP_KEY)? + SWEEP_KEY.len()..];
    // The sweep array closes at the first `]` after it opens.
    let sweep = &sweep[..sweep.find(']').unwrap_or(sweep.len())];
    let mut search = 0usize;
    while let Some(off) = sweep[search..].find(JOBS_KEY) {
        let at = search + off + JOBS_KEY.len();
        search = at;
        if leading_number(&sweep[at..]) != Some(jobs as f64) {
            continue;
        }
        let rest = &sweep[at..];
        let shards_at = rest.find(SHARDS_KEY)? + SHARDS_KEY.len();
        if leading_number(&rest[shards_at..]) != Some(shards as f64) {
            continue;
        }
        let ns_at = rest.find(NS_KEY)? + NS_KEY.len();
        return leading_number(&rest[ns_at..]);
    }
    None
}

/// The outcome of one sharded-scaling comparison.
#[derive(Debug)]
pub struct ShardGateOutcome {
    /// Single-shard steady-state cost, ns/event.
    pub single: f64,
    /// N-shard steady-state cost, ns/event.
    pub sharded: f64,
    /// single / sharded — the measured scaling win.
    pub speedup: f64,
    /// Whether the speedup met the floor.
    pub pass: bool,
}

/// Gate the sharded sweep inside one candidate JSON: the `shards`-shard
/// point at `jobs` jobs must be at least `min_speedup`× faster than the
/// 1-shard point at the same job count.
pub fn shard_gate(
    candidate_json: &str,
    jobs: u64,
    shards: u64,
    min_speedup: f64,
) -> Result<ShardGateOutcome, String> {
    let single = sharded_ns_at(candidate_json, jobs, 1)
        .ok_or_else(|| format!("candidate JSON has no 1-shard point at jobs = {jobs}"))?;
    let sharded = sharded_ns_at(candidate_json, jobs, shards)
        .ok_or_else(|| format!("candidate JSON has no {shards}-shard point at jobs = {jobs}"))?;
    if sharded <= 0.0 {
        return Err(format!("{shards}-shard ns_per_event at jobs = {jobs} is not positive"));
    }
    let speedup = single / sharded;
    Ok(ShardGateOutcome { single, sharded, speedup, pass: speedup >= min_speedup })
}

/// One run entry from `BENCH_serve_latency.json` (the fields the serve
/// gate needs out of the full record).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRun {
    /// `"threads"` or `"reactor"`.
    pub frontend: String,
    /// `"json"` or `"binary"`.
    pub codec: String,
    /// Open connections the load generator held.
    pub connections: u64,
    /// Client-observed p99 submit latency, microseconds.
    pub p99_us: f64,
}

/// Extract every run from a serve-latency report document.
///
/// Entries are delimited by their `"frontend":` keys (the first key the
/// encoder writes per run); the codec, connection count and the
/// `client_latency` p99 are read from the slice up to the next entry.
pub fn serve_runs(json: &str) -> Vec<ServeRun> {
    const FRONTEND_KEY: &str = "\"frontend\":";
    const CODEC_KEY: &str = "\"codec\":";
    const CONNS_KEY: &str = "\"connections\":";
    const LATENCY_KEY: &str = "\"client_latency\":";
    const P99_KEY: &str = "\"p99_us\":";
    let mut runs = Vec::new();
    let mut starts: Vec<usize> = Vec::new();
    let mut search = 0usize;
    while let Some(off) = json[search..].find(FRONTEND_KEY) {
        starts.push(search + off);
        search += off + FRONTEND_KEY.len();
    }
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(json.len());
        let entry = &json[start..end];
        let frontend = leading_string(&entry[FRONTEND_KEY.len()..]);
        let codec = entry
            .find(CODEC_KEY)
            .map(|at| leading_string(&entry[at + CODEC_KEY.len()..]))
            .unwrap_or_default();
        let connections = entry
            .find(CONNS_KEY)
            .and_then(|at| leading_number(&entry[at + CONNS_KEY.len()..]))
            .unwrap_or(0.0) as u64;
        let p99_us = entry
            .find(LATENCY_KEY)
            .map(|at| &entry[at + LATENCY_KEY.len()..])
            .and_then(|rest| rest.find(P99_KEY).and_then(|at| leading_number(&rest[at + P99_KEY.len()..])));
        let (Some(p99_us), false) = (p99_us, frontend.is_empty()) else { continue };
        runs.push(ServeRun { frontend, codec, connections, p99_us });
    }
    runs
}

/// The outcome of one serve-frontend scaling comparison.
#[derive(Debug)]
pub struct ServeGateOutcome {
    /// Best (highest-connection) thread-frontend run.
    pub threads: ServeRun,
    /// Best (highest-connection) reactor-frontend run.
    pub reactor: ServeRun,
    /// reactor.connections / threads.connections.
    pub conn_ratio: f64,
    /// Whether the ratio met the floor AND the reactor's p99 stayed at or
    /// below the thread baseline's.
    pub pass: bool,
}

/// Gate the serve-latency sweep: the highest-connection reactor run must
/// hold at least `min_conn_ratio`× the connections of the
/// highest-connection thread-frontend run, at a client p99 no worse than
/// `p99_slack`× that thread baseline.
///
/// `p99_slack` exists because the latency histograms are log2-bucketed
/// (quantiles interpolate inside power-of-two buckets), so a p99 read at
/// ~32 ms carries far less than 1% of true resolution; a strict `<=` on
/// the interpolated microsecond values would gate on noise. The default
/// slack of 1.10 is well inside the instrument's error and still catches
/// any real frontend regression.
pub fn serve_gate(
    candidate_json: &str,
    min_conn_ratio: f64,
    p99_slack: f64,
) -> Result<ServeGateOutcome, String> {
    let runs = serve_runs(candidate_json);
    let best = |frontend: &str| {
        runs.iter().filter(|r| r.frontend == frontend).max_by_key(|r| r.connections).cloned()
    };
    let threads =
        best("threads").ok_or_else(|| "candidate JSON has no thread-frontend run".to_string())?;
    let reactor =
        best("reactor").ok_or_else(|| "candidate JSON has no reactor-frontend run".to_string())?;
    if threads.connections == 0 {
        return Err("thread-frontend run reports zero connections".to_string());
    }
    let conn_ratio = reactor.connections as f64 / threads.connections as f64;
    let pass = conn_ratio >= min_conn_ratio && reactor.p99_us <= threads.p99_us * p99_slack;
    Ok(ServeGateOutcome { threads, reactor, conn_ratio, pass })
}

/// The outcome of one capacity-ablation comparison.
#[derive(Debug)]
pub struct CapacityGateOutcome {
    /// The sweep's highest revocation rate (where the gate is evaluated).
    pub revocation_rate: f64,
    /// RUSH's deadline-hit rate at that rate (default δ).
    pub rush: f64,
    /// The deterministic δ = 0 planner's hit rate at that rate.
    pub deterministic: f64,
    /// Whether RUSH held at least the deterministic baseline's hit rate.
    pub pass: bool,
}

/// Gate the capacity ablation inside one candidate
/// `BENCH_ablation_capacity.json`: at the sweep's highest revocation rate
/// (the report's `gate` object), RUSH at the default δ must meet at least
/// as many deadlines as the deterministic δ = 0 planner. The sim is fully
/// seeded, so the comparison is exact — no slack factor is needed.
pub fn capacity_gate(candidate_json: &str) -> Result<CapacityGateOutcome, String> {
    const GATE_KEY: &str = "\"gate\":";
    const RATE_KEY: &str = "\"revocation_rate\":";
    const RUSH_KEY: &str = "\"rush_hit_rate\":";
    const DET_KEY: &str = "\"deterministic_hit_rate\":";
    let gate = &candidate_json[candidate_json
        .find(GATE_KEY)
        .ok_or_else(|| "candidate JSON has no gate object".to_string())?
        + GATE_KEY.len()..];
    let field = |key: &str| {
        gate.find(key)
            .and_then(|at| leading_number(&gate[at + key.len()..]))
            .ok_or_else(|| format!("gate object has no numeric {key} field"))
    };
    let revocation_rate = field(RATE_KEY)?;
    let rush = field(RUSH_KEY)?;
    let deterministic = field(DET_KEY)?;
    Ok(CapacityGateOutcome { revocation_rate, rush, deterministic, pass: rush >= deterministic })
}

/// Parse the quoted string at the start of `s` (after optional whitespace).
/// Empty when `s` does not start with a string.
fn leading_string(s: &str) -> String {
    let s = s.trim_start();
    let Some(rest) = s.strip_prefix('"') else { return String::new() };
    rest.chars().take_while(|&c| c != '"').collect()
}

/// Parse the number at the start of `s` (after optional whitespace).
fn leading_number(s: &str) -> Option<f64> {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(s.len());
    s[..end].parse::<f64>().ok()
}

/// The outcome of one gate comparison.
#[derive(Debug)]
pub struct GateOutcome {
    /// Baseline cached cost, ns/event.
    pub baseline: f64,
    /// Candidate cached cost, ns/event.
    pub candidate: f64,
    /// candidate / baseline.
    pub ratio: f64,
    /// Whether the candidate stayed within `factor` of the baseline.
    pub pass: bool,
}

/// Compare candidate vs baseline at `jobs`, allowing up to `factor`×.
pub fn gate(baseline_json: &str, candidate_json: &str, jobs: u64, factor: f64) -> Result<GateOutcome, String> {
    let baseline = cached_ns_at(baseline_json, jobs)
        .ok_or_else(|| format!("baseline JSON has no point with jobs = {jobs}"))?;
    let candidate = cached_ns_at(candidate_json, jobs)
        .ok_or_else(|| format!("candidate JSON has no point with jobs = {jobs}"))?;
    if baseline <= 0.0 {
        return Err(format!("baseline cached_ns_per_event at jobs = {jobs} is not positive"));
    }
    let ratio = candidate / baseline;
    Ok(GateOutcome { baseline, candidate, ratio, pass: ratio <= factor })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "fig5_scheduler_cost",
  "points": [
    {"jobs": 20, "baseline_ns_per_event": 568512, "cached_ns_per_event": 67141, "profile_ns": {"solve": 24466}},
    {"jobs": 200, "baseline_ns_per_event": 15050993, "cached_ns_per_event": 313889, "profile_ns": {"solve": 29193}}
  ]
}"#;

    #[test]
    fn extracts_the_matching_point() {
        assert_eq!(cached_ns_at(SAMPLE, 20), Some(67141.0));
        assert_eq!(cached_ns_at(SAMPLE, 200), Some(313889.0));
        assert_eq!(cached_ns_at(SAMPLE, 500), None);
    }

    #[test]
    fn gate_passes_within_factor_and_fails_beyond() {
        let fast = SAMPLE.replace("313889", "200000");
        let ok = gate(SAMPLE, &fast, 200, 2.0).expect("points present");
        assert!(ok.pass);
        let slow = SAMPLE.replace("313889", "700000");
        let bad = gate(SAMPLE, &slow, 200, 2.0).expect("points present");
        assert!(!bad.pass);
        assert!(bad.ratio > 2.0);
    }

    #[test]
    fn missing_point_is_an_error() {
        assert!(gate(SAMPLE, SAMPLE, 500, 2.0).is_err());
    }

    const SHARDED: &str = r#"{
  "points": [
    {"jobs": 200, "cached_ns_per_event": 313889}
  ],
  "sharded_points": [
    {"jobs": 10000, "shards": 1, "ns_per_event": 12000000},
    {"jobs": 10000, "shards": 8, "ns_per_event": 1500000},
    {"jobs": 100000, "shards": 8, "ns_per_event": 20000000}
  ],
  "speedup_at_200_jobs": 47.9
}"#;

    #[test]
    fn extracts_the_matching_sharded_point() {
        assert_eq!(sharded_ns_at(SHARDED, 10_000, 1), Some(12_000_000.0));
        assert_eq!(sharded_ns_at(SHARDED, 10_000, 8), Some(1_500_000.0));
        assert_eq!(sharded_ns_at(SHARDED, 100_000, 8), Some(20_000_000.0));
        assert_eq!(sharded_ns_at(SHARDED, 10_000, 4), None);
        assert_eq!(sharded_ns_at(SHARDED, 50_000, 8), None);
        // The flat `points` array must not leak into the sweep lookup.
        assert_eq!(sharded_ns_at(SAMPLE, 200, 1), None);
    }

    const SERVE: &str = r#"{
  "bench": "serve_latency",
  "runs": [
    {"frontend": "threads", "codec": "json", "connections": 1000, "jobs": 4000,
     "client_latency": {"p50_us": 4100, "p99_us": 9000, "p999_us": 12000, "count": 4000},
     "epoch_wait": {"p50_us": 4000, "p99_us": 8000}},
    {"frontend": "reactor", "codec": "json", "connections": 5000, "jobs": 20000,
     "client_latency": {"p50_us": 4200, "p99_us": 8500, "p999_us": 11000, "count": 20000},
     "epoch_wait": {"p50_us": 4100, "p99_us": 8000}},
    {"frontend": "reactor", "codec": "binary", "connections": 6000, "jobs": 24000,
     "client_latency": {"p50_us": 4150, "p99_us": 8400, "p999_us": 10500, "count": 24000},
     "epoch_wait": {"p50_us": 4050, "p99_us": 7900}}
  ]
}"#;

    #[test]
    fn parses_every_serve_run_with_its_own_p99() {
        let runs = serve_runs(SERVE);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].frontend, "threads");
        assert_eq!(runs[0].codec, "json");
        assert_eq!(runs[0].connections, 1000);
        // Each run's p99 is read from its own client_latency object, not
        // the epoch_wait that follows it or a neighbouring run.
        assert!((runs[0].p99_us - 9000.0).abs() < 1e-9);
        assert!((runs[1].p99_us - 8500.0).abs() < 1e-9);
        assert_eq!(runs[2].codec, "binary");
        assert_eq!(runs[2].connections, 6000);
    }

    #[test]
    fn serve_gate_checks_connections_and_p99() {
        // 6000 / 1000 = 6x at a better p99: passes a 5x floor strictly.
        let ok = serve_gate(SERVE, 5.0, 1.0).expect("runs present");
        assert!(ok.pass);
        assert_eq!(ok.reactor.connections, 6000);
        assert!((ok.conn_ratio - 6.0).abs() < 1e-9);
        // A 10x floor fails on the ratio alone.
        assert!(!serve_gate(SERVE, 10.0, 1.0).expect("runs present").pass);
        // A reactor p99 above the slacked thread baseline fails even at
        // 6x; inside the slack band it passes.
        let slow = SERVE.replace("\"p99_us\": 8400", "\"p99_us\": 9600");
        assert!(!serve_gate(&slow, 5.0, 1.0).expect("runs present").pass);
        assert!(serve_gate(&slow, 5.0, 1.10).expect("runs present").pass);
        let very_slow = SERVE.replace("\"p99_us\": 8400", "\"p99_us\": 12000");
        assert!(!serve_gate(&very_slow, 5.0, 1.10).expect("runs present").pass);
        // Missing either frontend is an error, not a silent pass.
        let only_threads = &SERVE[..SERVE.find("reactor").unwrap_or(SERVE.len())];
        assert!(serve_gate(only_threads, 5.0, 1.0).is_err());
        assert!(serve_gate("{}", 5.0, 1.0).is_err());
    }

    const CAPACITY: &str = r#"{
  "benchmark": "ablation_capacity",
  "points": [
    {"scenario": "spot-storm", "revocation_rate": 0.7, "scheduler": "RUSH", "hit_rate": 0.8958}
  ],
  "gate": {
    "revocation_rate": 0.7,
    "rush_hit_rate": 0.8958,
    "deterministic_hit_rate": 0.8542,
    "fifo_hit_rate": 0.6667,
    "edf_hit_rate": 0.8542
  }
}"#;

    #[test]
    fn capacity_gate_compares_rush_to_the_deterministic_planner() {
        let ok = capacity_gate(CAPACITY).expect("gate present");
        assert!(ok.pass);
        assert!((ok.revocation_rate - 0.7).abs() < 1e-9);
        assert!((ok.rush - 0.8958).abs() < 1e-9);
        assert!((ok.deterministic - 0.8542).abs() < 1e-9);
        // A tie passes (>=); a regression fails.
        let tie = CAPACITY.replace("\"rush_hit_rate\": 0.8958", "\"rush_hit_rate\": 0.8542");
        assert!(capacity_gate(&tie).expect("gate present").pass);
        let worse = CAPACITY.replace("\"rush_hit_rate\": 0.8958", "\"rush_hit_rate\": 0.7");
        assert!(!capacity_gate(&worse).expect("gate present").pass);
        // Missing gate object or field is an error, not a silent pass.
        assert!(capacity_gate("{}").is_err());
        let no_det = CAPACITY.replace("deterministic_hit_rate", "other_rate");
        assert!(capacity_gate(&no_det).is_err());
    }

    #[test]
    fn shard_gate_checks_the_scaling_floor() {
        let ok = shard_gate(SHARDED, 10_000, 8, 3.0).expect("points present");
        assert!(ok.pass);
        assert!((ok.speedup - 8.0).abs() < 1e-9);
        let flat = SHARDED.replace("1500000", "11000000");
        let bad = shard_gate(&flat, 10_000, 8, 3.0).expect("points present");
        assert!(!bad.pass);
        assert!(shard_gate(SHARDED, 10_000, 4, 3.0).is_err(), "missing shard count");
    }
}

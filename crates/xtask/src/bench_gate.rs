//! `cargo xtask bench-gate` — steady-state benchmark regression gate.
//!
//! Compares the cached (delta-path) cost per event at one job count between
//! a baseline `BENCH_fig5_scheduler_cost.json` (the checked-in numbers) and
//! a freshly produced candidate, and fails when the candidate regresses by
//! more than a configurable factor. The parser is a tiny purpose-built
//! scanner (the toolchain has no serde): it walks `"jobs": N` keys and reads
//! the `"cached_ns_per_event"` value that follows inside the same point.

/// Extract `cached_ns_per_event` for the point with `"jobs": <jobs>`.
///
/// Returns `None` when the point is absent or the JSON is malformed enough
/// that the value cannot be located.
pub fn cached_ns_at(json: &str, jobs: u64) -> Option<f64> {
    const JOBS_KEY: &str = "\"jobs\":";
    const CACHED_KEY: &str = "\"cached_ns_per_event\":";
    let mut search = 0usize;
    while let Some(off) = json[search..].find(JOBS_KEY) {
        let at = search + off + JOBS_KEY.len();
        search = at;
        let Some(n) = leading_number(&json[at..]) else { continue };
        if n != jobs as f64 {
            continue;
        }
        // The point is one JSON object on one conceptual record; the next
        // cached key after its jobs key belongs to it.
        let rest = &json[at..];
        let cached_at = rest.find(CACHED_KEY)? + CACHED_KEY.len();
        return leading_number(&rest[cached_at..]);
    }
    None
}

/// Parse the number at the start of `s` (after optional whitespace).
fn leading_number(s: &str) -> Option<f64> {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(s.len());
    s[..end].parse::<f64>().ok()
}

/// The outcome of one gate comparison.
#[derive(Debug)]
pub struct GateOutcome {
    /// Baseline cached cost, ns/event.
    pub baseline: f64,
    /// Candidate cached cost, ns/event.
    pub candidate: f64,
    /// candidate / baseline.
    pub ratio: f64,
    /// Whether the candidate stayed within `factor` of the baseline.
    pub pass: bool,
}

/// Compare candidate vs baseline at `jobs`, allowing up to `factor`×.
pub fn gate(baseline_json: &str, candidate_json: &str, jobs: u64, factor: f64) -> Result<GateOutcome, String> {
    let baseline = cached_ns_at(baseline_json, jobs)
        .ok_or_else(|| format!("baseline JSON has no point with jobs = {jobs}"))?;
    let candidate = cached_ns_at(candidate_json, jobs)
        .ok_or_else(|| format!("candidate JSON has no point with jobs = {jobs}"))?;
    if baseline <= 0.0 {
        return Err(format!("baseline cached_ns_per_event at jobs = {jobs} is not positive"));
    }
    let ratio = candidate / baseline;
    Ok(GateOutcome { baseline, candidate, ratio, pass: ratio <= factor })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "fig5_scheduler_cost",
  "points": [
    {"jobs": 20, "baseline_ns_per_event": 568512, "cached_ns_per_event": 67141, "profile_ns": {"solve": 24466}},
    {"jobs": 200, "baseline_ns_per_event": 15050993, "cached_ns_per_event": 313889, "profile_ns": {"solve": 29193}}
  ]
}"#;

    #[test]
    fn extracts_the_matching_point() {
        assert_eq!(cached_ns_at(SAMPLE, 20), Some(67141.0));
        assert_eq!(cached_ns_at(SAMPLE, 200), Some(313889.0));
        assert_eq!(cached_ns_at(SAMPLE, 500), None);
    }

    #[test]
    fn gate_passes_within_factor_and_fails_beyond() {
        let fast = SAMPLE.replace("313889", "200000");
        let ok = gate(SAMPLE, &fast, 200, 2.0).expect("points present");
        assert!(ok.pass);
        let slow = SAMPLE.replace("313889", "700000");
        let bad = gate(SAMPLE, &slow, 200, 2.0).expect("points present");
        assert!(!bad.pass);
        assert!(bad.ratio > 2.0);
    }

    #[test]
    fn missing_point_is_an_error() {
        assert!(gate(SAMPLE, SAMPLE, 500, 2.0).is_err());
    }
}

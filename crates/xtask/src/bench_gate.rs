//! `cargo xtask bench-gate` — steady-state benchmark regression gate.
//!
//! Compares the cached (delta-path) cost per event at one job count between
//! a baseline `BENCH_fig5_scheduler_cost.json` (the checked-in numbers) and
//! a freshly produced candidate, and fails when the candidate regresses by
//! more than a configurable factor. The parser is a tiny purpose-built
//! scanner (the toolchain has no serde): it walks `"jobs": N` keys and reads
//! the `"cached_ns_per_event"` value that follows inside the same point.

/// Extract `cached_ns_per_event` for the point with `"jobs": <jobs>`.
///
/// Returns `None` when the point is absent or the JSON is malformed enough
/// that the value cannot be located.
pub fn cached_ns_at(json: &str, jobs: u64) -> Option<f64> {
    const JOBS_KEY: &str = "\"jobs\":";
    const CACHED_KEY: &str = "\"cached_ns_per_event\":";
    let mut search = 0usize;
    while let Some(off) = json[search..].find(JOBS_KEY) {
        let at = search + off + JOBS_KEY.len();
        search = at;
        let Some(n) = leading_number(&json[at..]) else { continue };
        if n != jobs as f64 {
            continue;
        }
        // The point is one JSON object on one conceptual record; the next
        // cached key after its jobs key belongs to it.
        let rest = &json[at..];
        let cached_at = rest.find(CACHED_KEY)? + CACHED_KEY.len();
        return leading_number(&rest[cached_at..]);
    }
    None
}

/// Extract `ns_per_event` from the `"sharded_points"` array for the entry
/// with `"jobs": <jobs>` and `"shards": <shards>`.
///
/// Returns `None` when the sweep, the entry, or the value is absent.
pub fn sharded_ns_at(json: &str, jobs: u64, shards: u64) -> Option<f64> {
    const SWEEP_KEY: &str = "\"sharded_points\":";
    const JOBS_KEY: &str = "\"jobs\":";
    const SHARDS_KEY: &str = "\"shards\":";
    const NS_KEY: &str = "\"ns_per_event\":";
    let sweep = &json[json.find(SWEEP_KEY)? + SWEEP_KEY.len()..];
    // The sweep array closes at the first `]` after it opens.
    let sweep = &sweep[..sweep.find(']').unwrap_or(sweep.len())];
    let mut search = 0usize;
    while let Some(off) = sweep[search..].find(JOBS_KEY) {
        let at = search + off + JOBS_KEY.len();
        search = at;
        if leading_number(&sweep[at..]) != Some(jobs as f64) {
            continue;
        }
        let rest = &sweep[at..];
        let shards_at = rest.find(SHARDS_KEY)? + SHARDS_KEY.len();
        if leading_number(&rest[shards_at..]) != Some(shards as f64) {
            continue;
        }
        let ns_at = rest.find(NS_KEY)? + NS_KEY.len();
        return leading_number(&rest[ns_at..]);
    }
    None
}

/// The outcome of one sharded-scaling comparison.
#[derive(Debug)]
pub struct ShardGateOutcome {
    /// Single-shard steady-state cost, ns/event.
    pub single: f64,
    /// N-shard steady-state cost, ns/event.
    pub sharded: f64,
    /// single / sharded — the measured scaling win.
    pub speedup: f64,
    /// Whether the speedup met the floor.
    pub pass: bool,
}

/// Gate the sharded sweep inside one candidate JSON: the `shards`-shard
/// point at `jobs` jobs must be at least `min_speedup`× faster than the
/// 1-shard point at the same job count.
pub fn shard_gate(
    candidate_json: &str,
    jobs: u64,
    shards: u64,
    min_speedup: f64,
) -> Result<ShardGateOutcome, String> {
    let single = sharded_ns_at(candidate_json, jobs, 1)
        .ok_or_else(|| format!("candidate JSON has no 1-shard point at jobs = {jobs}"))?;
    let sharded = sharded_ns_at(candidate_json, jobs, shards)
        .ok_or_else(|| format!("candidate JSON has no {shards}-shard point at jobs = {jobs}"))?;
    if sharded <= 0.0 {
        return Err(format!("{shards}-shard ns_per_event at jobs = {jobs} is not positive"));
    }
    let speedup = single / sharded;
    Ok(ShardGateOutcome { single, sharded, speedup, pass: speedup >= min_speedup })
}

/// Parse the number at the start of `s` (after optional whitespace).
fn leading_number(s: &str) -> Option<f64> {
    let s = s.trim_start();
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(s.len());
    s[..end].parse::<f64>().ok()
}

/// The outcome of one gate comparison.
#[derive(Debug)]
pub struct GateOutcome {
    /// Baseline cached cost, ns/event.
    pub baseline: f64,
    /// Candidate cached cost, ns/event.
    pub candidate: f64,
    /// candidate / baseline.
    pub ratio: f64,
    /// Whether the candidate stayed within `factor` of the baseline.
    pub pass: bool,
}

/// Compare candidate vs baseline at `jobs`, allowing up to `factor`×.
pub fn gate(baseline_json: &str, candidate_json: &str, jobs: u64, factor: f64) -> Result<GateOutcome, String> {
    let baseline = cached_ns_at(baseline_json, jobs)
        .ok_or_else(|| format!("baseline JSON has no point with jobs = {jobs}"))?;
    let candidate = cached_ns_at(candidate_json, jobs)
        .ok_or_else(|| format!("candidate JSON has no point with jobs = {jobs}"))?;
    if baseline <= 0.0 {
        return Err(format!("baseline cached_ns_per_event at jobs = {jobs} is not positive"));
    }
    let ratio = candidate / baseline;
    Ok(GateOutcome { baseline, candidate, ratio, pass: ratio <= factor })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmark": "fig5_scheduler_cost",
  "points": [
    {"jobs": 20, "baseline_ns_per_event": 568512, "cached_ns_per_event": 67141, "profile_ns": {"solve": 24466}},
    {"jobs": 200, "baseline_ns_per_event": 15050993, "cached_ns_per_event": 313889, "profile_ns": {"solve": 29193}}
  ]
}"#;

    #[test]
    fn extracts_the_matching_point() {
        assert_eq!(cached_ns_at(SAMPLE, 20), Some(67141.0));
        assert_eq!(cached_ns_at(SAMPLE, 200), Some(313889.0));
        assert_eq!(cached_ns_at(SAMPLE, 500), None);
    }

    #[test]
    fn gate_passes_within_factor_and_fails_beyond() {
        let fast = SAMPLE.replace("313889", "200000");
        let ok = gate(SAMPLE, &fast, 200, 2.0).expect("points present");
        assert!(ok.pass);
        let slow = SAMPLE.replace("313889", "700000");
        let bad = gate(SAMPLE, &slow, 200, 2.0).expect("points present");
        assert!(!bad.pass);
        assert!(bad.ratio > 2.0);
    }

    #[test]
    fn missing_point_is_an_error() {
        assert!(gate(SAMPLE, SAMPLE, 500, 2.0).is_err());
    }

    const SHARDED: &str = r#"{
  "points": [
    {"jobs": 200, "cached_ns_per_event": 313889}
  ],
  "sharded_points": [
    {"jobs": 10000, "shards": 1, "ns_per_event": 12000000},
    {"jobs": 10000, "shards": 8, "ns_per_event": 1500000},
    {"jobs": 100000, "shards": 8, "ns_per_event": 20000000}
  ],
  "speedup_at_200_jobs": 47.9
}"#;

    #[test]
    fn extracts_the_matching_sharded_point() {
        assert_eq!(sharded_ns_at(SHARDED, 10_000, 1), Some(12_000_000.0));
        assert_eq!(sharded_ns_at(SHARDED, 10_000, 8), Some(1_500_000.0));
        assert_eq!(sharded_ns_at(SHARDED, 100_000, 8), Some(20_000_000.0));
        assert_eq!(sharded_ns_at(SHARDED, 10_000, 4), None);
        assert_eq!(sharded_ns_at(SHARDED, 50_000, 8), None);
        // The flat `points` array must not leak into the sweep lookup.
        assert_eq!(sharded_ns_at(SAMPLE, 200, 1), None);
    }

    #[test]
    fn shard_gate_checks_the_scaling_floor() {
        let ok = shard_gate(SHARDED, 10_000, 8, 3.0).expect("points present");
        assert!(ok.pass);
        assert!((ok.speedup - 8.0).abs() < 1e-9);
        let flat = SHARDED.replace("1500000", "11000000");
        let bad = shard_gate(&flat, 10_000, 8, 3.0).expect("points present");
        assert!(!bad.pass);
        assert!(shard_gate(SHARDED, 10_000, 4, 3.0).is_err(), "missing shard count");
    }
}

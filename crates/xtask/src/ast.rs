//! Lightweight AST for the deep lint rules (RUSH-L009 … RUSH-L012).
//!
//! The tree is deliberately smaller than a compiler AST: types, generics,
//! visibility and attribute bodies are *skipped* during parsing, because no
//! deep rule needs them. What survives is exactly what the analyses read:
//! item structure (functions, impls, modules, enums), expression structure
//! (calls, method calls, indexing, arithmetic, matches with their arm
//! patterns, blocks and bindings), and 1-based line numbers for findings.

/// A parsed source file: its top-level items.
#[derive(Debug, Default)]
pub struct SourceFile {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// One item. Items the analyses never look into parse to [`Item::Skipped`].
#[derive(Debug)]
pub enum Item {
    /// A function (free, method, or associated).
    Fn(Function),
    /// An `impl` block with the items inside it.
    Impl(ImplBlock),
    /// An inline module with the items inside it.
    Mod(Module),
    /// An `enum` definition (variant names recorded for RUSH-L012).
    Enum(EnumDef),
    /// Anything else: structs, traits are parsed for their methods, but
    /// uses, type aliases, consts, macros etc. carry no analysis payload.
    Skipped,
}

/// A function item.
#[derive(Debug)]
pub struct Function {
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Directly test-gated (`#[test]` / `#[cfg(test)]` on the item itself).
    pub is_test: bool,
    /// The body; `None` for trait/extern signatures.
    pub body: Option<Block>,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplBlock {
    /// Last path segment of the self type (`Foo` in `impl Trait for Foo`).
    pub self_type: String,
    /// Test-gated via `#[cfg(test)]` on the block.
    pub is_test: bool,
    /// Items inside the block (methods and associated items).
    pub items: Vec<Item>,
}

/// An inline `mod name { ... }`.
#[derive(Debug)]
pub struct Module {
    /// The module name.
    pub name: String,
    /// Test-gated via `#[cfg(test)]` (the usual `mod tests`).
    pub is_test: bool,
    /// Items inside the module.
    pub items: Vec<Item>,
}

/// An `enum` definition.
#[derive(Debug)]
pub struct EnumDef {
    /// The enum name.
    pub name: String,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// Test-gated definition.
    pub is_test: bool,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
}

/// A `{ ... }` block.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let [mut] name [: ty] = init [else { ... }];`
    Let {
        /// The bound name when the pattern is a plain (possibly `mut`)
        /// identifier; `None` for destructuring patterns.
        name: Option<String>,
        /// The initializer, when present.
        init: Option<Expr>,
        /// The `else` block of a `let ... else`.
        else_block: Option<Block>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement (with or without trailing `;`).
    Expr(Expr),
    /// A nested item (functions and modules declared inside bodies).
    Item(Box<Item>),
}

/// One expression. Line numbers point at the most useful token for a
/// finding (the operator, the method name, the opening bracket, ...).
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` (a single identifier is a one-segment path).
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Line of the first segment.
        line: u32,
    },
    /// Any literal token.
    Lit {
        /// Line of the literal.
        line: u32,
        /// True when the literal is an integer.
        is_int: bool,
    },
    /// `callee(args)`.
    Call {
        /// The callee expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Line of the opening parenthesis.
        line: u32,
    },
    /// `recv.name(args)`.
    MethodCall {
        /// The receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Line of the method name.
        line: u32,
    },
    /// `base.name` (also tuple fields: `t.0`).
    Field {
        /// The base expression.
        base: Box<Expr>,
        /// Field name (or tuple index as text).
        name: String,
        /// Line of the field name.
        line: u32,
    },
    /// `base[index]`.
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
        /// Line of the `[`.
        line: u32,
    },
    /// `lhs op rhs` — includes assignments (`=`, `+=`, ...) for uniformity.
    Binary {
        /// Operator text (`+`, `-`, `*`, `==`, `+=`, ...).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Line of the operator.
        line: u32,
    },
    /// `op operand` (`!x`, `-x`, `*x`, `&x`).
    Unary {
        /// Operator text.
        op: String,
        /// The operand.
        operand: Box<Expr>,
        /// Line of the operator.
        line: u32,
    },
    /// `name!(args)` / `name![args]`; `name!{...}` bodies are skipped.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Arguments, parsed leniently as expressions.
        args: Vec<Expr>,
        /// Line of the macro name.
        line: u32,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// The arms.
        arms: Vec<Arm>,
        /// Line of the `match` keyword.
        line: u32,
    },
    /// `if cond { .. } [else ..]` (`if let` conditions keep only the
    /// scrutinee expression).
    If {
        /// The condition (or `if let` scrutinee).
        cond: Box<Expr>,
        /// The then-block.
        then_block: Block,
        /// The else expression (a block or another `if`).
        else_expr: Option<Box<Expr>>,
        /// Line of the `if`.
        line: u32,
    },
    /// `while cond { .. }` (`while let` keeps the scrutinee).
    While {
        /// The condition.
        cond: Box<Expr>,
        /// The loop body.
        body: Block,
        /// Line of the `while`.
        line: u32,
    },
    /// `for pat in iter { .. }` (the pattern is skipped).
    ForLoop {
        /// The iterated expression.
        iter: Box<Expr>,
        /// The loop body.
        body: Block,
        /// Line of the `for`.
        line: u32,
    },
    /// `loop { .. }`.
    Loop {
        /// The loop body.
        body: Block,
        /// Line of the `loop`.
        line: u32,
    },
    /// A closure; parameters are skipped, the body is kept.
    Closure {
        /// The closure body.
        body: Box<Expr>,
        /// Line of the opening `|`.
        line: u32,
    },
    /// A block used as an expression (also `unsafe { .. }`).
    BlockExpr(Block),
    /// `return` / `break` / `continue`, with an optional value.
    Jump {
        /// The jumped value, when present.
        value: Option<Box<Expr>>,
        /// Line of the keyword.
        line: u32,
    },
    /// `(a, b, ...)` — a 1-tuple without trailing comma is unwrapped to
    /// its inner expression by the parser.
    Tuple {
        /// Elements.
        elems: Vec<Expr>,
        /// Line of the `(`.
        line: u32,
    },
    /// `[a, b]` / `[x; n]`.
    Array {
        /// Elements (for `[x; n]`: the element and the length).
        elems: Vec<Expr>,
        /// Line of the `[`.
        line: u32,
    },
    /// `Path { field: expr, .. }`.
    StructLit {
        /// Path segments of the struct name.
        segs: Vec<String>,
        /// Field value expressions (plus the functional-update base).
        fields: Vec<Expr>,
        /// Line of the path.
        line: u32,
    },
    /// `lo..hi` / `lo..=hi` with either side optional.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// Line of the `..`.
        line: u32,
    },
    /// `operand?`.
    Try {
        /// The questioned expression.
        operand: Box<Expr>,
        /// Line of the `?`.
        line: u32,
    },
    /// `operand as Type` (the type is skipped).
    Cast {
        /// The cast expression.
        operand: Box<Expr>,
        /// Line of the `as`.
        line: u32,
    },
    /// A token the parser could not interpret, consumed for progress.
    Unknown {
        /// Line of the token.
        line: u32,
    },
}

impl Expr {
    /// The line a finding about this expression should point at.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Match { line, .. }
            | Expr::If { line, .. }
            | Expr::While { line, .. }
            | Expr::ForLoop { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Jump { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Range { line, .. }
            | Expr::Try { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Unknown { line } => *line,
            Expr::BlockExpr(b) => b.stmts.first().map_or(0, |s| match s {
                Stmt::Let { line, .. } => *line,
                Stmt::Expr(e) => e.line(),
                Stmt::Item(_) => 0,
            }),
        }
    }
}

/// One `match` arm.
#[derive(Debug)]
pub struct Arm {
    /// The (classified) pattern.
    pub pat: Pat,
    /// The arm body.
    pub body: Expr,
    /// 1-based line of the pattern.
    pub line: u32,
}

/// A classified match-arm pattern. The deep rules only need to know the
/// *shape* of the top-level pattern, not its full structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pat {
    /// The `_` wildcard (alone, possibly or-ed with nothing else).
    Wild,
    /// A bare (possibly `ref`/`mut`) identifier binding like `other`.
    Binding(String),
    /// One or more `A::B`-style paths (or-patterns record every path).
    /// Each path is its segment list; fields/payloads are not recorded.
    Variants(Vec<Vec<String>>),
    /// Anything else: literals, tuples, slices, structs, ranges, ...
    Other,
}

//! A small, self-contained Rust lexer.
//!
//! The container is offline, so we cannot depend on `syn` or `proc-macro2`.
//! This lexer is deliberately "AST-lite": it produces a flat token stream
//! (plus a side list of comments with positions) that is good enough for the
//! pattern-level rules in [`crate::rules`]. It understands the parts of the
//! Rust grammar that matter for not mis-tokenizing real code:
//!
//! * line / nested block comments (kept, with line numbers, for pragmas),
//! * string, raw-string, byte-string and char literals (vs. lifetimes),
//! * numeric literals, classified int vs. float (`0..10` stays two ints),
//! * raw identifiers (`r#type`),
//! * multi-character punctuation (`::`, `==`, `..=`, `->`, ...).

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (also `_`).
    Ident,
    /// Integer literal (any base, with suffix).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2.5f32`).
    Float,
    /// String, raw-string or byte-string literal.
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Punctuation, possibly multi-character (`::`, `==`).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line where the token starts.
    pub line: u32,
}

impl Token {
    /// True if this token is punctuation with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// True if this token is an identifier with exactly this text.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// A comment (line or block) with the 1-based line where it starts.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
}

/// Result of lexing a file: tokens plus comments (kept separately).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first so greedy matching is correct.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into tokens and comments. Never panics on malformed input;
/// unterminated literals simply run to end-of-file.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.chars().filter(|&c| c == '\n').count() as u32
        };
    }

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            let start = i;
            let start_line = line;
            if b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            } else {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            let text: String = b[start..i].iter().collect();
            out.comments.push(Comment { text, line: start_line });
            continue;
        }
        // Raw strings / raw identifiers / byte strings.
        if (c == 'r' || c == 'b') && i + 1 < n {
            // br"..." / br#"..."#
            let (prefix_len, rest) = if c == 'b' && b[i + 1] == 'r' { (2, i + 2) } else { (1, i + 1) };
            let is_raw = (c == 'r' || (c == 'b' && prefix_len == 2)) && rest < n && (b[rest] == '"' || b[rest] == '#');
            if c == 'r' && i + 1 < n && b[i + 1] == '#' && i + 2 < n && is_ident_start(b[i + 2]) {
                // Raw identifier r#ident
                let start = i;
                i += 2;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                out.tokens.push(Token { kind: TokKind::Ident, text, line });
                continue;
            }
            if is_raw {
                // Count hashes.
                let start = i;
                let start_line = line;
                let mut j = rest;
                let mut hashes = 0usize;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    j += 1;
                    // Scan until `"` followed by `hashes` hashes.
                    'scan: while j < n {
                        if b[j] == '"' {
                            let mut k = j + 1;
                            let mut h = 0usize;
                            while k < n && h < hashes && b[k] == '#' {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                j = k;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    let text: String = b[start..j].iter().collect();
                    bump_lines!(text);
                    out.tokens.push(Token { kind: TokKind::Str, text, line: start_line });
                    i = j;
                    continue;
                }
                // Not actually a raw string (e.g. `r#` at EOF); fall through.
            }
            if c == 'b' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '\'') {
                // b"..." or b'x': lex the inner literal with the prefix.
                let start = i;
                let quote = b[i + 1];
                let mut j = i + 2;
                while j < n {
                    if b[j] == '\\' {
                        j += 2;
                        continue;
                    }
                    if b[j] == quote {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                let text: String = b[start..j.min(n)].iter().collect();
                bump_lines!(text);
                let kind = if quote == '"' { TokKind::Str } else { TokKind::Char };
                out.tokens.push(Token { kind, text, line });
                i = j.min(n);
                continue;
            }
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(b[i]) {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            out.tokens.push(Token { kind: TokKind::Ident, text, line });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'X' | 'o' | 'O' | 'b' | 'B') {
                i += 2;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                    i += 1;
                }
                // Fractional part: a `.` NOT followed by another `.` (range) or
                // an identifier start (method call like `1.max(2)`).
                if i < n && b[i] == '.' {
                    let next = if i + 1 < n { Some(b[i + 1]) } else { None };
                    let part_of_float = match next {
                        Some('.') => false,
                        Some(ch) if is_ident_start(ch) => false,
                        _ => true,
                    };
                    if part_of_float {
                        is_float = true;
                        i += 1;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Exponent.
                if i < n && (b[i] == 'e' || b[i] == 'E') {
                    let mut j = i + 1;
                    if j < n && (b[j] == '+' || b[j] == '-') {
                        j += 1;
                    }
                    if j < n && b[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < n && (b[i].is_ascii_digit() || b[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Suffix (u32, f64, ...).
                if i < n && is_ident_start(b[i]) {
                    let sfx_start = i;
                    while i < n && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    let sfx: String = b[sfx_start..i].iter().collect();
                    if sfx.starts_with('f') {
                        is_float = true;
                    }
                }
            }
            let text: String = b[start..i].iter().collect();
            let kind = if is_float { TokKind::Float } else { TokKind::Int };
            out.tokens.push(Token { kind, text, line });
            continue;
        }
        // Strings.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            let text: String = b[start..i.min(n)].iter().collect();
            out.tokens.push(Token { kind: TokKind::Str, text, line: start_line });
            i = i.min(n);
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            // 'x' | '\n' | '\u{..}'  vs  'a (lifetime) | 'static
            let mut j = i + 1;
            let mut is_char = false;
            if j < n && b[j] == '\\' {
                is_char = true;
                j += 2;
                // \u{...}
                while j < n && b[j] != '\'' && b[j] != '\n' {
                    j += 1;
                }
                if j < n && b[j] == '\'' {
                    j += 1;
                }
            } else if j < n {
                if is_ident_start(b[j]) {
                    // Could be lifetime or 'c'.
                    let mut k = j + 1;
                    while k < n && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    if k < n && b[k] == '\'' && k == j + 1 {
                        is_char = true;
                        j = k + 1;
                    } else {
                        // Lifetime.
                        let text: String = b[i..k].iter().collect();
                        out.tokens.push(Token { kind: TokKind::Lifetime, text, line });
                        i = k;
                        continue;
                    }
                } else if b[j] != '\'' {
                    // Something like '(' — a char literal of punctuation.
                    if j + 1 < n && b[j + 1] == '\'' {
                        is_char = true;
                        j += 2;
                    }
                }
            }
            if is_char {
                let text: String = b[i..j.min(n)].iter().collect();
                out.tokens.push(Token { kind: TokKind::Char, text, line });
                i = j.min(n);
                continue;
            }
            // Bare quote; treat as punct to make progress.
            out.tokens.push(Token { kind: TokKind::Punct, text: "'".into(), line });
            i += 1;
            continue;
        }
        // Punctuation: greedy multi-char match.
        let mut matched = false;
        for p in PUNCTS {
            let pl = p.chars().count();
            if i + pl <= n {
                let cand: String = b[i..i + pl].iter().collect();
                if &cand == p {
                    out.tokens.push(Token { kind: TokKind::Punct, text: cand, line });
                    i += pl;
                    matched = true;
                    break;
                }
            }
        }
        if !matched {
            out.tokens.push(Token { kind: TokKind::Punct, text: c.to_string(), line });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.contains(&(TokKind::Int, "0".into())));
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Int, "10".into())));
    }

    #[test]
    fn floats_classified() {
        for s in ["1.0", "0.5e3", "1e-9", "2f64", "3.14_15"] {
            let toks = kinds(s);
            assert_eq!(toks[0].0, TokKind::Float, "{s}");
        }
        for s in ["42", "0xFF", "1_000u64"] {
            let toks = kinds(s);
            assert_eq!(toks[0].0, TokKind::Int, "{s}");
        }
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(toks.iter().any(|t| t.0 == TokKind::Lifetime && t.1 == "'a"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Char && t.1 == "'x'"));
        assert!(toks.iter().any(|t| t.0 == TokKind::Char && t.1 == "'\\n'"));
    }

    #[test]
    fn comments_collected_with_lines() {
        let l = lex("let a = 1;\n// pragma here\nlet b = 2; /* block\nspans */ let c = 3;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].text.contains("pragma here"));
        assert_eq!(l.comments[1].line, 3);
    }

    #[test]
    fn raw_strings_and_multichar_punct() {
        let l = lex("let s = r#\"a \" b\"#; if a == b && c != 1.0 {}");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Str && t.text.starts_with("r#")));
        assert!(l.tokens.iter().any(|t| t.is_punct("==")));
        assert!(l.tokens.iter().any(|t| t.is_punct("!=")));
        assert!(l.tokens.iter().any(|t| t.is_punct("&&")));
    }

    #[test]
    fn method_call_on_int_not_float() {
        let toks = kinds("let m = 1.max(2);");
        assert!(toks.contains(&(TokKind::Int, "1".into())));
        assert!(toks.contains(&(TokKind::Ident, "max".into())));
    }
}
